"""Legacy setup shim: this environment has no `wheel` package, so editable
installs must go through setuptools' develop path instead of PEP 660."""
from setuptools import setup

setup()
