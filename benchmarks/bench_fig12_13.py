"""Fig. 12 (real-application speedups over Central, 26 combos) and
Fig. 13 (SynCron scalability across NDP units)."""

import os

import pytest

from repro.harness.experiments import (
    APP_INPUTS,
    MECHANISMS,
    fig12,
    fig13,
    headline_summary,
)
from repro.harness.reporting import format_table

# the full 26-combo sweep is for REPRO_SCALE>=medium runs; small scale uses
# a representative subset per kernel family to keep the suite brisk.
SMALL_SUBSET = ("bfs.wk", "cc.sl", "sssp.wk", "pr.wk", "tf.sl", "tc.sx",
                "ts.air", "ts.pow")


def _combos():
    if os.environ.get("REPRO_SCALE", "small") == "small":
        return SMALL_SUBSET
    return tuple(APP_INPUTS)


def test_fig12_real_application_speedups(once):
    rows = once(lambda: fig12(combos=_combos()))
    print()
    print(format_table(rows, columns=["app"] + list(MECHANISMS),
                       title="Fig 12: speedup over Central"))
    summary = headline_summary(rows)
    print(f"headline: SynCron vs Central {summary['syncron_vs_central']:.2f}x "
          f"(paper 1.47x), vs Hier {summary['syncron_vs_hier']:.2f}x "
          f"(paper 1.23x), overhead vs Ideal "
          f"{summary['syncron_overhead_vs_ideal_pct']:.1f}% (paper 9.5%)")
    # Shape assertions: SynCron wins on average, Hier sits between.
    assert summary["syncron_vs_central"] > 1.1
    assert summary["syncron_vs_hier"] > 1.0
    for row in rows:
        assert row["ideal"] >= row["syncron"] * 0.99


def test_fig13_syncron_scalability(once):
    combos = ("pr.wk", "ts.air") if os.environ.get("REPRO_SCALE", "small") == "small" \
        else ("bfs.sl", "cc.sx", "sssp.co", "pr.wk", "tf.sl", "tc.sx", "ts.air", "ts.pow")
    rows = once(lambda: fig13(combos=combos))
    print()
    print(format_table(rows, title="Fig 13: SynCron speedup vs 1 NDP unit"))
    for row in rows:
        # performance scales with units (paper: 2.03x average at 4 units).
        assert row["4_units"] > row["1_units"]
