"""Extension benches: spin-wait baselines, overflow target, rw locks.

These quantify the repository's additions beyond the paper's own figures
(see ``repro.harness.ablations``):

- the Sec. 2.2.1 argument against shared-memory spinning, measured;
- the Sec. 4.6 shared-cache overflow adaptation for conventional systems;
- the reader-writer lock extension vs a plain mutex;
- the Sec. 4.4.2 fairness threshold's throughput/fairness trade.
"""

from repro.harness import ablations
from repro.harness.plotting import bar_chart, line_chart
from repro.harness.reporting import format_table


def test_spin_baselines_lose_under_contention(once):
    """Bakery < remote atomics < message passing < SynCron < Ideal on a
    contended lock — the Sec. 2.2.1 ordering."""
    rows = once(lambda: ablations.spin_baselines(core_steps=(15, 30, 60)))
    print()
    print(format_table(rows, columns=(
        "cores", "bakery", "rmw_spin", "central", "hier", "syncron", "ideal",
    ), title="Extension: spin-wait baselines (lock Mops/s)"))
    print()
    print(line_chart(rows, "cores",
                     ("bakery", "rmw_spin", "syncron", "ideal"),
                     title="lock throughput vs cores"))
    for row in rows:
        assert row["bakery"] < row["rmw_spin"], "O(N) scans must lose to rmw"
        assert row["syncron"] > row["rmw_spin"], "spinning must lose to SEs"
        assert row["ideal"] >= row["syncron"]
    # Spinning's global traffic explodes once multiple units contend.
    multi_unit = [row for row in rows if row["units"] > 1]
    for row in multi_unit:
        assert row["rmw_spin_global_msgs"] > row["syncron_global_msgs"]


def test_overflow_target_shared_cache(once):
    """Sec. 4.6: with DDR4 main memory, shared-cache overflow state beats
    DRAM-resident syncronVar once the ST actually overflows."""
    rows = once(lambda: ablations.overflow_target_sweep(st_sizes=(8, 16, 64)))
    print()
    print(format_table(rows, title="Extension: overflow target (BST_FG, DDR4)"))
    overflowing = [row for row in rows if row["memory_overflow_pct"] > 5.0]
    assert overflowing, "sweep must include an overflowing ST size"
    for row in overflowing:
        assert row["shared_cache"] >= row["memory"] * 0.98
    # With no overflow the knob must be inert (same throughput either way).
    quiet = [row for row in rows if row["memory_overflow_pct"] == 0.0]
    for row in quiet:
        assert abs(row["shared_cache"] - row["memory"]) / row["memory"] < 0.01


def test_rwlock_beats_mutex_when_read_heavy(once):
    """The rw-lock extension: readers share, so read-heavy mixes overtake
    a plain mutex; write-heavy mixes pay the one-level coordination."""
    rows = once(lambda: ablations.rwlock_read_ratio(
        read_pcts=(0, 50, 90, 100)
    ))
    print()
    print(format_table(rows, title="Extension: rw lock vs mutex (Mops/s)"))
    print()
    print(bar_chart(
        {f"r{row['read_pct']}%": row["syncron"] for row in rows},
        title="rw-lock throughput vs read ratio (syncron)",
    ))
    read_heavy = rows[-1]
    assert read_heavy["read_pct"] == 100
    assert read_heavy["syncron"] > read_heavy["mutex"], (
        "an all-reader mix must beat the serializing mutex"
    )
    # Monotonic: more readers, more concurrency.
    series = [row["syncron"] for row in rows]
    assert series == sorted(series)


def test_unionfind_rw_beats_mutex(once):
    """The realistic rw-lock application: read-locked finds dominate a
    dense edge stream, so the rw lock outruns the mutex."""
    rows = once(lambda: ablations.unionfind_connectivity(datasets=("wk",)))
    print()
    print(format_table(rows, title="Extension: union-find connectivity"))
    for row in rows:
        assert row["syncron_rw_speedup"] > 1.0


def test_fairness_threshold_trade(once):
    """Sec. 4.4.2: a small threshold collapses the cross-unit finish-time
    spread at some throughput cost."""
    rows = once(lambda: ablations.fairness_sweep(thresholds=(0, 2, 8)))
    print()
    print(format_table(rows, title="Extension: fairness threshold (2 units)"))
    unfair = rows[0]
    fair = rows[1]
    assert unfair["threshold"] == 0
    assert fair["unit_finish_spread"] < unfair["unit_finish_spread"]
    assert fair["makespan"] >= unfair["makespan"] * 0.95


def test_smt_contexts_hide_stalls(once):
    """Sec. 4 SMT note: splitting each core's work across 2 contexts cuts
    makespan by overlapping sync/memory stalls; 4 contexts saturate the
    shared 1-IPC pipeline."""
    rows = once(lambda: ablations.smt_sweep(thread_counts=(1, 2, 4)))
    print()
    print(format_table(rows, title="Extension: hardware thread contexts per core"))
    one, two = rows[0], rows[1]
    assert two["syncron"] < one["syncron"], "2 contexts must beat 1"
    # Ideal has no sync stalls to hide, so SMT helps it less (relatively).
    syncron_gain = one["syncron"] / two["syncron"]
    ideal_gain = one["ideal"] / two["ideal"]
    assert syncron_gain > ideal_gain * 0.9


def test_se_latency_knee(once):
    """SynCron's edge over Hier survives a much slower SPU: the advantage
    comes from the ST and hierarchy, not just the 12-cycle service."""
    rows = once(lambda: ablations.se_vs_server_latency(se_cycles=(3, 12, 96)))
    print()
    print(format_table(rows, title="Extension: SE service-time knee (stack)"))
    assert rows[0]["syncron_vs_hier"] >= rows[-1]["syncron_vs_hier"]
    paper_point = next(row for row in rows if row["se_service_cycles"] == 12)
    assert paper_point["syncron_vs_hier"] > 1.0
