#!/usr/bin/env python
"""Perf-regression gate: compare fresh BENCH_*.json against committed baselines.

The benchmark suite (``benchmarks/bench_kernel.py``, ``bench_sweep.py``,
``bench_topology.py``, ``bench_corun.py``) writes machine-readable
artifacts; this script diffs a fresh set against the committed baselines
with per-metric tolerances and exits non-zero on regression, so CI
catches "the kernel got 3x slower" or "warm cache re-simulates" before
merge.

Gate kinds:

- ``min_ratio`` — fresh must be >= baseline * (1 - tol).  For speedups
  and throughputs, where *higher is better* and noise is expected.
- ``within``    — |fresh - baseline| <= tol * |baseline|.  For
  deterministic simulated physics (slowdowns, fairness, makespans) where
  drift in either direction means behaviour changed.
- ``equals``    — exact match.  For integer event/cycle counts the
  simulator must reproduce bit-identically.
- ``expect``    — fresh must equal a literal value regardless of the
  baseline (e.g. warm-cache executions == 0).

Dotted paths address into the JSON; a ``*`` segment fans out over every
key of the dict at that level (resolved against the baseline document,
then looked up in the fresh one — a path that disappeared is a FAIL).

Wall-clock gates are skipped when either run says parallelism is "not
measurable (cpu_count=1)" — a 1-cpu CI box cannot show parallel speedup.
A BENCH file missing from the fresh directory SKIPs its gates with a
notice (partial benchmark runs stay usable).

Usage::

    python benchmarks/check_regression.py                   # repo root vs itself
    python benchmarks/check_regression.py --fresh fresh-bench/
    python benchmarks/check_regression.py --fresh fresh-bench/ --json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent


# ----------------------------------------------------------------------
# Gate table
# ----------------------------------------------------------------------
def _cpu1(fresh: Dict, base: Dict) -> Optional[str]:
    """Skip-reason when parallel speedup is not measurable on this box."""
    for doc, who in ((fresh, "fresh"), (base, "baseline")):
        if doc.get("cpu_count") == 1:
            return f"{who} run has cpu_count=1 (parallelism not measurable)"
        note = str(doc.get("parallelism", ""))
        if "not measurable" in note:
            return f"{who} run: {note}"
    return None


#: file -> list of (kind, path, tolerance-or-expected, skip_if)
GATES: Dict[str, List[Tuple]] = {
    "BENCH_kernel.json": [
        # Event-kernel throughput: the headline optimisation must hold.
        ("min_ratio", "kernel_microbench.*.speedup", 0.5, None),
        ("min_ratio", "poll_storm.elision_speedup_vs_explicit", 0.5, None),
        ("min_ratio", "poll_storm.elision_speedup_vs_legacy", 0.5, None),
        ("min_ratio", "end_to_end_spin.wall_clock_speedup", 0.15, None),
        # Deterministic physics: identical or the simulator changed.
        ("equals", "end_to_end.simulated_cycles", None, None),
        ("equals", "end_to_end.critical_sections", None, None),
        ("equals", "end_to_end_spin.*.simulated_cycles", None, None),
        ("equals", "end_to_end_spin.*.critical_sections", None, None),
        ("equals", "poll_storm.*.logical_events", None, None),
    ],
    "BENCH_sweep.json": [
        # A warm store must serve everything from cache.
        ("expect", "warm_workers1.simulations_executed", 0, None),
        ("expect", "warm_workers4.simulations_executed", 0, None),
        # Crash recovery re-runs exactly the abandoned leases.
        ("equals", "crash_and_reclaim.abandoned_leases", None, None),
        ("equals", "crash_and_reclaim.leases_reclaimed", None, None),
        ("equals", "crash_and_reclaim.simulations_executed", None, None),
        # Parallel drain should beat serial — only on a multi-core box.
        ("min_ratio", "workers.4.speedup_vs_serial", 0.3, _cpu1),
    ],
    "BENCH_topology.json": [
        # Fabric slowdowns are deterministic simulated physics.
        ("within", "fabrics.*.slowdown_vs_all_to_all.*.*", 0.02, None),
        ("within", "fabrics.*.mean_hops_16u", 0.02, None),
        ("equals", "fabrics.*.diameter_16u", None, None),
        # Degraded-ring scenario: reroute behaviour is deterministic; the
        # * fans out over mechanisms (the scenario dict has none of these
        # keys, so wildcard expansion skips it).
        ("within", "degraded.*.slowdown_vs_pristine", 0.02, None),
        ("equals", "degraded.*.reroutes", None, None),
        ("equals", "degraded.*.detour_bit_hops", None, None),
    ],
    "BENCH_corun.json": [
        ("expect", "isolation_identical", True, None),
        ("within", "unit_partitioned.*.*.*", 0.02, None),
        ("within", "core_interleaved_10_50.*.*", 0.02, None),
    ],
}


# ----------------------------------------------------------------------
# Path resolution
# ----------------------------------------------------------------------
def expand_paths(doc: Dict, path: str) -> List[str]:
    """All concrete dotted paths a wildcard pattern matches in ``doc``."""
    concrete = [[]]
    for segment in path.split("."):
        grown = []
        for prefix in concrete:
            node = lookup(doc, ".".join(prefix)) if prefix else doc
            if not isinstance(node, dict):
                continue
            keys = sorted(node) if segment == "*" else (
                [segment] if segment in node else [])
            for key in keys:
                grown.append(prefix + [key])
        concrete = grown
    return [".".join(p) for p in concrete]


_MISSING = object()


def lookup(doc: Dict, path: str):
    node = doc
    for segment in path.split("."):
        if not isinstance(node, dict) or segment not in node:
            return _MISSING
        node = node[segment]
    return node


# ----------------------------------------------------------------------
# Gate evaluation
# ----------------------------------------------------------------------
def check_gate(kind: str, path: str, arg, fresh: Dict, base: Dict) -> Dict:
    fresh_value = lookup(fresh, path)
    base_value = lookup(base, path)
    entry = {"path": path, "gate": kind,
             "fresh": None if fresh_value is _MISSING else fresh_value,
             "baseline": None if base_value is _MISSING else base_value}
    if fresh_value is _MISSING:
        entry.update(status="FAIL",
                     detail="path missing from fresh artifact")
        return entry
    if kind == "expect":
        ok = fresh_value == arg
        entry.update(status="PASS" if ok else "FAIL",
                     detail=f"expected {arg!r}")
        return entry
    if base_value is _MISSING:
        entry.update(status="FAIL",
                     detail="path missing from baseline artifact")
        return entry
    if kind == "equals":
        ok = fresh_value == base_value
        entry.update(status="PASS" if ok else "FAIL",
                     detail="must equal baseline")
    elif kind == "min_ratio":
        floor = base_value * (1.0 - arg)
        ok = fresh_value >= floor
        entry.update(status="PASS" if ok else "FAIL",
                     detail=f"floor {floor:.4g} (baseline - {arg:.0%})")
    elif kind == "within":
        band = abs(arg * base_value)
        ok = abs(fresh_value - base_value) <= band
        entry.update(status="PASS" if ok else "FAIL",
                     detail=f"baseline ± {arg:.0%}")
    else:  # pragma: no cover - gate-table typo guard
        entry.update(status="FAIL", detail=f"unknown gate kind {kind!r}")
    return entry


def check_file(name: str, fresh_dir: Path, base_dir: Path) -> List[Dict]:
    fresh_path = fresh_dir / name
    base_path = base_dir / name
    if not base_path.exists():
        return [{"file": name, "path": "-", "gate": "artifact",
                 "status": "SKIP",
                 "detail": f"no committed baseline at {base_path}"}]
    if not fresh_path.exists():
        return [{"file": name, "path": "-", "gate": "artifact",
                 "status": "SKIP",
                 "detail": f"fresh artifact not found at {fresh_path} "
                           "(benchmark not run)"}]
    fresh = json.loads(fresh_path.read_text(encoding="utf-8"))
    base = json.loads(base_path.read_text(encoding="utf-8"))
    results: List[Dict] = []
    for kind, pattern, arg, skip_if in GATES[name]:
        reason = skip_if(fresh, base) if skip_if is not None else None
        if reason is not None:
            results.append({"path": pattern, "gate": kind, "status": "SKIP",
                            "detail": reason})
            continue
        paths = expand_paths(base, pattern)
        if not paths:
            results.append({"path": pattern, "gate": kind, "status": "FAIL",
                            "detail": "pattern matched nothing in baseline"})
            continue
        for path in paths:
            results.append(check_gate(kind, path, arg, fresh, base))
    for entry in results:
        entry["file"] = name
    return results


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Gate fresh BENCH_*.json artifacts against baselines.")
    parser.add_argument("--fresh", default=str(REPO_ROOT), metavar="DIR",
                        help="directory holding freshly generated artifacts "
                             "(default: repo root, i.e. the baselines "
                             "themselves — a self-check)")
    parser.add_argument("--baseline", default=str(REPO_ROOT), metavar="DIR",
                        help="directory holding committed baselines "
                             "(default: repo root)")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable report on stdout")
    args = parser.parse_args(argv)

    fresh_dir = Path(args.fresh)
    base_dir = Path(args.baseline)
    results: List[Dict] = []
    for name in sorted(GATES):
        results.extend(check_file(name, fresh_dir, base_dir))

    failed = [r for r in results if r["status"] == "FAIL"]
    skipped = [r for r in results if r["status"] == "SKIP"]
    passed = [r for r in results if r["status"] == "PASS"]
    if args.json:
        print(json.dumps({"fresh": str(fresh_dir), "baseline": str(base_dir),
                          "passed": len(passed), "failed": len(failed),
                          "skipped": len(skipped), "results": results},
                         indent=2))
    else:
        width = max((len(f"{r['file']}:{r['path']}") for r in results),
                    default=10)
        for r in results:
            tag = f"{r['file']}:{r['path']}"
            line = f"[{r['status']:<4}] {tag:<{width}}  {r['detail']}"
            if r["status"] == "FAIL" and r.get("fresh") is not None:
                line += (f"  (fresh={r['fresh']!r} "
                         f"baseline={r.get('baseline')!r})")
            print(line)
        print(f"\nregression gate: {len(passed)} passed, "
              f"{len(failed)} failed, {len(skipped)} skipped")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
