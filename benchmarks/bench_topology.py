"""Interconnect-topology benchmark: routed-fabric cost and overhead.

Run directly::

    PYTHONPATH=src python benchmarks/bench_topology.py [--output BENCH_topology.json]

Two angles on the new :mod:`repro.sim.topo` subsystem:

1. **Simulated cost** — the ``topo_sensitivity`` table (lock microbenchmark,
   every fabric, 4 and 16 units): per-fabric slowdown vs the ideal
   all-to-all interconnect, plus each fabric's mean hop count and diameter.
   Asserts the physics before reporting: no routed fabric may beat
   all-to-all at 16 units.
2. **Host overhead** — raw ``remote_latency`` calls/second per fabric on a
   16-unit system.  The routed path replaced the seed's direct per-pair
   link lookup, so this guards the interconnect hot path against
   regressions (all-to-all routes are 1 link; mesh routes average ~2.7).
3. **Graceful degradation** — an 8-unit ring loses both directions of one
   channel mid-run; per mechanism the run must complete by rerouting, and
   its slowdown / reroute / detour counters are recorded as deterministic
   physics for the regression gate.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import NDPSystem, api  # noqa: E402
from repro.harness.experiments import ALL_TOPOLOGIES, topo_sensitivity  # noqa: E402
from repro.sim import Compute  # noqa: E402
from repro.sim.config import ndp_2_5d  # noqa: E402
from repro.sim.network import Interconnect  # noqa: E402
from repro.sim.stats import SystemStats  # noqa: E402
from repro.sim.topo import build_topology  # noqa: E402

UNIT_STEPS = (4, 16)
MECHANISMS = ("hier", "syncron")

#: the degraded scenario: both directions of ring channel (0, 1) fail
#: permanently at cycle 400 — early enough to land mid-run.
DEGRADED_UNITS = 8
DEGRADED_FAULTS = ((0, 1, 400, 0), (1, 0, 400, 0))
DEGRADED_ROUNDS = 8


def bench_remote_latency(topology: str, calls: int = 100_000) -> float:
    """remote_latency calls/second over a fixed 16-unit traffic pattern."""
    config = ndp_2_5d(num_units=16, topology=topology)
    inter = Interconnect(config, SystemStats())
    pairs = [(src, (src + stride) % 16)
             for stride in (1, 3, 7) for src in range(16)]
    start = time.perf_counter()
    now = 0
    for i in range(calls):
        src, dst = pairs[i % len(pairs)]
        inter.remote_latency(src, dst, now, 64)
        now += 40
    elapsed = time.perf_counter() - start
    return calls / elapsed


def _run_ring_lock(mechanism: str, fault_links=()) -> tuple:
    """(stats, makespan) of the deterministic ring-lock microbenchmark."""
    config = ndp_2_5d(num_units=DEGRADED_UNITS, cores_per_unit=4,
                      client_cores_per_unit=3, topology="ring",
                      fault_links=fault_links)
    system = NDPSystem(config, mechanism=mechanism)
    lock = system.create_syncvar(name="bench_lock")

    def worker():
        for _ in range(DEGRADED_ROUNDS):
            yield api.lock_acquire(lock)
            yield Compute(20)
            yield api.lock_release(lock)

    cycles = system.run_programs(
        {core.core_id: worker() for core in system.cores})
    return system.stats, cycles


def bench_degraded() -> dict:
    """The graceful-degradation scenario, asserted before reporting."""
    out = {
        "scenario": {
            "workload": "ring lock microbenchmark",
            "num_units": DEGRADED_UNITS,
            "fault_links": [list(f) for f in DEGRADED_FAULTS],
            "rounds": DEGRADED_ROUNDS,
        },
    }
    for mech in MECHANISMS:
        _, pristine = _run_ring_lock(mech)
        stats, cycles = _run_ring_lock(mech, fault_links=DEGRADED_FAULTS)
        if not (cycles > pristine and stats.reroutes > 0):
            raise AssertionError(
                f"degraded ring did not reroute under {mech}: "
                f"{cycles} vs pristine {pristine} cycles, "
                f"{stats.reroutes} reroutes"
            )
        out[mech] = {
            "slowdown_vs_pristine": round(cycles / pristine, 4),
            "reroutes": stats.reroutes,
            "detour_bit_hops": stats.detour_bit_hops,
            "failed_link_cycles": stats.failed_link_cycles,
        }
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default=None,
                        help="write results as JSON to this path")
    parser.add_argument("--calls", type=int, default=100_000,
                        help="remote_latency calls per fabric (default 100k)")
    args = parser.parse_args(argv)

    wall_start = time.perf_counter()
    rows = topo_sensitivity(topologies=ALL_TOPOLOGIES, unit_steps=UNIT_STEPS,
                            mechanisms=MECHANISMS)
    sweep_seconds = time.perf_counter() - wall_start

    by_key = {(r["units"], r["topology"]): r for r in rows}
    for topology in ("ring", "mesh2d", "torus2d"):
        for mech in MECHANISMS:
            slowdown = by_key[(16, topology)][mech]
            if slowdown < 1.0:
                raise AssertionError(
                    f"{topology} beat all_to_all at 16 units ({mech}: "
                    f"{slowdown:.3f}x) — routed contention model is broken"
                )

    results = {
        "benchmark": "interconnect_topology",
        "scenario": {
            "workload": "primitive lock microbenchmark",
            "unit_steps": list(UNIT_STEPS),
            "mechanisms": list(MECHANISMS),
        },
        "sweep_seconds": round(sweep_seconds, 3),
        "fabrics": {},
    }
    for topology in ALL_TOPOLOGIES:
        topo16 = build_topology(ndp_2_5d(num_units=16, topology=topology))
        calls_per_sec = bench_remote_latency(topology, calls=args.calls)
        fabric = {
            "mean_hops_16u": round(topo16.mean_hops(), 3),
            "diameter_16u": topo16.diameter(),
            "remote_latency_calls_per_sec": round(calls_per_sec),
            "slowdown_vs_all_to_all": {
                f"{units}u": {
                    mech: round(by_key[(units, topology)][mech], 3)
                    for mech in MECHANISMS
                }
                for units in UNIT_STEPS
            },
        }
        results["fabrics"][topology] = fabric
        slow16 = fabric["slowdown_vs_all_to_all"]["16u"]
        print(f"{topology:10s} mean_hops={fabric['mean_hops_16u']:<5} "
              f"16u slowdown: hier {slow16['hier']:.3f}x / "
              f"syncron {slow16['syncron']:.3f}x, "
              f"{fabric['remote_latency_calls_per_sec']:,} routed calls/s")

    results["degraded"] = bench_degraded()
    for mech in MECHANISMS:
        cell = results["degraded"][mech]
        print(f"degraded   ring {DEGRADED_UNITS}u, severed (0,1): {mech} "
              f"{cell['slowdown_vs_pristine']:.3f}x slower, "
              f"{cell['reroutes']} reroutes, "
              f"{cell['detour_bit_hops']} detour bit-hops")

    if args.output:
        Path(args.output).write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
