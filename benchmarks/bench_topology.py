"""Interconnect-topology benchmark: routed-fabric cost and overhead.

Run directly::

    PYTHONPATH=src python benchmarks/bench_topology.py [--output BENCH_topology.json]

Two angles on the new :mod:`repro.sim.topo` subsystem:

1. **Simulated cost** — the ``topo_sensitivity`` table (lock microbenchmark,
   every fabric, 4 and 16 units): per-fabric slowdown vs the ideal
   all-to-all interconnect, plus each fabric's mean hop count and diameter.
   Asserts the physics before reporting: no routed fabric may beat
   all-to-all at 16 units.
2. **Host overhead** — raw ``remote_latency`` calls/second per fabric on a
   16-unit system.  The routed path replaced the seed's direct per-pair
   link lookup, so this guards the interconnect hot path against
   regressions (all-to-all routes are 1 link; mesh routes average ~2.7).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.harness.experiments import ALL_TOPOLOGIES, topo_sensitivity  # noqa: E402
from repro.sim.config import ndp_2_5d  # noqa: E402
from repro.sim.network import Interconnect  # noqa: E402
from repro.sim.stats import SystemStats  # noqa: E402
from repro.sim.topo import build_topology  # noqa: E402

UNIT_STEPS = (4, 16)
MECHANISMS = ("hier", "syncron")


def bench_remote_latency(topology: str, calls: int = 100_000) -> float:
    """remote_latency calls/second over a fixed 16-unit traffic pattern."""
    config = ndp_2_5d(num_units=16, topology=topology)
    inter = Interconnect(config, SystemStats())
    pairs = [(src, (src + stride) % 16)
             for stride in (1, 3, 7) for src in range(16)]
    start = time.perf_counter()
    now = 0
    for i in range(calls):
        src, dst = pairs[i % len(pairs)]
        inter.remote_latency(src, dst, now, 64)
        now += 40
    elapsed = time.perf_counter() - start
    return calls / elapsed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default=None,
                        help="write results as JSON to this path")
    parser.add_argument("--calls", type=int, default=100_000,
                        help="remote_latency calls per fabric (default 100k)")
    args = parser.parse_args(argv)

    wall_start = time.perf_counter()
    rows = topo_sensitivity(topologies=ALL_TOPOLOGIES, unit_steps=UNIT_STEPS,
                            mechanisms=MECHANISMS)
    sweep_seconds = time.perf_counter() - wall_start

    by_key = {(r["units"], r["topology"]): r for r in rows}
    for topology in ("ring", "mesh2d", "torus2d"):
        for mech in MECHANISMS:
            slowdown = by_key[(16, topology)][mech]
            if slowdown < 1.0:
                raise AssertionError(
                    f"{topology} beat all_to_all at 16 units ({mech}: "
                    f"{slowdown:.3f}x) — routed contention model is broken"
                )

    results = {
        "benchmark": "interconnect_topology",
        "scenario": {
            "workload": "primitive lock microbenchmark",
            "unit_steps": list(UNIT_STEPS),
            "mechanisms": list(MECHANISMS),
        },
        "sweep_seconds": round(sweep_seconds, 3),
        "fabrics": {},
    }
    for topology in ALL_TOPOLOGIES:
        topo16 = build_topology(ndp_2_5d(num_units=16, topology=topology))
        calls_per_sec = bench_remote_latency(topology, calls=args.calls)
        fabric = {
            "mean_hops_16u": round(topo16.mean_hops(), 3),
            "diameter_16u": topo16.diameter(),
            "remote_latency_calls_per_sec": round(calls_per_sec),
            "slowdown_vs_all_to_all": {
                f"{units}u": {
                    mech: round(by_key[(units, topology)][mech], 3)
                    for mech in MECHANISMS
                }
                for units in UNIT_STEPS
            },
        }
        results["fabrics"][topology] = fabric
        slow16 = fabric["slowdown_vs_all_to_all"]["16u"]
        print(f"{topology:10s} mean_hops={fabric['mean_hops_16u']:<5} "
              f"16u slowdown: hier {slow16['hier']:.3f}x / "
              f"syncron {slow16['syncron']:.3f}x, "
              f"{fabric['remote_latency_calls_per_sec']:,} routed calls/s")

    if args.output:
        Path(args.output).write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
