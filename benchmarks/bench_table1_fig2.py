"""Table 1 and Fig. 2: the motivational coherence experiments."""

from repro.harness.motivation import fig2, table1
from repro.harness.reporting import format_table


def test_table1_coherence_lock_throughput(once):
    rows = once(table1)
    print()
    print(format_table(rows, title="Table 1: lock throughput (Mops/s), 2-socket CPU"))
    for row in rows:
        # contention collapse 1 -> 14 threads (paper: 3.91x / 2.77x drops).
        assert row["14 threads single-socket"] < row["1 thread single-socket"]
        # NUMA penalty (paper: up to 2.29x drop).
        assert (row["2 threads different-socket"]
                < row["2 threads same-socket"])


def test_fig2_mesi_lock_stack_slowdown(once):
    result = once(fig2)
    print()
    print(format_table(result["a_cores"],
                       title="Fig 2a: stack slowdown (mesi-lock / ideal-lock), 1 unit"))
    print(format_table(result["b_units"],
                       title="Fig 2b: stack slowdown, 60 cores across units"))
    # Paper: ~2.03x at 60 cores / 1 unit; ~2.66x at 4 units.  We assert the
    # qualitative claim: a MESI lock costs the stack >1.5x everywhere.
    for row in result["a_cores"] + result["b_units"]:
        assert row["slowdown"] > 1.5
