"""Event-kernel throughput microbenchmark (events/sec) + end-to-end config.

Run directly::

    PYTHONPATH=src python benchmarks/bench_kernel.py [--output BENCH_kernel.json]

Two measurements:

1. **Kernel microbenchmark** — pure ``Simulator`` throughput on three event
   patterns that mirror the shapes the messaging layers generate (timer
   chains, same-cycle fan-out bursts, and a payload-carrying mix where each
   handler receives a message argument).  The current kernel is compared
   against ``LegacySimulator`` — a faithful copy of the seed implementation
   (tuple heap + per-event ``step()`` + closure-only callbacks) — so the
   speedup is measured, not guessed.

2. **End-to-end** — a representative SynCron configuration (4 units, lock +
   barrier mix over the real SE protocol stack) timed wall-clock, reporting
   simulated cycles, events processed, and events/sec through the full model.

Results are written as JSON so the perf trajectory is recorded per-PR
(``BENCH_kernel.json`` at the repo root; CI uploads it as an artifact).
"""

from __future__ import annotations

import argparse
import heapq
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.sim.engine import Simulator  # noqa: E402


# ----------------------------------------------------------------------
# The seed kernel, kept verbatim as the comparison baseline.
# ----------------------------------------------------------------------
class LegacySimulator:
    """The seed ``Simulator`` (pre-overhaul), for before/after numbers."""

    def __init__(self):
        self.now = 0
        self._queue = []
        self._seq = 0
        self._events_processed = 0
        self._running = False

    def schedule(self, delay, callback):
        if delay < 0:
            raise RuntimeError(f"cannot schedule {delay} cycles into the past")
        self.schedule_at(self.now + int(delay), callback)

    def schedule_at(self, time, callback):
        if time < self.now:
            raise RuntimeError(
                f"cannot schedule at t={time}, current time is {self.now}"
            )
        heapq.heappush(self._queue, (int(time), self._seq, callback))
        self._seq += 1

    def step(self):
        if not self._queue:
            return False
        time, _seq, callback = heapq.heappop(self._queue)
        self.now = time
        self._events_processed += 1
        callback()
        return True

    def run(self, until=None, max_events=None):
        self._running = True
        processed = 0
        try:
            while self._queue:
                if until is not None and self._queue[0][0] > until:
                    self.now = until
                    break
                if max_events is not None and processed >= max_events:
                    raise RuntimeError(f"exceeded max_events={max_events}")
                self.step()
                processed += 1
        finally:
            self._running = False


# ----------------------------------------------------------------------
# Kernel workloads.  Each returns the number of events processed.
#
# The "legacy" variants drive LegacySimulator the way the seed codebase did:
# argument-carrying callbacks must be wrapped in a closure per event, because
# the old schedule() took a no-arg callable.  The "current" variants use the
# *args API.  That makes this an end-to-end comparison of kernel + idiom,
# which is what the repo actually pays per event.
# ----------------------------------------------------------------------
def _timer_chains_legacy(n_chains: int, n_ticks: int) -> int:
    sim = LegacySimulator()
    count = [0]

    def tick():
        count[0] += 1
        if count[0] < total:
            sim.schedule(3, tick)

    total = n_chains * n_ticks
    for c in range(n_chains):
        sim.schedule(c, tick)
    sim.run()
    return total


def _timer_chains_current(n_chains: int, n_ticks: int) -> int:
    sim = Simulator()
    count = [0]

    def tick():
        count[0] += 1
        if count[0] < total:
            sim.schedule(3, tick)

    total = n_chains * n_ticks
    for c in range(n_chains):
        sim.schedule(c, tick)
    sim.run()
    return total


def _burst_once(sim, width, leaf):
    def burst():
        for _ in range(width):
            sim.schedule(0, leaf)
    return burst


def _fanout_legacy(n_rounds: int, width: int) -> int:
    sim = LegacySimulator()
    fired = [0]

    def leaf():
        fired[0] += 1

    for r in range(n_rounds):
        sim.schedule_at(5 * r, _burst_once(sim, width, leaf))
    sim.run()
    return fired[0]


def _fanout_current(n_rounds: int, width: int) -> int:
    sim = Simulator()
    fired = [0]

    def leaf():
        fired[0] += 1

    for r in range(n_rounds):
        sim.schedule_at(5 * r, _burst_once(sim, width, leaf))
    sim.run()
    return fired[0]


def _message_mix_legacy(n_messages: int) -> int:
    """Handlers that need their message payload: the seed idiom was a
    closure per event (``lambda: handle(msg)``), exactly like the SE
    receive/service/grant paths."""
    sim = LegacySimulator()
    handled = [0]

    def handle(value):
        handled[0] += 1
        if value > 0:
            sim.schedule(7, lambda v=value - 1: handle(v))

    for i in range(n_messages):
        sim.schedule(i % 13, lambda: handle(4))
    sim.run()
    return handled[0]


def _message_mix_current(n_messages: int) -> int:
    sim = Simulator()
    handled = [0]

    def handle(value):
        handled[0] += 1
        if value > 0:
            sim.schedule(7, handle, value - 1)

    for i in range(n_messages):
        sim.schedule(i % 13, handle, 4)
    sim.run()
    return handled[0]


def _time_events(fn, *args) -> dict:
    start = time.perf_counter()
    events = fn(*args)
    elapsed = time.perf_counter() - start
    return {"events": events, "seconds": elapsed,
            "events_per_sec": events / elapsed if elapsed > 0 else float("inf")}


def kernel_microbench(scale: int = 1) -> dict:
    """Compare legacy vs current kernel on the three event shapes."""
    chains = (200, 100 * scale)
    fanout = (400 * scale, 50)
    messages = 120_000 * scale

    results = {}
    for name, legacy_fn, current_fn, args in (
        ("timer_chains", _timer_chains_legacy, _timer_chains_current, chains),
        ("same_cycle_fanout", _fanout_legacy, _fanout_current, fanout),
        ("message_mix", _message_mix_legacy, _message_mix_current, (messages,)),
    ):
        legacy = _time_events(legacy_fn, *args)
        current = _time_events(current_fn, *args)
        results[name] = {
            "legacy": legacy,
            "current": current,
            "speedup": current["events_per_sec"] / legacy["events_per_sec"],
        }

    total_legacy = sum(r["legacy"]["events"] for r in results.values())
    sec_legacy = sum(r["legacy"]["seconds"] for r in results.values())
    total_current = sum(r["current"]["events"] for r in results.values())
    sec_current = sum(r["current"]["seconds"] for r in results.values())
    results["overall"] = {
        "legacy_events_per_sec": total_legacy / sec_legacy,
        "current_events_per_sec": total_current / sec_current,
        "speedup": (total_current / sec_current) / (total_legacy / sec_legacy),
    }
    return results


# ----------------------------------------------------------------------
# End-to-end: a representative SynCron run through the full model stack.
# ----------------------------------------------------------------------
def end_to_end() -> dict:
    from repro.core import api
    from repro.sim.config import ndp_2_5d
    from repro.sim.system import NDPSystem

    config = ndp_2_5d(num_units=4, cores_per_unit=5, client_cores_per_unit=4)
    system = NDPSystem(config, mechanism="syncron")
    lock = system.create_syncvar(name="bench_lock")
    barrier = system.create_syncvar(name="bench_barrier")
    n_clients = config.total_clients
    counter = [0]

    def worker(rounds=150):
        for _ in range(rounds):
            yield api.lock_acquire(lock)
            counter[0] += 1
            yield api.lock_release(lock)
            yield api.barrier_wait_across_units(barrier, n_clients)

    programs = {core.core_id: worker() for core in system.cores}
    start = time.perf_counter()
    makespan = system.run_programs(programs)
    elapsed = time.perf_counter() - start
    events = system.sim.events_processed
    return {
        "config": "4 units x 4 clients, syncron, lock+barrier x150",
        "simulated_cycles": makespan,
        "events": events,
        "seconds": elapsed,
        "events_per_sec": events / elapsed if elapsed > 0 else float("inf"),
        "critical_sections": counter[0],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_kernel.json")
    parser.add_argument("--scale", type=int, default=1,
                        help="multiply microbenchmark event counts (min 1)")
    args = parser.parse_args(argv)

    micro = kernel_microbench(scale=max(args.scale, 1))
    e2e = end_to_end()
    report = {"kernel_microbench": micro, "end_to_end": e2e}

    overall = micro["overall"]
    print("kernel microbenchmark (events/sec):")
    for name in ("timer_chains", "same_cycle_fanout", "message_mix"):
        r = micro[name]
        print(f"  {name:18s} legacy {r['legacy']['events_per_sec']:>12,.0f}"
              f"  current {r['current']['events_per_sec']:>12,.0f}"
              f"  speedup {r['speedup']:.2f}x")
    print(f"  {'overall':18s} legacy {overall['legacy_events_per_sec']:>12,.0f}"
          f"  current {overall['current_events_per_sec']:>12,.0f}"
          f"  speedup {overall['speedup']:.2f}x")
    print(f"end-to-end: {e2e['events']:,} events in {e2e['seconds']:.2f}s"
          f" -> {e2e['events_per_sec']:,.0f} events/sec"
          f" ({e2e['simulated_cycles']:,} simulated cycles)")

    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


# pytest entry point (collected via python_files = bench_*.py): one cheap
# smoke round so CI exercises the benchmark path itself.
def test_kernel_bench_smoke():
    micro = kernel_microbench(scale=1)
    assert micro["overall"]["current_events_per_sec"] > 0
    assert micro["overall"]["speedup"] > 1.0


if __name__ == "__main__":
    raise SystemExit(main())
