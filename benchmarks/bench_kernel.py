"""Event-kernel throughput microbenchmark (events/sec) + end-to-end config.

Run directly::

    PYTHONPATH=src python benchmarks/bench_kernel.py [--output BENCH_kernel.json]

Two measurements:

1. **Kernel microbenchmark** — pure ``Simulator`` throughput on three event
   patterns that mirror the shapes the messaging layers generate (timer
   chains, same-cycle fan-out bursts, and a payload-carrying mix where each
   handler receives a message argument).  The current kernel is compared
   against ``LegacySimulator`` — a faithful copy of the seed implementation
   (tuple heap + per-event ``step()`` + closure-only callbacks) — so the
   speedup is measured, not guessed.

2. **End-to-end** — a representative SynCron configuration (4 units, lock +
   barrier mix over the real SE protocol stack) timed wall-clock, reporting
   simulated cycles, events processed, and events/sec through the full model.

Results are written as JSON so the perf trajectory is recorded per-PR
(``BENCH_kernel.json`` at the repo root; CI uploads it as an artifact).
"""

from __future__ import annotations

import argparse
import heapq
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.sim.engine import Simulator  # noqa: E402


# ----------------------------------------------------------------------
# The seed kernel, kept verbatim as the comparison baseline.
# ----------------------------------------------------------------------
class LegacySimulator:
    """The seed ``Simulator`` (pre-overhaul), for before/after numbers."""

    def __init__(self):
        self.now = 0
        self._queue = []
        self._seq = 0
        self._events_processed = 0
        self._running = False

    def schedule(self, delay, callback):
        if delay < 0:
            raise RuntimeError(f"cannot schedule {delay} cycles into the past")
        self.schedule_at(self.now + int(delay), callback)

    def schedule_at(self, time, callback):
        if time < self.now:
            raise RuntimeError(
                f"cannot schedule at t={time}, current time is {self.now}"
            )
        heapq.heappush(self._queue, (int(time), self._seq, callback))
        self._seq += 1

    def step(self):
        if not self._queue:
            return False
        time, _seq, callback = heapq.heappop(self._queue)
        self.now = time
        self._events_processed += 1
        callback()
        return True

    def run(self, until=None, max_events=None):
        self._running = True
        processed = 0
        try:
            while self._queue:
                if until is not None and self._queue[0][0] > until:
                    self.now = until
                    break
                if max_events is not None and processed >= max_events:
                    raise RuntimeError(f"exceeded max_events={max_events}")
                self.step()
                processed += 1
        finally:
            self._running = False


# ----------------------------------------------------------------------
# Kernel workloads.  Each returns the number of events processed.
#
# The "legacy" variants drive LegacySimulator the way the seed codebase did:
# argument-carrying callbacks must be wrapped in a closure per event, because
# the old schedule() took a no-arg callable.  The "current" variants use the
# *args API.  That makes this an end-to-end comparison of kernel + idiom,
# which is what the repo actually pays per event.
# ----------------------------------------------------------------------
def _timer_chains_legacy(n_chains: int, n_ticks: int) -> int:
    sim = LegacySimulator()
    count = [0]

    def tick():
        count[0] += 1
        if count[0] < total:
            sim.schedule(3, tick)

    total = n_chains * n_ticks
    for c in range(n_chains):
        sim.schedule(c, tick)
    sim.run()
    return total


def _timer_chains_current(n_chains: int, n_ticks: int) -> int:
    sim = Simulator()
    count = [0]

    def tick():
        count[0] += 1
        if count[0] < total:
            sim.schedule(3, tick)

    total = n_chains * n_ticks
    for c in range(n_chains):
        sim.schedule(c, tick)
    sim.run()
    return total


def _burst_once(sim, width, leaf):
    def burst():
        for _ in range(width):
            sim.schedule(0, leaf)
    return burst


def _fanout_legacy(n_rounds: int, width: int) -> int:
    sim = LegacySimulator()
    fired = [0]

    def leaf():
        fired[0] += 1

    for r in range(n_rounds):
        sim.schedule_at(5 * r, _burst_once(sim, width, leaf))
    sim.run()
    return fired[0]


def _fanout_current(n_rounds: int, width: int) -> int:
    sim = Simulator()
    fired = [0]

    def leaf():
        fired[0] += 1

    for r in range(n_rounds):
        sim.schedule_at(5 * r, _burst_once(sim, width, leaf))
    sim.run()
    return fired[0]


def _message_mix_legacy(n_messages: int) -> int:
    """Handlers that need their message payload: the seed idiom was a
    closure per event (``lambda: handle(msg)``), exactly like the SE
    receive/service/grant paths."""
    sim = LegacySimulator()
    handled = [0]

    def handle(value):
        handled[0] += 1
        if value > 0:
            sim.schedule(7, lambda v=value - 1: handle(v))

    for i in range(n_messages):
        sim.schedule(i % 13, lambda: handle(4))
    sim.run()
    return handled[0]


def _message_mix_current(n_messages: int) -> int:
    sim = Simulator()
    handled = [0]

    def handle(value):
        handled[0] += 1
        if value > 0:
            sim.schedule(7, handle, value - 1)

    for i in range(n_messages):
        sim.schedule(i % 13, handle, 4)
    sim.run()
    return handled[0]


# ----------------------------------------------------------------------
# Poll storm: N spinners on one contended flag — the shape the spin
# baselines (rmw_spin/bakery) generate.  Three implementations:
#
# - legacy:   free-running poll chains on the seed kernel (one event per
#             poll per waiter, the pre-wait-channel idiom),
# - explicit: wait-channels with elision OFF (the burn chain materializes
#             every poll tick, wakes computed by the same arithmetic),
# - elided:   wait-channels with elision ON (no poll events at all; the
#             skipped ticks are counted in ``Simulator.elided_events``).
#
# Throughput is reported in LOGICAL events/sec — (processed + elided) per
# wall-clock second — so the three variants are compared on the same work.
# ----------------------------------------------------------------------
def _poll_storm_legacy(n_waiters: int, target: int,
                       period: int = 5, cs: int = 200) -> tuple:
    sim = LegacySimulator()
    flag = [0]
    acquired = [0]

    def poll(wid):
        if acquired[0] >= target:
            return
        if flag[0] == 0:
            flag[0] = 1
            acquired[0] += 1
            sim.schedule(cs, lambda w=wid: release(w))
        else:
            sim.schedule(period, lambda w=wid: poll(w))

    def release(wid):
        flag[0] = 0
        if acquired[0] < target:
            sim.schedule(period, lambda w=wid: poll(w))

    for wid in range(n_waiters):
        sim.schedule(1 + wid, lambda w=wid: poll(w))
    sim.run()
    return sim._events_processed, 0


def _poll_storm_channel(n_waiters: int, target: int, elide: bool,
                        period: int = 5, cs: int = 200) -> tuple:
    sim = Simulator(elide_waits=elide)
    channel = sim.channel("storm")
    flag = [0]
    acquired = [0]

    def wake(_polls, wid):
        if acquired[0] >= target:
            return
        if flag[0] == 0:
            flag[0] = 1
            acquired[0] += 1
            sim.schedule(cs, release, wid)
        else:
            channel.wait(wake, period, period, wid)

    def release(wid):
        flag[0] = 0
        channel.signal()
        if acquired[0] < target:
            channel.wait(wake, period, period, wid)

    for wid in range(n_waiters):
        sim.schedule(1 + wid, wake, 0, wid)
    sim.run()
    return sim.events_processed, sim.elided_events


def poll_storm_bench(n_waiters: int = 32, target: int = 300) -> dict:
    """Legacy vs explicit vs elided throughput on the spin-storm shape."""
    results = {}
    for name, fn, args in (
        ("legacy", _poll_storm_legacy, (n_waiters, target)),
        ("explicit", _poll_storm_channel, (n_waiters, target, False)),
        ("elided", _poll_storm_channel, (n_waiters, target, True)),
    ):
        start = time.perf_counter()
        processed, elided = fn(*args)
        elapsed = time.perf_counter() - start
        logical = processed + elided
        results[name] = {
            "events_processed": processed,
            "elided_events": elided,
            "logical_events": logical,
            "seconds": elapsed,
            "logical_events_per_sec": (
                logical / elapsed if elapsed > 0 else float("inf")
            ),
        }
    explicit = results["explicit"]["logical_events_per_sec"]
    results["elision_speedup_vs_explicit"] = (
        results["elided"]["logical_events_per_sec"] / explicit
        if explicit else float("inf")
    )
    results["elision_speedup_vs_legacy"] = (
        results["elided"]["logical_events_per_sec"]
        / results["legacy"]["logical_events_per_sec"]
    )
    return results


def _time_events(fn, *args) -> dict:
    start = time.perf_counter()
    events = fn(*args)
    elapsed = time.perf_counter() - start
    return {"events": events, "seconds": elapsed,
            "events_per_sec": events / elapsed if elapsed > 0 else float("inf")}


def kernel_microbench(scale: int = 1) -> dict:
    """Compare legacy vs current kernel on the three event shapes."""
    chains = (200, 100 * scale)
    fanout = (400 * scale, 50)
    messages = 120_000 * scale

    results = {}
    for name, legacy_fn, current_fn, args in (
        ("timer_chains", _timer_chains_legacy, _timer_chains_current, chains),
        ("same_cycle_fanout", _fanout_legacy, _fanout_current, fanout),
        ("message_mix", _message_mix_legacy, _message_mix_current, (messages,)),
    ):
        legacy = _time_events(legacy_fn, *args)
        current = _time_events(current_fn, *args)
        results[name] = {
            "legacy": legacy,
            "current": current,
            "speedup": current["events_per_sec"] / legacy["events_per_sec"],
        }

    total_legacy = sum(r["legacy"]["events"] for r in results.values())
    sec_legacy = sum(r["legacy"]["seconds"] for r in results.values())
    total_current = sum(r["current"]["events"] for r in results.values())
    sec_current = sum(r["current"]["seconds"] for r in results.values())
    results["overall"] = {
        "legacy_events_per_sec": total_legacy / sec_legacy,
        "current_events_per_sec": total_current / sec_current,
        "speedup": (total_current / sec_current) / (total_legacy / sec_legacy),
    }
    return results


# ----------------------------------------------------------------------
# End-to-end: a representative SynCron run through the full model stack.
# ----------------------------------------------------------------------
def end_to_end() -> dict:
    from repro.core import api
    from repro.sim.config import ndp_2_5d
    from repro.sim.system import NDPSystem

    config = ndp_2_5d(num_units=4, cores_per_unit=5, client_cores_per_unit=4)
    system = NDPSystem(config, mechanism="syncron")
    lock = system.create_syncvar(name="bench_lock")
    barrier = system.create_syncvar(name="bench_barrier")
    n_clients = config.total_clients
    counter = [0]

    def worker(rounds=150):
        for _ in range(rounds):
            yield api.lock_acquire(lock)
            counter[0] += 1
            yield api.lock_release(lock)
            yield api.barrier_wait_across_units(barrier, n_clients)

    programs = {core.core_id: worker() for core in system.cores}
    start = time.perf_counter()
    makespan = system.run_programs(programs)
    elapsed = time.perf_counter() - start
    events = system.sim.events_processed
    return {
        "config": "4 units x 4 clients, syncron, lock+barrier x150",
        "simulated_cycles": makespan,
        "events": events,
        "seconds": elapsed,
        "events_per_sec": events / elapsed if elapsed > 0 else float("inf"),
        "critical_sections": counter[0],
    }


# ----------------------------------------------------------------------
# End-to-end elision: the same spin-baseline workload with wait-elision
# OFF vs ON.  Cycles and physics counters must be bit-identical (the CI
# determinism diff checks that broadly); this records the wall-clock win.
# ----------------------------------------------------------------------
def end_to_end_spin(rounds: int = 60, cs_cycles: int = 600) -> dict:
    from repro.core import api
    from repro.sim.config import ndp_2_5d
    from repro.sim.program import Compute
    from repro.sim.system import NDPSystem

    results = {}
    for label, elide in (("explicit", False), ("elided", True)):
        config = ndp_2_5d(
            num_units=2, cores_per_unit=5, client_cores_per_unit=4,
        ).with_(elide_waits=elide)
        system = NDPSystem(config, mechanism="rmw_spin")
        lock = system.create_syncvar(name="bench_spin")
        counter = [0]

        # A non-trivial critical section is the spin baselines' worst case:
        # every other core burns backoff polls for the whole hold time.
        def worker():
            for _ in range(rounds):
                yield api.lock_acquire(lock)
                counter[0] += 1
                yield Compute(cs_cycles)
                yield api.lock_release(lock)

        programs = {core.core_id: worker() for core in system.cores}
        start = time.perf_counter()
        makespan = system.run_programs(programs)
        elapsed = time.perf_counter() - start
        results[label] = {
            "simulated_cycles": makespan,
            "events_processed": system.sim.events_processed,
            "elided_events": system.sim.elided_events,
            "seconds": elapsed,
            "critical_sections": counter[0],
        }
    if results["explicit"]["simulated_cycles"] != results["elided"]["simulated_cycles"]:
        raise AssertionError(
            "elision changed the simulated makespan: "
            f"{results['explicit']['simulated_cycles']} vs "
            f"{results['elided']['simulated_cycles']}"
        )
    results["config"] = (
        f"2 units x 4 clients, rmw_spin, lock x{rounds} "
        f"(cs={cs_cycles} cycles)"
    )
    results["wall_clock_speedup"] = (
        results["explicit"]["seconds"] / results["elided"]["seconds"]
        if results["elided"]["seconds"] else float("inf")
    )
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_kernel.json")
    parser.add_argument("--scale", type=int, default=1,
                        help="multiply microbenchmark event counts (min 1)")
    args = parser.parse_args(argv)

    micro = kernel_microbench(scale=max(args.scale, 1))
    storm = poll_storm_bench()
    e2e = end_to_end()
    spin = end_to_end_spin()
    report = {"kernel_microbench": micro, "poll_storm": storm,
              "end_to_end": e2e, "end_to_end_spin": spin}

    overall = micro["overall"]
    print("kernel microbenchmark (events/sec):")
    for name in ("timer_chains", "same_cycle_fanout", "message_mix"):
        r = micro[name]
        print(f"  {name:18s} legacy {r['legacy']['events_per_sec']:>12,.0f}"
              f"  current {r['current']['events_per_sec']:>12,.0f}"
              f"  speedup {r['speedup']:.2f}x")
    print(f"  {'overall':18s} legacy {overall['legacy_events_per_sec']:>12,.0f}"
          f"  current {overall['current_events_per_sec']:>12,.0f}"
          f"  speedup {overall['speedup']:.2f}x")
    print("poll storm (logical events/sec):")
    for name in ("legacy", "explicit", "elided"):
        r = storm[name]
        print(f"  {name:18s} {r['logical_events_per_sec']:>14,.0f}"
              f"  ({r['events_processed']:,} processed"
              f" + {r['elided_events']:,} elided)")
    print(f"  elision speedup: {storm['elision_speedup_vs_explicit']:.1f}x"
          f" vs explicit, {storm['elision_speedup_vs_legacy']:.1f}x vs legacy")
    print(f"end-to-end: {e2e['events']:,} events in {e2e['seconds']:.2f}s"
          f" -> {e2e['events_per_sec']:,.0f} events/sec"
          f" ({e2e['simulated_cycles']:,} simulated cycles)")
    print(f"end-to-end spin (rmw_spin): {spin['wall_clock_speedup']:.2f}x"
          f" wall-clock with elision"
          f" ({spin['explicit']['seconds']:.2f}s -> "
          f"{spin['elided']['seconds']:.2f}s,"
          f" {spin['elided']['elided_events']:,} polls elided,"
          f" cycles identical)")

    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


# pytest entry point (collected via python_files = bench_*.py): one cheap
# smoke round so CI exercises the benchmark path itself.
def test_kernel_bench_smoke():
    micro = kernel_microbench(scale=1)
    assert micro["overall"]["current_events_per_sec"] > 0
    assert micro["overall"]["speedup"] > 1.0


def test_poll_storm_elision_speedup():
    """Elision must beat materialized polling by >= 3x on the storm shape."""
    storm = poll_storm_bench(n_waiters=32, target=150)
    assert storm["elided"]["logical_events"] > 0
    assert storm["elided"]["elided_events"] > storm["elided"]["events_processed"]
    assert storm["elision_speedup_vs_explicit"] >= 3.0


def test_end_to_end_spin_identical_cycles():
    """The rmw_spin workload's makespan is elision-invariant (asserted inside)."""
    spin = end_to_end_spin(rounds=8)
    assert spin["elided"]["elided_events"] > 0


if __name__ == "__main__":
    raise SystemExit(main())
