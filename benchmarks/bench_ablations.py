"""Ablations of SynCron's design choices (beyond the paper's own figures).

DESIGN.md calls out the knobs that define SynCron's advantage; these benches
quantify each one in isolation:

- SE service time (the SPU's 12 SE-cycles) vs a software handler's cost;
- indexing-counter count (aliasing forces unnecessary memory servicing);
- the Sec. 4.4.2 fairness threshold's throughput cost;
- the server-core handler cost model that separates Hier from SynCron.
"""

from repro.sim.config import ndp_2_5d
from repro.workloads.base import run_workload
from repro.workloads.datastructures import LinkedListWorkload, StackWorkload
from repro.harness.reporting import format_table


def test_se_service_time_ablation(once):
    """Faster SPUs help high-contention workloads; the paper's 12-cycle
    service is near the knee."""
    def sweep():
        rows = []
        for se_cycles in (3, 12, 48):
            config = ndp_2_5d(se_service_se_cycles=se_cycles)
            metrics = run_workload(StackWorkload, config, "syncron")
            rows.append({"se_cycles": se_cycles, "cycles": metrics.cycles})
        return rows

    rows = once(sweep)
    print()
    print(format_table(rows, title="Ablation: SE service time (stack)"))
    assert rows[0]["cycles"] <= rows[-1]["cycles"]


def test_indexing_counter_aliasing_ablation(once):
    """With very few counters, unrelated variables alias into memory
    servicing while the ST still has room (paper Sec. 4.2.3's caveat)."""
    def sweep():
        rows = []
        for counters in (1, 4, 256):
            config = ndp_2_5d(st_entries=4, indexing_counters=counters)
            metrics = run_workload(LinkedListWorkload, config, "syncron")
            rows.append({
                "counters": counters,
                "cycles": metrics.cycles,
                "overflow_pct": metrics.overflow_request_pct,
            })
        return rows

    rows = once(sweep)
    print()
    print(format_table(rows, title="Ablation: indexing counters (linked list, 4-entry ST)"))
    # aliasing can only increase the share of memory-serviced requests.
    assert rows[0]["overflow_pct"] >= rows[-1]["overflow_pct"]


def test_fairness_threshold_ablation(once):
    """Fairness transfers cost throughput under a hot lock — the reason the
    paper leaves the threshold to the OS/user (Sec. 4.4.2)."""
    def sweep():
        rows = []
        for threshold in (0, 2, 8):
            config = ndp_2_5d(fairness_threshold=threshold)
            metrics = run_workload(StackWorkload, config, "syncron")
            rows.append({"threshold": threshold, "cycles": metrics.cycles})
        return rows

    rows = once(sweep)
    print()
    print(format_table(rows, title="Ablation: lock fairness threshold (stack)"))
    no_fairness = rows[0]["cycles"]
    strict = rows[1]["cycles"]
    assert strict >= no_fairness * 0.95  # strict fairness is never free


def test_server_handler_cost_ablation(once):
    """Hier's gap to SynCron comes from software handling + memory-hosted
    state: shrink the handler cost and the gap shrinks with it."""
    def sweep():
        rows = []
        for instr in (4, 24, 96):
            config = ndp_2_5d(server_handler_instructions=instr)
            hier = run_workload(StackWorkload, config, "hier")
            syncron = run_workload(StackWorkload, config, "syncron")
            rows.append({
                "handler_instr": instr,
                "hier_cycles": hier.cycles,
                "syncron_cycles": syncron.cycles,
                "syncron_vs_hier": hier.cycles / syncron.cycles,
            })
        return rows

    rows = once(sweep)
    print()
    print(format_table(rows, title="Ablation: server handler cost (stack)"))
    # SynCron's cycles are independent of the server cost model…
    assert rows[0]["syncron_cycles"] == rows[-1]["syncron_cycles"]
    # …while Hier degrades as its handler gets heavier.
    assert rows[-1]["hier_cycles"] > rows[0]["hier_cycles"]
