"""Co-run benchmark: interference matrix, isolation identity, host overhead.

Run directly::

    PYTHONPATH=src python benchmarks/bench_corun.py [--output BENCH_corun.json]

Three angles on the multi-tenant subsystem:

1. **Isolation identity** — a single tenant owning the whole machine must be
   bit-identical (cycles/energy/bytes) to the plain single-workload run for
   every benchmarked mechanism; asserted before anything is reported.
2. **Interference matrix** — per-tenant slowdown vs running alone for a
   unit-partitioned pair (SynCron's per-unit SEs should isolate; Central's
   shared server should couple) and a core-interleaved pair (tenants share
   units, so even SynCron shows real contention).
3. **Host overhead** — simulated events/second of the two-tenant co-run vs
   the same workloads run back-to-back, so the attribution hooks on the
   core/SE/network hot paths are guarded against regressions.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.harness.experiments import interference, isolation_check  # noqa: E402
from repro.sim.config import ndp_2_5d  # noqa: E402
from repro.sim.system import NDPSystem  # noqa: E402
from repro.workloads.corun import CorunWorkload, TenantSpec  # noqa: E402
from repro.workloads.microbench import PrimitiveMicrobench  # noqa: E402

MECHANISMS = ("central", "syncron")
ROUNDS = 6
INTERVAL = 100


def _tenants():
    return [
        TenantSpec("locky",
                   lambda: PrimitiveMicrobench("lock", INTERVAL, rounds=ROUNDS),
                   units=(0, 1)),
        TenantSpec("barry",
                   lambda: PrimitiveMicrobench("barrier", INTERVAL,
                                               rounds=ROUNDS),
                   units=(2, 3)),
    ]


def bench_events_per_second(mechanism: str):
    """Simulated events/s: co-run vs the same workloads back-to-back."""
    config = ndp_2_5d()

    start = time.perf_counter()
    system = NDPSystem(config, mechanism=mechanism)
    CorunWorkload(_tenants()).run(system)
    corun_elapsed = time.perf_counter() - start
    corun_events = system.sim.events_processed

    start = time.perf_counter()
    solo_events = 0
    for spec in _tenants():
        system = NDPSystem(config, mechanism=mechanism)
        CorunWorkload([spec]).run(system)
        solo_events += system.sim.events_processed
    solo_elapsed = time.perf_counter() - start

    return {
        "corun_events_per_sec": round(corun_events / corun_elapsed),
        "solo_events_per_sec": round(solo_events / solo_elapsed),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default=None,
                        help="write results as JSON to this path")
    args = parser.parse_args(argv)

    identity = isolation_check(descs=("lock",), mechanisms=MECHANISMS,
                               interval=INTERVAL, rounds=ROUNDS)
    broken = [r for r in identity if not r["identical"]]
    if broken:
        raise AssertionError(
            f"single-tenant co-run is not bit-identical to the plain run: "
            f"{[(r['workload'], r['mechanism']) for r in broken]}"
        )

    wall_start = time.perf_counter()
    unit_rows = interference(groups=[("lock", "barrier")],
                             mechanisms=MECHANISMS,
                             topologies=("all_to_all", "ring"),
                             interval=INTERVAL, rounds=ROUNDS)
    core_rows = interference(groups=[("lock", "barrier")],
                             mechanisms=MECHANISMS,
                             topologies=("all_to_all",),
                             interval=INTERVAL, rounds=ROUNDS,
                             core_split=(10, 50))
    sweep_seconds = time.perf_counter() - wall_start

    def cell(rows, mech, topo):
        row = next(r for r in rows
                   if r["mechanism"] == mech and r["topology"] == topo)
        return {
            "lock_slowdown": round(row["lock_slowdown"], 3),
            "barrier_slowdown": round(row["barrier_slowdown"], 3),
            "fairness": round(row["fairness"], 3),
            "makespan": row["makespan"],
        }

    results = {
        "benchmark": "corun",
        "scenario": {
            "tenants": "lock + barrier primitive microbenchmarks",
            "rounds": ROUNDS, "interval": INTERVAL,
            "mechanisms": list(MECHANISMS),
        },
        "isolation_identical": True,
        "sweep_seconds": round(sweep_seconds, 3),
        "unit_partitioned": {
            mech: {topo: cell(unit_rows, mech, topo)
                   for topo in ("all_to_all", "ring")}
            for mech in MECHANISMS
        },
        "core_interleaved_10_50": {
            mech: cell(core_rows, mech, "all_to_all") for mech in MECHANISMS
        },
        "host_overhead": {
            mech: bench_events_per_second(mech) for mech in MECHANISMS
        },
    }

    for mech in MECHANISMS:
        unit = results["unit_partitioned"][mech]["all_to_all"]
        core = results["core_interleaved_10_50"][mech]
        host = results["host_overhead"][mech]
        print(f"{mech:8s} unit-split lock slowdown {unit['lock_slowdown']}x, "
              f"core-split {core['lock_slowdown']}x, "
              f"{host['corun_events_per_sec']:,} corun events/s "
              f"({host['solo_events_per_sec']:,} solo)")

    if args.output:
        Path(args.output).write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
