"""Fig. 14 (energy breakdown) and Fig. 15 (data movement), C/H/SC/I."""

from repro.harness.experiments import fig14, fig15
from repro.harness.reporting import format_table

COMBOS = ("cc.wk", "pr.wk", "ts.air")


def test_fig14_energy_breakdown(once):
    rows = once(lambda: fig14(combos=COMBOS))
    print()
    flat = []
    for row in rows:
        for mech in ("central", "hier", "syncron", "ideal"):
            parts = row[mech]
            flat.append({
                "app": row["app"], "mech": mech,
                "cache": parts["cache"], "network": parts["network"],
                "memory": parts["memory"], "total": parts["total"],
            })
    print(format_table(flat, title="Fig 14: energy normalized to Central"))
    for row in rows:
        # SynCron reduces total energy vs both server-core schemes
        # (paper: 2.22x vs Central, 1.94x vs Hier on average).
        assert row["syncron"]["total"] < row["central"]["total"]
        assert row["syncron"]["total"] <= row["hier"]["total"] * 1.02
        # and lands near Ideal (paper: 6.2% overhead).
        assert row["syncron"]["total"] <= row["ideal"]["total"] * 1.6


def test_fig15_data_movement(once):
    rows = once(lambda: fig15(combos=COMBOS))
    print()
    flat = []
    for row in rows:
        for mech in ("central", "hier", "syncron", "ideal"):
            parts = row[mech]
            flat.append({
                "app": row["app"], "mech": mech,
                "inside": parts["inside"], "across": parts["across"],
                "total": parts["total"],
            })
    print(format_table(flat, title="Fig 15: bytes moved, normalized to Central"))
    for row in rows:
        # Central moves the most across units; SynCron cuts both components
        # (paper: 2.08x / 2.04x average reduction, within 13.8% of Ideal).
        assert row["syncron"]["across"] < row["central"]["across"]
        assert row["syncron"]["total"] < row["central"]["total"]
        assert row["syncron"]["total"] <= row["hier"]["total"] * 1.02
