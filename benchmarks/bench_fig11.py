"""Fig. 11: pointer-chasing data-structure throughput, 15-60 cores."""

import pytest

from repro.harness.experiments import MECHANISMS, fig11
from repro.harness.reporting import format_table

HIGH_CONTENTION = ("stack", "queue", "arraymap", "priority_queue")
MEDIUM_CONTENTION = ("skiplist", "hashtable")
HIGH_DEMAND = ("linkedlist", "bst_fg")
NEGLIGIBLE = ("bst_drachsler",)

ALL = HIGH_CONTENTION + MEDIUM_CONTENTION + HIGH_DEMAND + NEGLIGIBLE


@pytest.mark.parametrize("structure", ALL)
def test_fig11_structure_throughput(once, structure):
    rows = once(lambda: fig11(structure, core_steps=(15, 30, 60)))
    print()
    print(format_table(
        rows, columns=["cores"] + list(MECHANISMS),
        title=f"Fig 11 ({structure}): Mops/s",
    ))
    top = rows[-1]  # 60 cores, 4 units: where the paper's gaps appear
    if structure in HIGH_CONTENTION + MEDIUM_CONTENTION + HIGH_DEMAND:
        # hierarchical hardware beats the centralized server…
        assert top["syncron"] > top["central"]
        # …and stays within reach of (or matches) Ideal.
        assert top["syncron"] <= top["ideal"] * 1.01
    else:
        # BST_Drachsler: sync is negligible; every scheme ties (±5%).
        values = [top[m] for m in MECHANISMS]
        assert max(values) / min(values) < 1.05
