"""Fig. 22 (ST size), Fig. 23 (overflow schemes), Tables 4, 7, 8."""

import os

from repro.core.area import se_area, table4_comparison, table8_rows
from repro.harness.experiments import APP_INPUTS, fig22, fig23, table7
from repro.harness.reporting import format_table


def test_fig22_st_size_sensitivity(once):
    combos = ("ts.air", "ts.pow") if os.environ.get("REPRO_SCALE", "small") == "small" \
        else ("cc.wk", "pr.wk", "ts.air", "ts.pow")
    rows = once(lambda: fig22(combos=combos, st_sizes=(64, 16, 4, 2)))
    print()
    print(format_table(rows, title="Fig 22: slowdown vs 64-entry ST "
                                   "(+ % overflowed requests)"))
    for row in rows:
        # shrinking the ST can only increase overflow and never helps much.
        assert row["ST_2_overflow_pct"] >= row["ST_64_overflow_pct"]
        assert row["ST_2"] >= row["ST_64"] * 0.95
        # the default 64-entry ST serves these apps without overflow
        # (paper Sec. 6.7.2: no overflows in any real application).
        assert row["ST_64_overflow_pct"] == 0.0


def test_fig23_overflow_schemes(once):
    rows = once(lambda: fig23(st_sizes=(8, 16, 32, 64)))
    print()
    print(format_table(
        rows,
        columns=["st_entries", "syncron", "syncron_central_ovrfl",
                 "syncron_distrib_ovrfl", "syncron_overflow_pct"],
        title="Fig 23: BST_FG throughput (ops/ms) by overflow scheme",
    ))
    overflowing = [r for r in rows if r["syncron_overflow_pct"] > 5]
    assert overflowing, "the sweep must include overflowing points"
    for row in overflowing:
        # the MiSAR-style central fallback degrades much more than
        # SynCron's integrated scheme (paper: 12.3% vs 3.2%).
        assert row["syncron"] > row["syncron_central_ovrfl"]
    # with a big-enough ST all schemes coincide.
    clean = rows[-1]
    assert clean["syncron_overflow_pct"] == 0.0
    assert clean["syncron"] == clean["syncron_central_ovrfl"]


def test_table7_st_occupancy(once):
    combos = ("bfs.wk", "pr.wk", "ts.air", "ts.pow") \
        if os.environ.get("REPRO_SCALE", "small") == "small" else tuple(APP_INPUTS)
    rows = once(lambda: table7(combos=combos))
    print()
    print(format_table(rows, title="Table 7: ST occupancy (max/avg %)"))
    by_app = {r["app"]: r for r in rows}
    # ts is the paper's occupancy outlier (44% avg vs ~2-6% for graphs).
    graph_avg = max(r["avg_pct"] for a, r in by_app.items() if not a.startswith("ts."))
    ts_avg = min(r["avg_pct"] for a, r in by_app.items() if a.startswith("ts."))
    assert ts_avg > graph_avg
    for row in rows:
        assert row["max_pct"] <= 100.0


def test_table4_qualitative_comparison(once):
    rows = once(table4_comparison)
    print()
    print(format_table(rows, title="Table 4: SynCron vs prior mechanisms"))
    syncron = rows[-1]
    assert syncron["primitives"] == "4" and syncron["isa_extensions"] == "2"


def test_table8_area_power(once):
    rows = once(table8_rows)
    print()
    print(format_table(rows, title="Table 8: SE vs ARM Cortex-A7"))
    report = se_area()
    # Paper: 0.0461 mm^2 and 2.7 mW — about 10% of a Cortex-A7's area and
    # 2.7% of its power.
    assert abs(report.total_mm2 - 0.0461) < 1e-3
    assert report.fraction_of_cortex_a7_power < 0.03
