"""Fig. 16/17 (inter-unit link-latency sensitivity) and Fig. 18 (memory
technologies)."""

import os

from repro.harness.experiments import fig16, fig17, fig18
from repro.harness.reporting import format_table


def test_fig16_high_contention_link_sensitivity(once):
    latencies = (40, 200, 1000, 4500) if os.environ.get("REPRO_SCALE", "small") == "small" \
        else (40, 100, 200, 500, 1000, 2000, 4500, 9000)
    rows = once(lambda: fig16(structures=("stack", "priority_queue"),
                              latencies_ns=latencies))
    print()
    print(format_table(rows, title="Fig 16: throughput (Mops/s) vs link latency"))
    by_structure = {}
    for row in rows:
        by_structure.setdefault(row["structure"], []).append(row)
    for structure, series in by_structure.items():
        fastest, slowest = series[0], series[-1]
        # Central is hit hardest by slow links (it is oblivious to
        # non-uniformity); hierarchical schemes track the workload (Ideal).
        central_drop = fastest["central"] / max(slowest["central"], 1e-12)
        syncron_drop = fastest["syncron"] / max(slowest["syncron"], 1e-12)
        assert central_drop > syncron_drop
        # SynCron stays the best non-ideal scheme at high latency.
        assert slowest["syncron"] >= slowest["hier"] * 0.95
        assert slowest["syncron"] > slowest["central"]


def test_fig17_low_contention_link_sensitivity(once):
    rows = once(lambda: fig17(latencies_ns=(40, 100, 200, 500)))
    print()
    print(format_table(rows, title="Fig 17: pr.wk slowdown vs Ideal (lower is better)"))
    # Paper at 500 ns: Central 2.67, Hier 1.37, SynCron 1.17.
    last = rows[-1]
    assert last["central"] > last["hier"] > last["syncron"] >= 1.0
    # Central's slowdown must grow with latency; SynCron's stays flat-ish.
    assert rows[-1]["central"] > rows[0]["central"]
    assert rows[-1]["syncron"] < rows[0]["syncron"] * 1.5


def test_fig18_memory_technologies(once):
    combos = ("cc.wk", "ts.pow")
    rows = once(lambda: fig18(combos=combos))
    print()
    print(format_table(rows, title="Fig 18: speedup over Central per memory tech"))
    for row in rows:
        # SynCron wins regardless of memory technology…
        assert row["syncron"] > 1.0
        assert row["syncron"] >= row["hier"] * 0.95
    # …and its edge over Hier grows with memory latency (HBM -> DDR4),
    # because direct ST buffering avoids the slower memory entirely.
    for combo in combos:
        series = {r["memory"]: r for r in rows if r["app"] == combo}
        edge_hbm = series["HBM"]["syncron"] / series["HBM"]["hier"]
        edge_ddr4 = series["DDR4"]["syncron"] / series["DDR4"]["hier"]
        assert edge_ddr4 >= edge_hbm * 0.95
