"""Fig. 19 (data placement), Fig. 20/21 (hierarchical vs flat ablation)."""

import os

from repro.harness.experiments import fig19, fig20, fig21a, fig21b
from repro.harness.reporting import format_table


def test_fig19_partitioning_effect(once):
    datasets = ("wk",) if os.environ.get("REPRO_SCALE", "small") == "small" \
        else ("wk", "sl", "sx", "co")
    rows = once(lambda: fig19(datasets=datasets))
    print()
    print(format_table(
        rows,
        columns=["dataset", "partitioning", "central", "hier", "syncron",
                 "ideal", "max_st_occupancy_pct"],
        title="Fig 19: pagerank speedup over Central(random), by partitioning",
    ))
    for dataset in datasets:
        pair = {r["partitioning"]: r for r in rows if r["dataset"] == dataset}
        # the METIS substitute really cuts fewer edges…
        assert pair["metis"]["edge_cut_metis"] < pair["metis"]["edge_cut_random"]
        # …SynCron still wins with better placement…
        assert pair["metis"]["syncron"] >= pair["metis"]["central"]
        assert pair["metis"]["syncron"] >= pair["metis"]["hier"] * 0.95
        # …and ST occupancy drops (locality keeps variables single-SE).
        assert (pair["metis"]["max_st_occupancy_pct"]
                <= pair["random"]["max_st_occupancy_pct"] + 1e-9)


def test_fig20_flat_vs_hier_low_contention(once):
    combos = ("bfs.wk", "cc.sl", "pr.wk", "tc.sx") \
        if os.environ.get("REPRO_SCALE", "small") == "small" else None
    rows = once(lambda: fig20(combos=combos))
    print()
    print(format_table(rows, title="Fig 20: SynCron speedup normalized to flat"))
    # Low contention + sync non-intensive: flat and hierarchical are close
    # (paper: SynCron within ~1.1% of flat on average).
    import math

    avg = math.exp(sum(math.log(r["syncron_vs_flat"]) for r in rows) / len(rows))
    assert 0.85 <= avg <= 1.2


def test_fig21a_flat_vs_hier_sync_intensive(once):
    rows = once(lambda: fig21a(latencies_ns=(40, 500)))
    print()
    print(format_table(rows, title="Fig 21a: ts, SynCron normalized to flat"))
    # Paper: SynCron is a few % behind flat at 40 ns and the gap narrows as
    # the links slow down.
    for app in ("ts.air", "ts.pow"):
        series = [r for r in rows if r["app"] == app]
        assert series[0]["syncron_vs_flat"] > 0.8
        assert series[-1]["syncron_vs_flat"] >= series[0]["syncron_vs_flat"] * 0.95


def test_fig21b_flat_vs_hier_high_contention(once):
    rows = once(lambda: fig21b(latencies_ns=(40, 500), core_counts=(30, 60)))
    print()
    print(format_table(rows, title="Fig 21b: queue, SynCron normalized to flat"))
    # High contention: hierarchy wins, and wins harder as non-uniformity
    # grows (paper: 1.23x..2.14x).
    for row in rows:
        assert row["syncron_vs_flat"] > 1.0
    for cores in (30, 60):
        series = [r for r in rows if r["cores"] == cores]
        assert series[-1]["syncron_vs_flat"] >= series[0]["syncron_vs_flat"]
