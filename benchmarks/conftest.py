"""Benchmark harness conventions.

Each ``bench_*.py`` / ``test_*`` target regenerates one of the paper's
tables or figures through :mod:`repro.harness.experiments`, prints the same
rows/series the paper reports, and asserts the qualitative *shape* (who
wins, direction of trends).  pytest-benchmark wraps the run so regression
tracking works, with a single round — these are simulations, not
microbenchmarks, and one deterministic run is exact.

``REPRO_SCALE`` (small | medium | full) controls input sizes.
"""

import pytest


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its value."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once(benchmark):
    def runner(fn):
        return run_once(benchmark, fn)

    return runner
