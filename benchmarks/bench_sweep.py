"""Sweep-orchestration benchmark: wall-clock at --jobs 1/2/4 + warm cache.

Run directly::

    PYTHONPATH=src python benchmarks/bench_sweep.py [--output BENCH_sweep.json]

Times a fixed Fig. 12 subset (4 app-input combos x 4 mechanisms = 16
independent simulations) through the spec-driven runner at 1, 2, and 4
worker processes, then once more against a warm result cache.  This
captures the *orchestration* speedup trajectory — how much of the
embarrassingly-parallel scenario matrix the harness actually exploits —
complementing ``bench_kernel.py``'s single-simulation events/sec.

Rows are asserted bit-identical across job counts (the runner's core
guarantee) before any number is reported.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.harness import runner as runner_mod  # noqa: E402
from repro.harness.experiments import fig12  # noqa: E402
from repro.harness.runner import execution_options  # noqa: E402

#: the fixed Fig. 12 subset (one graph kernel per contention flavour + ts).
COMBOS = ("bfs.wk", "cc.sl", "tc.wk", "ts.air")
MECHANISMS = ("central", "hier", "syncron", "ideal")
JOB_STEPS = (1, 2, 4)


def _timed_fig12(jobs: int, cache: bool, cache_dir: str) -> tuple:
    runner_mod.STATS.reset()
    start = time.perf_counter()
    with execution_options(jobs=jobs, cache=cache, cache_dir=cache_dir):
        rows = fig12(combos=COMBOS, mechanisms=MECHANISMS)
    elapsed = time.perf_counter() - start
    return rows, elapsed, runner_mod.STATS.executed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default=None,
                        help="write results as JSON to this path")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repetitions per job count (best is kept)")
    args = parser.parse_args(argv)

    results = {
        "benchmark": "sweep_orchestration",
        "subset": {"figure": "fig12", "combos": list(COMBOS),
                   "mechanisms": list(MECHANISMS),
                   "simulations": len(COMBOS) * len(MECHANISMS)},
        # --jobs speedup is bounded by the host's core count; record it so
        # the trajectory is interpretable across machines.
        "cpu_count": os.cpu_count(),
        "jobs": {},
    }

    baseline_rows = None
    serial_seconds = None
    with tempfile.TemporaryDirectory(prefix="bench-sweep-cache-") as cache_dir:
        for jobs in JOB_STEPS:
            best = None
            for _ in range(args.repeats):
                rows, elapsed, executed = _timed_fig12(jobs, cache=False,
                                                       cache_dir=cache_dir)
                assert executed == len(COMBOS) * len(MECHANISMS)
                if baseline_rows is None:
                    baseline_rows = rows
                elif rows != baseline_rows:
                    raise AssertionError(
                        f"--jobs {jobs} rows differ from serial rows"
                    )
                best = elapsed if best is None else min(best, elapsed)
            if serial_seconds is None:
                serial_seconds = best
            results["jobs"][str(jobs)] = {
                "seconds": round(best, 4),
                "speedup_vs_jobs1": round(serial_seconds / best, 3),
            }
            print(f"--jobs {jobs}: {best:.3f}s "
                  f"({serial_seconds / best:.2f}x vs serial)")

        # warm cache: zero simulations, pure orchestration overhead.
        _timed_fig12(1, cache=True, cache_dir=cache_dir)  # populate
        rows, elapsed, executed = _timed_fig12(1, cache=True,
                                               cache_dir=cache_dir)
        if executed != 0:
            raise AssertionError("warm-cache run executed simulations")
        if rows != baseline_rows:
            raise AssertionError("warm-cache rows differ from simulated rows")
        results["warm_cache"] = {
            "seconds": round(elapsed, 4),
            "speedup_vs_jobs1": round(serial_seconds / elapsed, 1),
            "simulations_executed": 0,
        }
        print(f"warm cache: {elapsed:.3f}s "
              f"({serial_seconds / elapsed:.0f}x vs serial), 0 simulated")

    if args.output:
        Path(args.output).write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
