"""Sweep-orchestration benchmark: pull-based workers, warm store, crashes.

Run directly::

    PYTHONPATH=src python benchmarks/bench_sweep.py [--output BENCH_sweep.json]

Times a fixed Fig. 12 subset (4 app-input combos x 4 mechanisms = 16
independent simulations) through the pull-based work-queue executor at
1, 2, and 4 workers — each against a fresh content-addressed store —
then once more against a warm store (zero simulations at any worker
count), and finally a crash-and-reclaim scenario where a quarter of the
matrix starts out leased to a dead worker and a lone survivor must
reclaim and finish it.

Rows are asserted bit-identical across worker counts (the executor's
core guarantee) before any number is reported.  Worker speedup is
bounded by the host's core count: the assertion that extra workers help
is gated on ``cpu_count > 1``, and single-core hosts are annotated
rather than failed — on one core the pull loop's coordination overhead
is the honest number.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.harness import runner as runner_mod  # noqa: E402
from repro.harness.experiments import _app_spec, fig12  # noqa: E402
from repro.harness.runner import execution_options, run_specs  # noqa: E402
from repro.harness.store import LeaseBoard  # noqa: E402

#: the fixed Fig. 12 subset (one graph kernel per contention flavour + ts).
COMBOS = ("bfs.wk", "cc.sl", "tc.wk", "ts.air")
MECHANISMS = ("central", "hier", "syncron", "ideal")
WORKER_STEPS = (1, 2, 4)
MATRIX = len(COMBOS) * len(MECHANISMS)


def _subset_specs():
    return [_app_spec(combo, mech)
            for combo in COMBOS for mech in MECHANISMS]


def _timed_fig12(workers: int, store: str) -> tuple:
    runner_mod.STATS.reset()
    start = time.perf_counter()
    with execution_options(workers=workers, cache=True, store=store):
        rows = fig12(combos=COMBOS, mechanisms=MECHANISMS)
    elapsed = time.perf_counter() - start
    return rows, elapsed, runner_mod.STATS.executed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default=None,
                        help="write results as JSON to this path")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repetitions per worker count (best kept)")
    args = parser.parse_args(argv)

    cpu_count = os.cpu_count() or 1
    results = {
        "benchmark": "sweep_orchestration",
        "subset": {"figure": "fig12", "combos": list(COMBOS),
                   "mechanisms": list(MECHANISMS), "simulations": MATRIX},
        # worker speedup is bounded by the host's core count; record it so
        # the trajectory is interpretable across machines.
        "cpu_count": cpu_count,
        "workers": {},
    }
    if cpu_count == 1:
        results["parallelism"] = "not measurable (cpu_count=1)"

    baseline_rows = None
    serial_seconds = None
    with tempfile.TemporaryDirectory(prefix="bench-sweep-store-") as top:
        top = Path(top)
        fresh = 0
        for workers in WORKER_STEPS:
            best = None
            for _ in range(args.repeats):
                # a fresh store per repetition: every simulation is cold.
                fresh += 1
                store = f"shared:{top / f'cold{fresh}'}"
                rows, elapsed, executed = _timed_fig12(workers, store)
                if executed != MATRIX:
                    raise AssertionError(
                        f"cold run executed {executed}/{MATRIX} simulations"
                    )
                if baseline_rows is None:
                    baseline_rows = rows
                elif rows != baseline_rows:
                    raise AssertionError(
                        f"--workers {workers} rows differ from serial rows"
                    )
                best = elapsed if best is None else min(best, elapsed)
            if serial_seconds is None:
                serial_seconds = best
            results["workers"][str(workers)] = {
                "seconds": round(best, 4),
                "speedup_vs_serial": round(serial_seconds / best, 3),
            }
            print(f"--workers {workers}: {best:.3f}s "
                  f"({serial_seconds / best:.2f}x vs serial)")
        if cpu_count > 1:
            top_speedup = max(row["speedup_vs_serial"]
                              for row in results["workers"].values())
            if top_speedup < 1.05:
                raise AssertionError(
                    f"no worker speedup on a {cpu_count}-core host "
                    f"(best {top_speedup:.2f}x)"
                )

        # warm store: zero simulations at any worker count.
        warm_store = f"shared:{top / 'warm'}"
        _timed_fig12(1, warm_store)  # populate
        for workers in (1, max(WORKER_STEPS)):
            rows, elapsed, executed = _timed_fig12(workers, warm_store)
            if executed != 0:
                raise AssertionError(
                    f"warm run at --workers {workers} executed {executed}"
                )
            if rows != baseline_rows:
                raise AssertionError("warm rows differ from simulated rows")
            results[f"warm_workers{workers}"] = {
                "seconds": round(elapsed, 4),
                "speedup_vs_serial": round(serial_seconds / elapsed, 1),
                "simulations_executed": 0,
            }
            print(f"warm --workers {workers}: {elapsed:.3f}s "
                  f"({serial_seconds / elapsed:.0f}x vs serial), 0 simulated")

        # crash-and-reclaim: a dead worker left expired leases on a quarter
        # of the matrix; one survivor reclaims them and drains everything.
        crash_root = top / "crash"
        specs = _subset_specs()
        board = LeaseBoard(crash_root, ttl=60.0)
        abandoned = [spec.cache_key() for spec in specs[::4]]
        for key in abandoned:
            board.claim(key, "crashed", ttl=0.0)  # already expired
        runner_mod.STATS.reset()
        start = time.perf_counter()
        rows = run_specs(specs, cache=True, store=f"shared:{crash_root}",
                         worker_id="survivor", lease_ttl=0.5)
        elapsed = time.perf_counter() - start
        if runner_mod.STATS.executed != MATRIX:
            raise AssertionError("crash scenario did not drain the matrix")
        if runner_mod.STATS.reclaimed != len(abandoned):
            raise AssertionError(
                f"expected {len(abandoned)} reclaimed leases, got "
                f"{runner_mod.STATS.reclaimed}"
            )
        if [r.as_dict() if hasattr(r, "as_dict") else r for r in rows] != [
                r.as_dict() if hasattr(r, "as_dict") else r
                for r in run_specs(specs, cache=True,
                                   store=f"shared:{crash_root}")]:
            raise AssertionError("post-crash rows differ from warm rows")
        results["crash_and_reclaim"] = {
            "seconds": round(elapsed, 4),
            "abandoned_leases": len(abandoned),
            "leases_reclaimed": runner_mod.STATS.reclaimed,
            "simulations_executed": runner_mod.STATS.executed,
        }
        print(f"crash-and-reclaim: {elapsed:.3f}s, "
              f"{runner_mod.STATS.reclaimed} leases reclaimed, "
              f"{runner_mod.STATS.executed} simulated")

    if args.output:
        Path(args.output).write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
