"""Fig. 10: speedup of each synchronization primitive vs the instruction
interval between synchronization points (Central / Hier / SynCron / Ideal,
60 cores, one variable)."""

import pytest

from repro.harness.experiments import FIG10_INTERVALS, fig10
from repro.harness.reporting import format_table

MECHS = ("central", "hier", "syncron", "ideal")


@pytest.mark.parametrize("primitive", ("lock", "barrier", "semaphore", "condvar"))
def test_fig10_primitive_speedups(once, primitive):
    intervals = FIG10_INTERVALS[primitive][:5]
    rows = once(lambda: fig10(primitive, intervals=intervals, mechanisms=MECHS))
    print()
    print(format_table(
        rows, columns=["interval"] + list(MECHS),
        title=f"Fig 10 ({primitive}): speedup over Central",
    ))
    tightest = rows[0]   # smallest interval = highest sync intensity
    loosest = rows[-1]
    # SynCron beats Central and Hier under high synchronization intensity…
    assert tightest["syncron"] > 1.0
    assert tightest["syncron"] >= tightest["hier"] * 0.98
    # …and the schemes converge as synchronization gets diluted.
    assert (loosest["syncron"] - 1.0) < (tightest["syncron"] - 1.0) + 0.5
    # Ideal bounds everything.
    assert tightest["ideal"] >= tightest["syncron"] * 0.99
