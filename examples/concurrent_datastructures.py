#!/usr/bin/env python3
"""Concurrent data structures on NDP: contention classes in action (Fig. 11).

Runs one representative of each of the paper's contention classes —
high-contention stack, medium-contention hash table, and the lock-coupling
linked list that pressures the Synchronization Table — and shows how the
mechanism gaps change with the contention class, plus an ST-overflow demo.

Run:  python examples/concurrent_datastructures.py
"""

from repro.sim.config import ndp_2_5d
from repro.workloads.base import run_workload
from repro.workloads.datastructures import (
    HashTableWorkload,
    LinkedListWorkload,
    StackWorkload,
)

MECHANISMS = ("central", "hier", "syncron", "ideal")

CLASSES = (
    ("stack (high contention: one coarse lock)", StackWorkload),
    ("hash table (medium contention: per-bucket locks)", HashTableWorkload),
    ("linked list (lock coupling: 2 locks held per core)", LinkedListWorkload),
)


def compare_mechanisms() -> None:
    config = ndp_2_5d()
    for title, cls in CLASSES:
        print(f"\n== {title} ==")
        print(f"{'mechanism':10s} {'Mops/s':>8s} {'vs central':>11s}")
        base = None
        for mechanism in MECHANISMS:
            metrics = run_workload(cls, config, mechanism)
            mops = metrics.ops_per_second / 1e6
            if mechanism == "central":
                base = mops
            print(f"{mechanism:10s} {mops:8.2f} {mops / base:10.2f}x")


def overflow_demo() -> None:
    """Shrink the ST until the linked list overflows it, and watch SynCron's
    integrated scheme degrade gracefully (the Fig. 22/23 behaviour)."""
    print("\n== ST overflow: linked list with shrinking tables ==")
    print(f"{'ST entries':>10s} {'cycles':>10s} {'overflowed requests':>20s}")
    for st_entries in (64, 8, 2):
        config = ndp_2_5d(st_entries=st_entries)
        metrics = run_workload(LinkedListWorkload, config, "syncron")
        print(f"{st_entries:10d} {metrics.cycles:10d} "
              f"{metrics.overflow_request_pct:19.1f}%")


def main() -> None:
    compare_mechanisms()
    overflow_demo()
    print("\nEvery run checked its structure's invariants "
          "(linearizable outcomes, no lost updates).")


if __name__ == "__main__":
    main()
