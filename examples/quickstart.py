#!/usr/bin/env python3
"""Quickstart: build an NDP system, synchronize cores, compare mechanisms.

Simulates 60 NDP cores (4 units x 15 clients) incrementing a shared counter
under one SynCron lock, then re-runs the identical program on every
synchronization mechanism and prints the cycle counts side by side — the
smallest possible version of the paper's evaluation loop.

Run:  python examples/quickstart.py
"""

from repro import NDPSystem, api, ndp_2_5d
from repro.sim import Compute, Load, Store, MECHANISM_NAMES


def build_programs(system, lock, counter_addr, shared, ops_per_core=10):
    """One program per client core: lock, bump the counter, unlock."""

    def worker():
        for _ in range(ops_per_core):
            yield api.lock_acquire(lock)
            # shared read-write data is uncacheable on this architecture.
            yield Load(counter_addr, cacheable=False)
            shared["counter"] += 1
            yield Store(counter_addr, cacheable=False)
            yield Compute(20)  # a little real work inside the section
            yield api.lock_release(lock)

    return {core.core_id: worker() for core in system.cores}


def run_once(mechanism: str) -> int:
    config = ndp_2_5d()  # the paper's system: 4 NDP units, HBM, 40 ns links
    system = NDPSystem(config, mechanism=mechanism)

    lock = system.create_syncvar(name="counter_lock")
    counter_addr = system.addrmap.alloc(unit=0, nbytes=8)
    shared = {"counter": 0}

    cycles = system.run_programs(build_programs(system, lock, counter_addr, shared))

    expected = 10 * len(system.cores)
    assert shared["counter"] == expected, "mutual exclusion was violated!"
    return cycles


def main() -> None:
    print(f"{'mechanism':26s} {'cycles':>10s}  {'vs central':>10s}")
    baseline = None
    # The Lamport-bakery baseline takes minutes at 60 contended cores
    # (O(N) loads per retry — that is its point); see
    # examples/spin_vs_message.py for the full Sec. 2.2.1 comparison.
    for mechanism in (m for m in MECHANISM_NAMES if m != "bakery"):
        cycles = run_once(mechanism)
        if mechanism == "central":
            baseline = cycles
        speed = f"{baseline / cycles:9.2f}x" if baseline else "       --"
        print(f"{mechanism:26s} {cycles:10d}  {speed}")
    print("\n600 lock-protected increments, 60 cores, zero lost updates.")


if __name__ == "__main__":
    main()
