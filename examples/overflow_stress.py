#!/usr/bin/env python3
"""ST-overflow behaviour under a fine-grained locking stress (Sec. 4.3).

A pipeline of worker cores does hand-over-hand (lock-coupling) traversal
over a chain of nodes, each protected by its own lock — the access pattern
that makes BST_FG/linked-list overflow the 64-entry Synchronization Table
in the paper's Fig. 23.  The script:

1. runs the stress at several ST sizes and prints how much of the request
   stream falls back to memory (indexing counters at work);
2. compares SynCron's integrated hardware overflow against the MiSAR-style
   abort-to-software alternatives;
3. shows the Sec. 4.6 conventional-system adaptation (shared-cache
   overflow) recovering most of the lost throughput on DDR4.

Run:  python examples/overflow_stress.py
"""

from repro import NDPSystem, api, ndp_2_5d
from repro.sim import Compute
from repro.sim.config import DDR4


CHAIN_LENGTH = 24
ROUNDS = 3


def lock_coupling_stress(config, mechanism: str):
    """Every core walks a lock-per-node chain holding two locks at a time."""
    system = NDPSystem(config, mechanism=mechanism)
    locks = [
        system.create_syncvar(name=f"node{i}") for i in range(CHAIN_LENGTH)
    ]
    state = {"traversals": 0}

    def worker(start: int):
        for round_idx in range(ROUNDS):
            position = (start + round_idx) % CHAIN_LENGTH
            yield api.lock_acquire(locks[position])
            for step in range(6):
                nxt = (position + 1) % CHAIN_LENGTH
                # Hand-over-hand: take the next node before dropping this
                # one — at least two live locks per core at all times.
                # Wrap-around would deadlock, so the walk stops at the end.
                if nxt <= position:
                    break
                yield api.lock_acquire(locks[nxt])
                yield Compute(10)
                yield api.lock_release(locks[position])
                position = nxt
            yield api.lock_release(locks[position])
            state["traversals"] += 1

    cycles = system.run_programs({
        core.core_id: worker((i * 5) % (CHAIN_LENGTH - 8))
        for i, core in enumerate(system.cores)
    })
    assert state["traversals"] == ROUNDS * len(system.cores)
    return cycles, system.stats


def main() -> None:
    print(f"lock-coupling chain of {CHAIN_LENGTH} node locks, "
          f"60 cores, {ROUNDS} traversals each\n")

    print("1) ST size vs overflow share (syncron):")
    print(f"{'ST entries':>10s} {'cycles':>10s} {'overflow %':>11s}")
    for st_entries in (64, 16, 8, 4):
        config = ndp_2_5d(st_entries=st_entries)
        cycles, stats = lock_coupling_stress(config, "syncron")
        print(f"{st_entries:>10} {cycles:>10,} "
              f"{stats.overflow_request_pct:>10.1f}%")

    print("\n2) Overflow schemes at an 8-entry ST "
          "(integrated vs MiSAR-style aborts):")
    config = ndp_2_5d(st_entries=8)
    for mechanism in ("syncron", "syncron_distrib_ovrfl",
                      "syncron_central_ovrfl"):
        cycles, stats = lock_coupling_stress(config, mechanism)
        print(f"  {mechanism:22s} {cycles:>10,} cycles "
              f"({stats.overflow_request_pct:.1f}% overflowed)")

    print("\n3) Sec. 4.6 adaptation on DDR4: overflow state in a shared "
          "cache instead of DRAM:")
    for target in ("memory", "shared_cache"):
        config = ndp_2_5d(st_entries=8, memory=DDR4, overflow_target=target)
        cycles, _stats = lock_coupling_stress(config, "syncron")
        print(f"  overflow_target={target:13s} {cycles:>10,} cycles")

    print("\nSynCron degrades gracefully: memory servicing costs one local "
          "DRAM read-modify-write per touched request, with no aborts and "
          "no programmer involvement.")


if __name__ == "__main__":
    main()
