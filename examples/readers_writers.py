#!/usr/bin/env python3
"""Readers-writers over a shared routing table with SynCron's rw lock.

A classic NDP scenario: 60 cores share a lookup structure that is read on
almost every operation and updated rarely (think: a key-value index, a
routing table, a feature dictionary).  A plain lock serializes everything;
the reader-writer lock extension (cf. LCU in the paper's Sec. 4.5) grants
readers concurrently, so throughput tracks the read share of the mix.

The script sweeps the read ratio and prints the rw lock's advantage over a
plain mutex per mechanism — including the remote-atomics spin baseline,
whose reader-preference scheme behaves differently from SynCron's fair
FIFO.

Run:  python examples/readers_writers.py
"""

from repro import NDPSystem, api, ndp_2_5d
from repro.harness.plotting import bar_chart
from repro.sim import Compute


ROUNDS = 12
SECTION = 80  # instructions spent holding the lock


def run_mix(mechanism: str, read_pct: int, use_rwlock: bool) -> dict:
    """Run a read/write mix; returns cycles + functional counters."""
    system = NDPSystem(ndp_2_5d(), mechanism=mechanism)
    guard = system.create_syncvar(name="table_guard")
    table = {"version": 0, "lookups": 0, "active_readers": 0, "races": 0}

    def worker(core_id: int):
        for round_idx in range(ROUNDS):
            is_read = ((core_id * 7 + round_idx * 13) % 100) < read_pct
            if use_rwlock and is_read:
                yield api.rw_read_acquire(guard)
                table["active_readers"] += 1
                version_seen = table["version"]
                yield Compute(SECTION)
                if table["version"] != version_seen:
                    table["races"] += 1  # a writer ran inside our read!
                table["active_readers"] -= 1
                table["lookups"] += 1
                yield api.rw_read_release(guard)
            elif use_rwlock:
                yield api.rw_write_acquire(guard)
                if table["active_readers"]:
                    table["races"] += 1
                table["version"] += 1
                yield Compute(SECTION)
                yield api.rw_write_release(guard)
            else:
                yield api.lock_acquire(guard)
                if is_read:
                    table["lookups"] += 1
                else:
                    table["version"] += 1
                yield Compute(SECTION)
                yield api.lock_release(guard)

    cycles = system.run_programs(
        {core.core_id: worker(core.core_id) for core in system.cores}
    )
    assert table["races"] == 0, "rw lock let a writer race a reader"
    return {"cycles": cycles, **table}


def main() -> None:
    print(f"{len(NDPSystem(ndp_2_5d(), mechanism='ideal').cores)} client cores, "
          f"{ROUNDS} operations each, {SECTION}-instruction sections\n")

    for read_pct in (50, 90, 99):
        print(f"=== {read_pct}% reads ===")
        advantage = {}
        for mechanism in ("syncron", "rmw_spin"):
            mutex = run_mix(mechanism, read_pct, use_rwlock=False)
            rw = run_mix(mechanism, read_pct, use_rwlock=True)
            advantage[mechanism] = mutex["cycles"] / rw["cycles"]
            print(f"  {mechanism:10s} mutex {mutex['cycles']:>9} cy   "
                  f"rwlock {rw['cycles']:>9} cy   "
                  f"speedup {advantage[mechanism]:.2f}x")
        print()
        print(bar_chart(advantage, title="  rw-lock speedup over mutex"))
        print()

    print("The rw lock pays off once the mix is read-dominated; at 50/50 the "
          "exclusive writers dominate and a plain (hierarchically-served) "
          "mutex is competitive.")


if __name__ == "__main__":
    main()
