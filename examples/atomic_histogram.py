#!/usr/bin/env python3
"""Atomic-rmw histogram: the Sec. 4.4.1 extension in action.

Sixty cores bin a synthetic data stream into a shared 16-bucket histogram.
Three ways to protect the buckets:

1. ``lock``      — one lock per bucket, update under mutual exclusion
                   (three sync messages + two uncacheable accesses per bin);
2. ``rmw``       — a single ``fetch_add`` executed at the bucket's Master
                   SE (one round trip, no lock traffic at all);
3. ``ideal``     — zero-cost updates (the lower bound).

The fetch_add path also returns the old value, which the program uses to
detect each bucket's first writer — the kind of idiom (claim / tag / count)
remote atomics exist for.

Run:  python examples/atomic_histogram.py
"""

from repro import NDPSystem, api, ndp_2_5d
from repro.sim import Compute
from repro.sim.program import Load, RmwOp, Store

BINS = 16
ITEMS_PER_CORE = 24


def synthetic_stream(core_id: int):
    """Deterministic per-core data stream (skewed toward low bins)."""
    for i in range(ITEMS_PER_CORE):
        value = (core_id * 31 + i * 17) % 97
        yield min(value // 7, BINS - 1)


def run_histogram(style: str):
    mechanism = "ideal" if style == "ideal" else "syncron"
    system = NDPSystem(ndp_2_5d(), mechanism=mechanism)
    base = system.addrmap.alloc(unit=0, nbytes=8 * BINS)
    locks = [system.create_syncvar(name=f"bin{i}") for i in range(BINS)]
    counts = [0] * BINS
    first_writers = {}

    def worker_lock(core_id: int):
        for bin_index in synthetic_stream(core_id):
            yield api.lock_acquire(locks[bin_index])
            yield Load(base + 8 * bin_index, cacheable=False)
            counts[bin_index] += 1
            yield Store(base + 8 * bin_index, cacheable=False)
            yield api.lock_release(locks[bin_index])
            yield Compute(10)

    def worker_rmw(core_id: int):
        for bin_index in synthetic_stream(core_id):
            old = yield RmwOp("fetch_add", base + 8 * bin_index, 1)
            counts[bin_index] += 1
            if old == 0:
                first_writers.setdefault(bin_index, core_id)
            yield Compute(10)

    worker = worker_lock if style == "lock" else worker_rmw
    cycles = system.run_programs(
        {core.core_id: worker(core.core_id) for core in system.cores}
    )

    expected = sum(
        1 for core in system.cores for _ in synthetic_stream(core.core_id)
    )
    assert sum(counts) == expected, "lost histogram updates"
    if style != "lock":
        for bin_index, count in enumerate(counts):
            stored = system.mechanism.rmw_value(base + 8 * bin_index)
            assert stored == count, f"bin {bin_index}: {stored} != {count}"
    return cycles, system.stats, counts


def main() -> None:
    results = {}
    for style in ("lock", "rmw", "ideal"):
        cycles, stats, counts = run_histogram(style)
        results[style] = (cycles, stats)
        print(f"{style:6s} {cycles:>9,} cycles   "
              f"sync msgs {stats.sync_messages_local + stats.sync_messages_global:>7,}   "
              f"inter-unit KB {stats.bytes_across_units / 1024:8.1f}")

    lock_cycles = results["lock"][0]
    rmw_cycles = results["rmw"][0]
    print(f"\nfetch_add at the Master SE is {lock_cycles / rmw_cycles:.2f}x "
          "faster than per-bucket locking — one message round trip instead "
          "of lock traffic plus uncacheable loads/stores.")
    print(f"histogram shape: {counts}")


if __name__ == "__main__":
    main()
