#!/usr/bin/env python3
"""Graph analytics on the simulated NDP system (the paper's Fig. 12 slice).

Runs PageRank and connected components on a synthetic power-law graph with
fine-grained per-vertex locks and inter-unit barriers, under all four main
mechanisms, and shows:

- speedup over the Central baseline,
- the effect of better graph partitioning (the Fig. 19 experiment),
- energy and data-movement deltas (Figs. 14/15).

Run:  python examples/graph_analytics.py
"""

from repro.sim.config import ndp_2_5d
from repro.workloads.base import run_workload
from repro.workloads.graphs import (
    ConnectedComponentsWorkload,
    PageRankWorkload,
    bfs_partition,
    edge_cut,
    load_dataset,
    random_partition,
)

MECHANISMS = ("central", "hier", "syncron", "ideal")


def run_kernel(title: str, factory) -> None:
    config = ndp_2_5d()
    print(f"\n== {title} ==")
    print(f"{'mechanism':10s} {'cycles':>10s} {'speedup':>8s} "
          f"{'energy(uJ)':>11s} {'cross-unit KB':>14s}")
    baseline = None
    for mechanism in MECHANISMS:
        metrics = run_workload(factory, config, mechanism)
        if mechanism == "central":
            baseline = metrics.cycles
        print(f"{mechanism:10s} {metrics.cycles:10d} "
              f"{baseline / metrics.cycles:7.2f}x "
              f"{metrics.energy.total_pj / 1e6:11.2f} "
              f"{metrics.bytes_across_units / 1024:14.1f}")


def partitioning_study() -> None:
    graph = load_dataset("wk")
    config = ndp_2_5d()
    print("\n== Fig. 19 slice: partitioning quality (pagerank on wk) ==")
    cut_rand = edge_cut(graph, random_partition(graph, config.num_units, seed=7))
    cut_bfs = edge_cut(graph, bfs_partition(graph, config.num_units))
    print(f"edge cut: random={cut_rand}, metis-substitute={cut_bfs} "
          f"({100 * (1 - cut_bfs / cut_rand):.0f}% fewer crossing edges)")
    for label, part in (("random", random_partition), ("metis", bfs_partition)):
        def factory(partitioner=part, label=label):
            if label == "random":
                return PageRankWorkload(dataset="wk",
                                        partitioner=lambda g, p: partitioner(g, p, seed=7))
            return PageRankWorkload(dataset="wk", partitioner=partitioner)

        metrics = run_workload(factory, config, "syncron")
        print(f"  {label:8s}: {metrics.cycles:8d} cycles, "
              f"max ST occupancy {metrics.st_occupancy_max_pct:.0f}%")


def main() -> None:
    run_kernel("PageRank (pr.wk)", lambda: PageRankWorkload(dataset="wk"))
    run_kernel("Connected components (cc.wk)",
               lambda: ConnectedComponentsWorkload(dataset="wk"))
    partitioning_study()
    print("\nAll kernel outputs were verified against sequential references.")


if __name__ == "__main__":
    main()
