#!/usr/bin/env python3
"""Why NDP systems need message-passing synchronization (paper Sec. 2.2.1).

Reproduces the paper's motivation as a runnable story.  The same contended
counter-increment program runs under four ways to synchronize:

1. ``bakery``   — Lamport's bakery algorithm: plain loads/stores only,
                  O(N) memory locations per retry;
2. ``rmw_spin`` — spin-wait over remote atomic units at the memory
                  controllers (the GPU/MPP/HMC approach);
3. ``central``  — message passing to one server core (Tesseract-style);
4. ``syncron``  — the paper's hierarchical Synchronization Engines.

It prints throughput, inter-unit traffic and DRAM pressure for each, then
sweeps the inter-unit link latency to show why spinning collapses first on
non-uniform NDP systems.

Run:  python examples/spin_vs_message.py
"""

from repro import NDPSystem, api, ndp_2_5d
from repro.harness.plotting import bar_chart
from repro.sim import Compute

MECHANISMS = ("bakery", "rmw_spin", "central", "syncron")
OPS_PER_CORE = 8


def contended_run(mechanism: str, link_latency_ns: float = 40.0):
    """All 60 cores fight for one lock homed in unit 0."""
    config = ndp_2_5d(link_latency_ns=link_latency_ns)
    system = NDPSystem(config, mechanism=mechanism)
    lock = system.create_syncvar(unit=0, name="hot")
    state = {"counter": 0}

    def worker():
        for _ in range(OPS_PER_CORE):
            yield api.lock_acquire(lock)
            state["counter"] += 1
            yield Compute(30)
            yield api.lock_release(lock)

    cycles = system.run_programs(
        {core.core_id: worker() for core in system.cores}
    )
    assert state["counter"] == OPS_PER_CORE * len(system.cores)
    return cycles, system.stats


def main() -> None:
    print("60 cores, one hot lock in unit 0, "
          f"{OPS_PER_CORE} acquires per core\n")

    print(f"{'mechanism':10s} {'cycles':>10s} {'inter-unit KB':>14s} "
          f"{'DRAM accesses':>14s}")
    print("-" * 52)
    cycles_by_mech = {}
    for mechanism in MECHANISMS:
        cycles, stats = contended_run(mechanism)
        cycles_by_mech[mechanism] = cycles
        print(f"{mechanism:10s} {cycles:>10,} "
              f"{stats.bytes_across_units / 1024:>14.1f} "
              f"{stats.dram_reads + stats.dram_writes:>14,}")

    print()
    slowest = max(cycles_by_mech.values())
    print(bar_chart(
        {m: slowest / c for m, c in cycles_by_mech.items()},
        title="relative speed (higher is better)",
    ))

    print("\nLink-latency sweep (cycles; spinning amplifies slow links):")
    print(f"{'link ns':>8s}" + "".join(f" {m:>12s}" for m in MECHANISMS))
    for latency in (40, 200, 1000):
        row = [f"{latency:>8}"]
        for mechanism in MECHANISMS:
            cycles, _stats = contended_run(mechanism, link_latency_ns=latency)
            row.append(f" {cycles:>12,}")
        print("".join(row))

    print("\nEvery spin retry is a round trip to the lock's home unit, so "
          "the spin baselines pay the link on every poll; SynCron pays it "
          "once per unit-to-unit lock handoff.")


if __name__ == "__main__":
    main()
