#!/usr/bin/env python3
"""Building on SynCron's API: a producer/consumer pipeline and SE-side rmw.

Shows the parts of the API the other examples don't touch:

1. semaphores + condition variables composing into a bounded buffer
   (producers and consumers on different NDP units);
2. the Sec. 4.4.1 rmw extension: SE-side fetch&add as a contention-free
   statistics counter;
3. the Sec. 4.4.2 lock-fairness knob.

Run:  python examples/custom_primitive.py
"""

from repro import NDPSystem, api, ndp_2_5d
from repro.core.rmw import RmwExtension
from repro.sim import Compute


def bounded_buffer_demo() -> None:
    print("== bounded buffer: semaphores + mutex ==")
    system = NDPSystem(ndp_2_5d(), mechanism="syncron")
    CAPACITY = 4
    slots = system.create_syncvar(name="empty_slots")   # counts free slots
    items = system.create_syncvar(name="full_slots")    # counts queued items
    mutex = system.create_syncvar(name="buffer_mutex")
    buffer = []
    stats = {"produced": 0, "consumed": 0, "max_depth": 0}
    ROUNDS = 6

    def producer():
        for i in range(ROUNDS):
            yield Compute(40)
            yield api.sem_wait(slots, CAPACITY)   # wait for a free slot
            yield api.lock_acquire(mutex)
            buffer.append(i)
            stats["produced"] += 1
            stats["max_depth"] = max(stats["max_depth"], len(buffer))
            yield api.lock_release(mutex)
            yield api.sem_post(items)             # publish the item

    def consumer():
        for _ in range(ROUNDS):
            yield api.sem_wait(items, 0)          # wait for an item
            yield api.lock_acquire(mutex)
            buffer.pop(0)
            stats["consumed"] += 1
            yield api.lock_release(mutex)
            yield api.sem_post(slots)             # free the slot
            yield Compute(60)

    programs = {}
    half = len(system.cores) // 2
    for i, core in enumerate(system.cores[: 2 * half]):
        programs[core.core_id] = producer() if i < half else consumer()
    cycles = system.run_programs(programs)

    assert stats["produced"] == stats["consumed"] == ROUNDS * half
    assert stats["max_depth"] <= CAPACITY, "buffer bound violated!"
    print(f"  {stats['produced']} items through a {CAPACITY}-slot buffer, "
          f"max depth {stats['max_depth']}, {cycles} cycles\n")


def rmw_counter_demo() -> None:
    print("== SE-side atomic rmw (Sec. 4.4.1 extension) ==")
    system = NDPSystem(ndp_2_5d(), mechanism="syncron")
    rmw = RmwExtension(system.mechanism)
    counter_addr = system.addrmap.alloc(0, 8)
    INCREMENTS = 5

    def chain(core, remaining):
        if remaining == 0:
            return
        rmw.rmw(core, counter_addr, "fetch_add", 1,
                lambda old: chain(core, remaining - 1))

    for core in system.cores:
        chain(core, INCREMENTS)
    system.sim.run()
    total = rmw.value(counter_addr)
    assert total == INCREMENTS * len(system.cores)
    print(f"  {total} atomic increments executed at the Master SE "
          f"({rmw.operations_executed} ALU ops, no locks, no retries)\n")


def fairness_demo() -> None:
    print("== lock fairness threshold (Sec. 4.4.2) ==")
    for threshold in (0, 2):
        system = NDPSystem(ndp_2_5d(fairness_threshold=threshold), "syncron")
        lock = system.create_syncvar(unit=0, name="fair_lock")
        grants = []

        def worker(core):
            for _ in range(4):
                yield api.lock_acquire(lock)
                grants.append(core.unit_id)
                yield Compute(5)
                yield api.lock_release(lock)

        system.run_programs({c.core_id: worker(c) for c in system.cores})
        longest = streak = 1
        for a, b in zip(grants, grants[1:]):
            streak = streak + 1 if a == b else 1
            longest = max(longest, streak)
        label = "disabled" if threshold == 0 else f"threshold={threshold}"
        print(f"  fairness {label:12s}: longest same-unit grant streak = {longest}")


def main() -> None:
    bounded_buffer_demo()
    rmw_counter_demo()
    fairness_demo()


if __name__ == "__main__":
    main()
