"""Driver for coherence-based programs (Table 1 / Fig. 2 experiments).

Coherent programs are generators (like NDP programs) yielding:

- :class:`CLoad` / :class:`CStore` — coherent load/store; the loaded value
  is sent back into the generator,
- :class:`CRmw` — an atomic rmw (tas / faa / swap); old value sent back,
- :class:`~repro.sim.program.Compute` — plain computation,
- :class:`Pause` — a spin-loop backoff (x86 ``pause``-style), so contended
  spinning does not generate one event per L1 hit.

:class:`CoherentSystem` assembles the MESI substrate over the standard
interconnect/config and runs one program per core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.coherence.mesi import DirectoryMESI, LOAD, RMW_KINDS, STORE
from repro.sim.config import SystemConfig
from repro.sim.engine import Process, Simulator
from repro.sim.memmap import AddressMap
from repro.sim.network import Interconnect
from repro.sim.program import Compute
from repro.sim.stats import SystemStats


@dataclass(frozen=True)
class CLoad:
    addr: int


@dataclass(frozen=True)
class CStore:
    addr: int
    value: int = 0


@dataclass(frozen=True)
class CRmw:
    addr: int
    kind: str  # rmw_tas / rmw_faa / rmw_swap
    operand: int = 1

    def __post_init__(self):
        if self.kind not in RMW_KINDS:
            raise ValueError(f"unknown rmw kind {self.kind!r}")


@dataclass(frozen=True)
class Pause:
    """Spin backoff: the core idles for ``cycles`` before re-checking."""

    cycles: int = 40


@dataclass(frozen=True)
class IdealAcquire:
    """Zero-cost lock acquire (Fig. 2's ``ideal-lock``): mutual exclusion is
    enforced but acquisition costs no cycles and no traffic."""

    lock_id: int


@dataclass(frozen=True)
class IdealRelease:
    lock_id: int


class _IdealLockTable:
    """Zero-latency logical locks shared by a CoherentSystem's cores."""

    def __init__(self):
        self.owner = {}
        self.queues = {}

    def acquire(self, lock_id: int, core) -> bool:
        """True if granted immediately; otherwise the core is queued."""
        if self.owner.get(lock_id) is None:
            self.owner[lock_id] = core.core_id
            return True
        self.queues.setdefault(lock_id, []).append(core)
        return False

    def release(self, lock_id: int, core):
        """Returns the next core to wake, if any."""
        if self.owner.get(lock_id) != core.core_id:
            raise RuntimeError(
                f"core {core.core_id} released ideal lock {lock_id} it does not own"
            )
        queue = self.queues.get(lock_id)
        if queue:
            nxt = queue.pop(0)
            self.owner[lock_id] = nxt.core_id
            return nxt
        self.owner[lock_id] = None
        return None


class CoherentCore:
    """One core executing a coherent program."""

    def __init__(self, sim: Simulator, core_id: int, unit_id: int,
                 mesi: DirectoryMESI, ideal_locks: "_IdealLockTable" = None):
        self.sim = sim
        self.core_id = core_id
        self.unit_id = unit_id
        self.mesi = mesi
        self.ideal_locks = ideal_locks
        self.process: Optional[Process] = None
        self.finished = False
        self.finish_time: Optional[int] = None
        self.operations = 0

    def run_program(self, program) -> None:
        self.process = Process(iter(program), on_finish=self._on_finish)
        self.sim.schedule(0, self._advance)

    def _on_finish(self) -> None:
        self.finished = True
        self.finish_time = self.sim.now

    def _advance(self, value=None) -> None:
        op = self.process.resume(value)
        if op is None:
            return
        self.operations += 1
        if isinstance(op, Compute):
            self.sim.schedule(op.instructions, self._advance)
        elif isinstance(op, Pause):
            self.sim.schedule(max(op.cycles, 1), self._advance)
        elif isinstance(op, CLoad):
            latency, value = self.mesi.access(self.core_id, op.addr, LOAD, self.sim.now)
            self.sim.schedule(max(latency, 1), self._advance, value)
        elif isinstance(op, CStore):
            latency, value = self.mesi.access(
                self.core_id, op.addr, STORE, self.sim.now, operand=op.value
            )
            self.sim.schedule(max(latency, 1), self._advance, value)
        elif isinstance(op, CRmw):
            latency, old = self.mesi.access(
                self.core_id, op.addr, op.kind, self.sim.now, operand=op.operand
            )
            self.sim.schedule(max(latency, 1), self._advance, old)
        elif isinstance(op, IdealAcquire):
            if self.ideal_locks.acquire(op.lock_id, self):
                self.sim.schedule(0, self._advance)
            # else: parked; the releasing core wakes us.
        elif isinstance(op, IdealRelease):
            nxt = self.ideal_locks.release(op.lock_id, self)
            if nxt is not None:
                self.sim.schedule(0, nxt._advance)
            self.sim.schedule(0, self._advance)
        else:
            raise TypeError(f"coherent program yielded unknown op {op!r}")


class CoherentSystem:
    """A cache-coherent multiprocessor built from the same parts as the NDP
    system: units are NUMA sockets, links are the socket interconnect."""

    def __init__(self, config: SystemConfig):
        config.validate()
        self.config = config
        self.sim = Simulator()
        self.stats = SystemStats()
        self.addrmap = AddressMap(
            config.num_units, config.unit_memory_bytes, config.cache_line_bytes
        )
        self.interconnect = Interconnect(config, self.stats)

        self.cores = []
        core_units: Dict[int, int] = {}
        for unit in range(config.num_units):
            for _ in range(config.client_cores_per_unit):
                core_id = len(self.cores)
                core_units[core_id] = unit
                self.cores.append(None)  # placeholder until mesi exists
        self.mesi = DirectoryMESI(
            config, self.stats, self.interconnect, self.addrmap, core_units
        )
        self.ideal_locks = _IdealLockTable()
        self.cores = [
            CoherentCore(self.sim, core_id, core_units[core_id], self.mesi,
                         self.ideal_locks)
            for core_id in core_units
        ]

    def alloc_line(self, unit: int = 0) -> int:
        return self.addrmap.alloc_line(unit)

    def run_programs(self, programs: Dict[int, Iterable],
                     max_events: Optional[int] = None) -> int:
        for core_id, program in programs.items():
            self.cores[core_id].run_program(program)
        self.sim.run(max_events=max_events)
        unfinished = [cid for cid in programs if not self.cores[cid].finished]
        if unfinished:
            raise RuntimeError(f"coherent cores never finished: {unfinished[:8]}")
        return max(self.cores[cid].finish_time for cid in programs)
