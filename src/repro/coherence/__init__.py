"""Directory-MESI coherence substrate and coherence-based locks.

Used by the paper's motivational experiments: Table 1 (TTAS and
hierarchical-ticket lock throughput on a NUMA CPU) and Fig. 2 (a stack
protected by a MESI-based lock on the simulated NDP system).
"""

from repro.coherence.driver import (
    CLoad,
    CoherentCore,
    CoherentSystem,
    CRmw,
    CStore,
    Pause,
)
from repro.coherence.locks import (
    HierarchicalTicketLock,
    tas_acquire,
    tas_release,
    ticket_acquire,
    ticket_release,
    ttas_acquire,
    ttas_release,
)
from repro.coherence.mesi import DirectoryMESI

__all__ = [
    "CLoad",
    "CRmw",
    "CStore",
    "CoherentCore",
    "CoherentSystem",
    "DirectoryMESI",
    "HierarchicalTicketLock",
    "Pause",
    "tas_acquire",
    "tas_release",
    "ticket_acquire",
    "ticket_release",
    "ttas_acquire",
    "ttas_release",
]
