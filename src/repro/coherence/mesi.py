"""Directory-based MESI coherence substrate (for Table 1 and Fig. 2).

The paper's motivational experiments run coherence-based locks on (i) a real
Xeon and (ii) a simulated NDP system with a MESI directory protocol
("mesi-lock").  This module provides that substrate: a home-node directory
per cache line, per-core MESI states, cache-to-cache transfers, invalidation
rounds, and atomic read-modify-writes that serialize at the directory.

It is a *latency oracle* in the same style as the rest of the simulator:
:meth:`DirectoryMESI.access` resolves one coherent access, updates protocol
state, reserves the line's directory slot (which is what turns a contended
lock line into a hotspot), counts traffic, and returns ``(latency, value)``.

Functional values are tracked per address so lock algorithms built on top
(TAS/TTAS/ticket) actually enforce mutual exclusion in simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from repro.sim.config import SystemConfig
from repro.sim.memmap import AddressMap
from repro.sim.network import Interconnect
from repro.sim.stats import SystemStats

#: coherent request/response sizes (a header and a data line).
CTRL_BYTES = 16

# access kinds
LOAD = "load"
STORE = "store"
RMW_TAS = "rmw_tas"          # test-and-set: returns old, sets 1
RMW_FAA = "rmw_faa"          # fetch-and-add: returns old, adds operand
RMW_SWAP = "rmw_swap"        # swap: returns old, writes operand

RMW_KINDS = frozenset({RMW_TAS, RMW_FAA, RMW_SWAP})


@dataclass
class _LineState:
    """Directory state for one cache line."""

    #: cores holding the line in Shared state.
    sharers: Set[int] = field(default_factory=set)
    #: core holding the line in Modified/Exclusive state, if any.
    owner: Optional[int] = None
    #: the directory serializes transactions on a line.
    busy_until: int = 0


class DirectoryMESI:
    """A full-map directory MESI protocol over the simulated interconnect."""

    def __init__(
        self,
        config: SystemConfig,
        stats: SystemStats,
        interconnect: Interconnect,
        addrmap: AddressMap,
        core_units: Dict[int, int],
    ):
        self.config = config
        self.stats = stats
        self.interconnect = interconnect
        self.addrmap = addrmap
        self.core_units = core_units  # core id -> unit (NUMA socket)
        self._lines: Dict[int, _LineState] = {}
        self._values: Dict[int, int] = {}
        #: directory access cost (tag/protocol lookup at the home node).
        self.directory_cycles = 6

    # ------------------------------------------------------------------
    def value(self, addr: int) -> int:
        return self._values.get(addr, 0)

    def set_value(self, addr: int, value: int) -> None:
        self._values[addr] = value

    def _line(self, addr: int) -> _LineState:
        line_id = self.addrmap.line_of(addr)
        state = self._lines.get(line_id)
        if state is None:
            state = _LineState()
            self._lines[line_id] = state
        return state

    # ------------------------------------------------------------------
    def access(self, core_id: int, addr: int, kind: str, now: int,
               operand: int = 1) -> Tuple[int, int]:
        """Resolve one coherent access; returns (latency, value).

        For loads, ``value`` is the loaded value; for stores, the stored
        value; for rmw kinds, the *old* value (fetch semantics).
        """
        line = self._line(addr)
        unit = self.core_units[core_id]

        if kind == LOAD and self._is_local_hit(line, core_id, write=False):
            return self.config.l1_hit_cycles, self._values.get(addr, 0)
        if kind == STORE and line.owner == core_id:
            self._values[addr] = operand
            return self.config.l1_hit_cycles, operand
        if kind in RMW_KINDS and line.owner == core_id:
            # Exclusive rmw still pays the atomic-execution cost.
            old = self._apply_rmw(addr, kind, operand)
            return self.config.l1_hit_cycles + 2, old

        return self._directory_transaction(line, core_id, unit, addr, kind,
                                           now, operand)

    def _is_local_hit(self, line: _LineState, core_id: int, write: bool) -> bool:
        if write:
            return line.owner == core_id
        return core_id in line.sharers or line.owner == core_id

    # ------------------------------------------------------------------
    def _directory_transaction(self, line, core_id, unit, addr, kind,
                               now, operand) -> Tuple[int, int]:
        """A miss: go to the home directory, serialize, fetch/invalidate."""
        home = self.addrmap.unit_of(addr)
        cache_line = self.config.cache_line_bytes

        # Request to the home directory.
        latency = self.interconnect.transfer_latency(unit, home, now, CTRL_BYTES)
        # Serialize at the directory: contended lines queue here (hotspot).
        start = max(now + latency, line.busy_until)
        latency = (start - now) + self.directory_cycles
        want_exclusive_next = kind != LOAD
        # The directory pipelines read-sharing requests (occupancy only);
        # ownership transfers hold the line longer (protocol serialization).
        line.busy_until = start + self.directory_cycles + (
            24 if want_exclusive_next else 0
        )

        want_exclusive = kind != LOAD
        t = now + latency

        if line.owner is not None and line.owner != core_id:
            # Fetch from the current owner's cache (forward + transfer).
            owner_unit = self.core_units[line.owner]
            latency += self.interconnect.transfer_latency(home, owner_unit, t, CTRL_BYTES)
            latency += self.interconnect.transfer_latency(
                owner_unit, unit, now + latency, cache_line
            )
            if want_exclusive:
                line.owner = None  # invalidated at the old owner
            else:
                line.sharers.add(line.owner)
                line.owner = None
        else:
            # Fetch from home memory (no DRAM model here: the directory sits
            # at the home node's cache/memory controller; a flat access cost
            # stands in for the fill).
            latency += self.interconnect.transfer_latency(home, unit, t, cache_line)

        if want_exclusive and line.sharers:
            # Invalidation round to every sharer, overlapped: pay the worst
            # sharer round trip, count traffic for each.
            worst = 0
            for sharer in list(line.sharers):
                if sharer == core_id:
                    continue
                s_unit = self.core_units[sharer]
                inv = self.interconnect.transfer_latency(home, s_unit, t, CTRL_BYTES)
                ack = self.interconnect.transfer_latency(s_unit, home, t + inv, CTRL_BYTES)
                worst = max(worst, inv + ack)
            line.sharers.clear()
            latency += worst

        # New state + value.
        if want_exclusive:
            line.owner = core_id
            line.sharers.discard(core_id)
        else:
            line.sharers.add(core_id)

        if kind == LOAD:
            value = self._values.get(addr, 0)
        elif kind == STORE:
            self._values[addr] = operand
            value = operand
        else:
            value = self._apply_rmw(addr, kind, operand)
        return latency, value

    def _apply_rmw(self, addr: int, kind: str, operand: int) -> int:
        old = self._values.get(addr, 0)
        if kind == RMW_TAS:
            self._values[addr] = 1
        elif kind == RMW_FAA:
            self._values[addr] = old + operand
        elif kind == RMW_SWAP:
            self._values[addr] = operand
        else:  # pragma: no cover - guarded by caller
            raise ValueError(f"unknown rmw kind {kind!r}")
        return old
