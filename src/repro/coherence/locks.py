"""Coherence-based lock algorithms (Table 1 / Fig. 2).

Generator-based implementations over the MESI substrate:

- :func:`tas_acquire` — the paper's ``mesi-lock``: test-and-set built on a
  MESI directory protocol [Herlihy & Shavit].
- :func:`ttas_acquire` — test-and-test-and-set [Rudolph & Segall], the TTAS
  lock measured in Table 1.
- :func:`ticket_acquire` — classic ticket lock (FIFO).
- :class:`HierarchicalTicketLock` — the HTL of Table 1 [Mellor-Crummey &
  Scott style, NUMA-aware]: a per-socket ticket lock nested under a global
  ticket lock, so the lock prefers same-socket handoff.

Each ``*_acquire`` is used with ``yield from`` inside a coherent program and
returns when the lock is held; the matching ``*_release`` undoes it.
"""

from __future__ import annotations

from repro.coherence.driver import CLoad, CRmw, CStore, Pause
from repro.coherence.mesi import RMW_FAA, RMW_TAS

#: spin backoff between re-checks of a contended lock word.
SPIN_PAUSE_CYCLES = 30


# ----------------------------------------------------------------------
# Test-and-set ("mesi-lock")
# ----------------------------------------------------------------------
def tas_acquire(lock_addr: int):
    """Spin on test-and-set: every attempt is an exclusive rmw (the line
    ping-pongs among contenders — the Fig. 2 pathology)."""
    while True:
        old = yield CRmw(lock_addr, RMW_TAS)
        if old == 0:
            return
        yield Pause(SPIN_PAUSE_CYCLES)


def tas_release(lock_addr: int):
    yield CStore(lock_addr, 0)


# ----------------------------------------------------------------------
# Test-and-test-and-set
# ----------------------------------------------------------------------
def ttas_acquire(lock_addr: int, max_backoff: int = 1024):
    """Spin locally on a shared copy; only rmw when the lock looks free.

    Exponential backoff after failed attempts, as the libslock TTAS does —
    without it, every release triggers a thundering herd of rmw attempts.
    """
    backoff = SPIN_PAUSE_CYCLES
    while True:
        value = yield CLoad(lock_addr)
        if value == 0:
            old = yield CRmw(lock_addr, RMW_TAS)
            if old == 0:
                return
            backoff = min(backoff * 2, max_backoff)
        yield Pause(backoff)


ttas_release = tas_release


# ----------------------------------------------------------------------
# Ticket lock
# ----------------------------------------------------------------------
def ticket_acquire(next_addr: int, serving_addr: int,
                   backoff_per_waiter: int = 40):
    """FIFO ticket lock: grab a ticket, spin until it is served.

    Proportional backoff [Mellor-Crummey & Scott]: a waiter ``k`` positions
    from the head sleeps ~``k`` handoff times between checks, so the
    now-serving line is not hammered by the whole queue on every release.
    """
    ticket = yield CRmw(next_addr, RMW_FAA, operand=1)
    while True:
        serving = yield CLoad(serving_addr)
        if serving == ticket:
            return
        ahead = max(ticket - serving, 1)
        yield Pause(min(ahead * backoff_per_waiter, 20000))


def ticket_release(serving_addr: int):
    serving = yield CLoad(serving_addr)
    yield CStore(serving_addr, serving + 1)


# ----------------------------------------------------------------------
# Hierarchical ticket lock (HTL)
# ----------------------------------------------------------------------
class HierarchicalTicketLock:
    """NUMA-aware two-level ticket lock (Table 1's HTL).

    Each socket has a local ticket lock; the holder of a socket's local lock
    competes for the global ticket lock.  Handoffs therefore tend to stay
    within a socket, reducing cross-socket line transfers.
    """

    def __init__(self, system, num_sockets: int):
        self.global_next = system.alloc_line(0)
        self.global_serving = system.alloc_line(0)
        self.local_next = [system.alloc_line(s) for s in range(num_sockets)]
        self.local_serving = [system.alloc_line(s) for s in range(num_sockets)]

    def acquire(self, socket: int):
        yield from ticket_acquire(self.local_next[socket], self.local_serving[socket])
        yield from ticket_acquire(self.global_next, self.global_serving)

    def release(self, socket: int):
        yield from ticket_release(self.global_serving)
        yield from ticket_release(self.local_serving[socket])
