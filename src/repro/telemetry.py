"""Run telemetry: spans, counters, gauges, an event log, and exporters.

Every layer of the stack (simulator kernel, sweep runner, result store,
CLI) reports progress and wall-clock cost through one process-local bus:

- **counters** — monotonically increasing totals (``store.hits``,
  ``lease.reclaims``).
- **gauges** — last-written values (``sweep.remaining``).
- **spans** — named wall-clock sections with count/total/min/max
  aggregation (``spec.execute``); each completion is also appended to the
  JSONL event log.
- **histograms** — exponential-bucket latency distributions
  (``store.publish_seconds``).

The bus is **disabled by default**: :func:`get_telemetry` returns a
:class:`NullTelemetry` whose methods are argument-swallowing no-ops, so
instrumented hot paths pay one attribute load and a cheap call when
telemetry is off and *never* allocate.  Nothing telemetry records feeds
back into simulation: simulated physics (cycles, energy, traffic) is
bit-identical with the bus enabled or disabled — only the reserved
``telemetry.*`` keys in ``RunMetrics.stats`` (wall-clock profile, see
:func:`repro.workloads.base.collect_metrics`) appear when it is on, and
those are stripped before results enter the content-addressed store.

Enable it for a scope with :func:`telemetry_session` (the CLI's
``--telemetry DIR``)::

    with telemetry_session("telemetry-out", worker="w1") as tel:
        ... run sweeps ...
    # telemetry-out/ now holds events-<worker>.jsonl + snapshot-<worker>.json

Exports:

- ``events-<worker>.jsonl`` — append-only event log (one JSON object per
  line: ``{"ts": ..., "event": ..., ...}``); forked worker processes
  reopen their own file keyed by pid, so lines are never interleaved.
- ``snapshot-<worker>.json`` — aggregate snapshot (counters / gauges /
  spans / histograms), written on session exit and on demand.
- :meth:`Telemetry.prometheus` — the same snapshot in Prometheus text
  exposition format, for scraping once the daemon front end lands.

Degraded-fabric instrumentation lives under the ``fabric.*`` namespace
(:mod:`repro.sim.network`): ``fabric.fault`` / ``fabric.repair`` events
(plus a ``fabric.fault`` span around fail+reconnectivity-check),
``fabric.resolve`` spans around each policy route resolution,
``fabric.reroute`` events carrying ``src``/``dst``/``pristine_hops``/
``detour_hops``, and the ``fabric.reroutes`` / ``fabric.faults``
counters.  Like everything else on the bus these only fire when a
session is active — fault injection itself is telemetry-independent.
"""

from __future__ import annotations

import contextlib
import json
import os
import re
import time
from collections import Counter
from typing import Dict, Iterator, List, Optional, Tuple

#: histogram bucket upper bounds (seconds, exponential; +inf is implicit).
HISTOGRAM_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0
)

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _sanitize(name: str) -> str:
    """A telemetry name as a Prometheus metric / filename fragment."""
    return _NAME_RE.sub("_", name)


class _NullSpan:
    """Context manager that measures nothing (the disabled-bus span)."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """The disabled bus: every operation is a no-op.

    Kept method-compatible with :class:`Telemetry` so instrumentation
    sites never branch on the enabled state themselves (unless they want
    to skip expensive argument construction, for which :attr:`enabled`
    exists).
    """

    enabled = False
    worker: Optional[str] = None

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def count(self, name: str, n: int = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def event(self, name: str, **fields) -> None:
        pass

    def snapshot(self) -> Dict:
        return {}

    def export(self) -> Optional[str]:
        return None

    def prometheus(self) -> str:
        return ""

    def close(self) -> None:
        pass


class _Span:
    """One live span: records its duration into the bus on exit."""

    __slots__ = ("_bus", "name", "attrs", "_t0")

    def __init__(self, bus: "Telemetry", name: str, attrs: Dict):
        self._bus = bus
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_Span":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, *exc) -> bool:
        seconds = time.perf_counter() - self._t0
        self._bus._finish_span(self.name, seconds, self.attrs,
                               error=exc_type is not None)
        return False


class Telemetry:
    """The enabled process-local telemetry bus.

    ``directory`` is optional: without one the bus still aggregates (tests,
    in-process inspection) but writes no event log and exports nothing.
    """

    enabled = True

    def __init__(self, directory: Optional[str] = None,
                 worker: Optional[str] = None):
        self.directory = str(directory) if directory else None
        self.worker = worker
        self.started_at = time.time()
        self.counters: Counter = Counter()
        self.gauges: Dict[str, float] = {}
        #: span name -> [count, total_s, min_s, max_s, errors]
        self.spans: Dict[str, List[float]] = {}
        #: histogram name -> [per-bucket counts..., +inf count, sum, count]
        self.hists: Dict[str, List[float]] = {}
        self._sink = None
        self._sink_pid: Optional[int] = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs) -> _Span:
        """``with tel.span("spec.execute", spec=...):`` — timed section."""
        return _Span(self, name, attrs)

    def _finish_span(self, name: str, seconds: float, attrs: Dict,
                     error: bool = False) -> None:
        cell = self.spans.get(name)
        if cell is None:
            self.spans[name] = [1, seconds, seconds, seconds, int(error)]
        else:
            cell[0] += 1
            cell[1] += seconds
            if seconds < cell[2]:
                cell[2] = seconds
            if seconds > cell[3]:
                cell[3] = seconds
            cell[4] += int(error)
        self.event("span", span=name, secs=round(seconds, 6),
                   **({"error": True} if error else {}), **attrs)

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] += n

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one sample into an exponential-bucket histogram."""
        hist = self.hists.get(name)
        if hist is None:
            hist = self.hists[name] = [0] * (len(HISTOGRAM_BUCKETS) + 1) + [0.0, 0]
        for i, bound in enumerate(HISTOGRAM_BUCKETS):
            if value <= bound:
                hist[i] += 1
                break
        else:
            hist[len(HISTOGRAM_BUCKETS)] += 1
        hist[-2] += value
        hist[-1] += 1

    def event(self, name: str, **fields) -> None:
        """Append one record to the JSONL event log (no-op without a dir)."""
        sink = self._ensure_sink()
        if sink is None:
            return
        record = {"ts": round(time.time(), 6), "event": name}
        if self.worker:
            record["worker"] = self.worker
        record.update(fields)
        try:
            sink.write(json.dumps(record, default=str) + "\n")
            sink.flush()
        except (OSError, ValueError):  # closed/full sink never kills a run
            pass

    def _ensure_sink(self):
        """The event-log file handle, reopened per process after a fork."""
        if self.directory is None:
            return None
        pid = os.getpid()
        if self._sink is None or self._sink_pid != pid:
            if self._sink is not None:
                with contextlib.suppress(OSError):
                    self._sink.close()
            os.makedirs(self.directory, exist_ok=True)
            self._sink = open(
                os.path.join(self.directory, f"events-{self._identity()}.jsonl"),
                "a", encoding="utf-8",
            )
            self._sink_pid = pid
        return self._sink

    def _identity(self) -> str:
        base = _sanitize(self.worker) if self.worker else "main"
        return f"{base}-{os.getpid()}"

    # ------------------------------------------------------------------
    # Exporting
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict:
        """Aggregate JSON-dumpable view of everything recorded so far."""
        spans = {
            name: {"count": int(cell[0]), "total_s": cell[1],
                   "min_s": cell[2], "max_s": cell[3], "errors": int(cell[4])}
            for name, cell in sorted(self.spans.items())
        }
        hists = {}
        for name, hist in sorted(self.hists.items()):
            hists[name] = {
                "buckets": {
                    str(bound): int(hist[i])
                    for i, bound in enumerate(HISTOGRAM_BUCKETS)
                },
                "inf": int(hist[len(HISTOGRAM_BUCKETS)]),
                "sum": hist[-2],
                "count": int(hist[-1]),
            }
        return {
            "worker": self.worker,
            "pid": os.getpid(),
            "started_at": self.started_at,
            "written_at": time.time(),
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "spans": spans,
            "histograms": hists,
        }

    def export(self) -> Optional[str]:
        """Write ``snapshot-<worker>.json`` into the directory; its path."""
        if self.directory is None:
            return None
        os.makedirs(self.directory, exist_ok=True)
        path = os.path.join(self.directory,
                            f"snapshot-{self._identity()}.json")
        tmp = f"{path}.tmp{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(self.snapshot(), fh, indent=2, sort_keys=True)
        os.replace(tmp, path)
        return path

    def prometheus(self) -> str:
        """The snapshot in Prometheus text exposition format."""
        label = f'{{worker="{self.worker}"}}' if self.worker else ""
        lines = []
        for name, value in sorted(self.counters.items()):
            metric = f"repro_{_sanitize(name)}_total"
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric}{label} {value}")
        for name, value in sorted(self.gauges.items()):
            metric = f"repro_{_sanitize(name)}"
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric}{label} {value}")
        for name, cell in sorted(self.spans.items()):
            metric = f"repro_{_sanitize(name)}_seconds"
            lines.append(f"# TYPE {metric} summary")
            lines.append(f"{metric}_count{label} {int(cell[0])}")
            lines.append(f"{metric}_sum{label} {cell[1]}")
        for name, hist in sorted(self.hists.items()):
            metric = f"repro_{_sanitize(name)}"
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            for i, bound in enumerate(HISTOGRAM_BUCKETS):
                cumulative += hist[i]
                le = f'le="{bound}"'
                tags = (f'{{worker="{self.worker}",{le}}}'
                        if self.worker else f"{{{le}}}")
                lines.append(f"{metric}_bucket{tags} {cumulative}")
            cumulative += hist[len(HISTOGRAM_BUCKETS)]
            inf_tags = (f'{{worker="{self.worker}",le="+Inf"}}'
                        if self.worker else '{le="+Inf"}')
            lines.append(f"{metric}_bucket{inf_tags} {cumulative}")
            lines.append(f"{metric}_sum{label} {hist[-2]}")
            lines.append(f"{metric}_count{label} {int(hist[-1])}")
        return "\n".join(lines) + ("\n" if lines else "")

    def close(self) -> None:
        if self._sink is not None:
            with contextlib.suppress(OSError):
                self._sink.close()
            self._sink = None


# ----------------------------------------------------------------------
# The active bus (process-local, like the runner's ExecutionOptions)
# ----------------------------------------------------------------------
NULL = NullTelemetry()
_ACTIVE: "NullTelemetry | Telemetry" = NULL


def get_telemetry():
    """The active bus; a no-op :data:`NULL` unless a session configured one."""
    return _ACTIVE


def configure(directory: Optional[str] = None,
              worker: Optional[str] = None) -> Telemetry:
    """Install an enabled bus as the process's active telemetry."""
    global _ACTIVE
    bus = Telemetry(directory, worker=worker)
    _ACTIVE = bus
    return bus


def disable() -> None:
    """Return to the disabled no-op bus (closing the current one)."""
    global _ACTIVE
    if isinstance(_ACTIVE, Telemetry):
        _ACTIVE.close()
    _ACTIVE = NULL


@contextlib.contextmanager
def telemetry_session(directory: Optional[str] = None,
                      worker: Optional[str] = None) -> Iterator[Telemetry]:
    """Enable telemetry for a scope; exports the snapshot on exit."""
    previous = _ACTIVE
    bus = configure(directory, worker=worker)
    try:
        bus.event("session.start")
        yield bus
    finally:
        bus.event("session.end")
        bus.export()
        bus.close()
        globals()["_ACTIVE"] = previous


def merge_snapshots(snapshots: List[Dict]) -> Dict:
    """Fold per-worker snapshot dicts into one aggregate (``repro report``).

    Counters and histogram counts/sums add; span cells merge their
    count/total/min/max/errors; gauges keep the value from the most
    recently written snapshot.
    """
    counters: Counter = Counter()
    gauges: Dict[str, float] = {}
    gauges_at: Dict[str, float] = {}
    spans: Dict[str, Dict] = {}
    hists: Dict[str, Dict] = {}
    workers: List[str] = []
    for snap in snapshots:
        written = float(snap.get("written_at", 0.0))
        worker = snap.get("worker") or f"pid{snap.get('pid', '?')}"
        if worker not in workers:
            workers.append(worker)
        for name, value in snap.get("counters", {}).items():
            counters[name] += value
        for name, value in snap.get("gauges", {}).items():
            if written >= gauges_at.get(name, -1.0):
                gauges[name] = value
                gauges_at[name] = written
        for name, cell in snap.get("spans", {}).items():
            merged = spans.get(name)
            if merged is None:
                spans[name] = dict(cell)
            else:
                merged["count"] += cell["count"]
                merged["total_s"] += cell["total_s"]
                merged["min_s"] = min(merged["min_s"], cell["min_s"])
                merged["max_s"] = max(merged["max_s"], cell["max_s"])
                merged["errors"] += cell["errors"]
        for name, cell in snap.get("histograms", {}).items():
            merged = hists.get(name)
            if merged is None:
                hists[name] = {"buckets": dict(cell.get("buckets", {})),
                               "inf": cell.get("inf", 0),
                               "sum": cell.get("sum", 0.0),
                               "count": cell.get("count", 0)}
            else:
                for bound, n in cell.get("buckets", {}).items():
                    merged["buckets"][bound] = merged["buckets"].get(bound, 0) + n
                merged["inf"] += cell.get("inf", 0)
                merged["sum"] += cell.get("sum", 0.0)
                merged["count"] += cell.get("count", 0)
    return {
        "workers": workers,
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "spans": dict(sorted(spans.items())),
        "histograms": dict(sorted(hists.items())),
    }


# ----------------------------------------------------------------------
# Reserved RunMetrics keys
# ----------------------------------------------------------------------
#: ``RunMetrics.stats`` prefixes that describe simulation *effort*, not
#: simulated physics: excluded from determinism diffs, and ``telemetry.*``
#: (host wall-clock, non-deterministic by nature) additionally never
#: enters the content-addressed result store.
EFFORT_PREFIXES = ("kernel.", "telemetry.")
VOLATILE_PREFIX = "telemetry."


def strip_volatile_stats(stats: Dict[str, float]) -> Dict[str, float]:
    """Drop the non-deterministic ``telemetry.*`` keys (store publishing)."""
    if any(k.startswith(VOLATILE_PREFIX) for k in stats):
        return {k: v for k, v in stats.items()
                if not k.startswith(VOLATILE_PREFIX)}
    return stats
