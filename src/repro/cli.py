"""Command-line interface: list and run the paper's experiments.

::

    python -m repro list                     # what can be reproduced
    python -m repro run fig11 --arg structure=stack
    python -m repro run table1
    python -m repro run fig22 --arg combos=ts.air
    python -m repro run fig10 --arg primitive=lock --plot
    python -m repro run fig12 --jobs 4       # parallel sweep + result cache
    python -m repro run ext_rwlock --plot    # extension experiments
    python -m repro sweep --mechanisms syncron,hier --apps bfs.wk,cc.sl \
        --vary link_latency=1,4,16           # ad-hoc scenario matrices
    python -m repro run topo_sensitivity     # routed-fabric sensitivity
    python -m repro sweep --structures stack --mechanisms syncron \
        --vary topology=all_to_all,ring,mesh2d,torus2d --dry-run
    python -m repro corun --tenants lock,bfs.wk \
        --topologies all_to_all,ring       # co-run interference matrix
    python -m repro corun --tenants lock --check-isolation
    python -m repro quickstart               # the README example

Each ``run`` target calls the corresponding function in
:mod:`repro.harness.experiments` / :mod:`repro.harness.motivation` /
:mod:`repro.harness.ablations` and prints its rows as a text table;
``--plot`` adds a terminal chart in the figure's shape.  ``--workers N``
(alias ``--jobs``) drains the figure's simulations through N pull-based
worker processes; results land in a content-addressed store under
``$REPRO_CACHE_DIR`` (default ``.repro-cache/``) so re-runs only simulate
misses (``--no-cache`` disables that, ``--store shared:PATH --worker-id X``
lets independent invocations on one shared volume cooperate with
exactly-once execution).  ``sweep`` composes scenario matrices no figure
hard-codes: any workload set x mechanisms x swept SystemConfig fields;
``cache`` inspects and maintains the store (stats/verify/gc/migrate).
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from typing import Dict, List, Optional, Tuple

from repro.harness import ablations, experiments, motivation
from repro.harness.plotting import bar_chart, line_chart
from repro.harness.reporting import format_table
from repro.harness.runner import STATS, execution_options, probe_specs, run_sweep
from repro.harness.specs import SweepSpec, expand_matrix, validate_names

#: experiment name -> (callable, description).
EXPERIMENTS: Dict[str, tuple] = {
    "table1": (motivation.table1, "coherence-lock throughput on a NUMA CPU"),
    "fig2": (motivation.fig2, "mesi-lock stack slowdown vs ideal-lock"),
    "fig10": (experiments.fig10, "primitive speedups vs interval (needs primitive=...)"),
    "fig11": (experiments.fig11, "data-structure throughput (needs structure=...)"),
    "fig12": (experiments.fig12, "real-application speedups over Central"),
    "fig13": (experiments.fig13, "SynCron scalability across NDP units"),
    "fig14": (experiments.fig14, "energy breakdown"),
    "fig15": (experiments.fig15, "data movement"),
    "fig16": (experiments.fig16, "high-contention link-latency sensitivity"),
    "fig17": (experiments.fig17, "low-contention link-latency sensitivity"),
    "fig18": (experiments.fig18, "memory-technology sweep"),
    "fig19": (experiments.fig19, "graph-partitioning effect"),
    "fig20": (experiments.fig20, "SynCron vs flat (graphs)"),
    "fig21a": (experiments.fig21a, "SynCron vs flat (time series)"),
    "fig21b": (experiments.fig21b, "SynCron vs flat (queue)"),
    "fig22": (experiments.fig22, "ST size sensitivity"),
    "fig23": (experiments.fig23, "overflow-management schemes"),
    "table7": (experiments.table7, "ST occupancy per application"),
    # Extension experiments (beyond the paper's own figures).
    "ext_spin": (ablations.spin_baselines,
                 "spin-wait baselines (bakery / remote atomics) vs messaging"),
    "ext_overflow": (ablations.overflow_target_sweep,
                     "Sec. 4.6 shared-cache vs memory overflow target"),
    "ext_rwlock": (ablations.rwlock_read_ratio,
                   "reader-writer lock vs plain mutex across read ratios"),
    "ext_fairness": (ablations.fairness_sweep,
                     "Sec. 4.4.2 fairness threshold trade-off"),
    "ext_se_knee": (ablations.se_vs_server_latency,
                    "SE service-time knee vs the Hier software server"),
    "ext_smt": (ablations.smt_sweep,
                "hardware thread contexts per core (Sec. 4 SMT note)"),
    "ext_unionfind": (ablations.unionfind_connectivity,
                      "rw-lock union-find connectivity vs mutex"),
    "topo_sensitivity": (experiments.topo_sensitivity,
                         "interconnect fabric slowdown (mechanism x "
                         "topology x unit count)"),
    "interference": (experiments.interference,
                     "co-run tenant slowdown vs alone (tenant pairs x "
                     "mechanisms x fabrics)"),
    "degradation": (experiments.degradation,
                    "graceful degradation under link faults (mechanism x "
                    "fabric x fault severity)"),
}

#: experiment name -> how to draw it (chart kind, x/group key, series).
_MECHS: Tuple[str, ...] = ("central", "hier", "syncron", "ideal")
_PLOTS: Dict[str, tuple] = {
    "fig10": ("line", "interval", _MECHS, True),
    "fig11": ("line", "cores", _MECHS, False),
    "fig12": ("bars", "app", ("hier", "syncron", "ideal"), False),
    "fig16": ("line", "latency_ns", _MECHS, True),
    "fig17": ("line", "latency_ns", ("central", "hier", "syncron"), True),
    "fig22": ("bars", "app", ("ST_64", "ST_32", "ST_8"), False),
    "ext_spin": ("line", "cores",
                 ("bakery", "rmw_spin", "syncron", "ideal"), False),
    "ext_rwlock": ("line", "read_pct",
                   ("mutex", "syncron", "rmw_spin", "ideal"), False),
    "ext_fairness": ("line", "threshold",
                     ("makespan", "unit_finish_spread"), False),
    "ext_se_knee": ("line", "se_service_cycles",
                    ("syncron_ops_ms", "hier_ops_ms"), False),
    "ext_smt": ("line", "threads_per_core", ("syncron", "ideal"), False),
    "topo_sensitivity": ("bars", "label", _MECHS, False),
    "degradation": ("bars", "label", ("central", "hier", "syncron"), False),
}


def render_plot(name: str, rows) -> Optional[str]:
    """Terminal chart for an experiment's rows, or None when unmapped."""
    spec = _PLOTS.get(name)
    if spec is None or not isinstance(rows, list):
        return None
    kind, key, series, log_x = spec
    series = [s for s in series if rows and s in rows[0]]
    if not series:
        return None
    if kind == "line":
        return line_chart(rows, key, series, title=name, log_x=log_x)
    charts = []
    for row in rows:
        charts.append(bar_chart(
            {s: float(row[s]) for s in series},
            title=str(row.get(key, "")),
        ))
    return "\n\n".join(charts)

_POSITIONAL = {"fig10": "primitive", "fig11": "structure"}

#: experiment kwargs that take sequences; scalar --arg values are wrapped.
_SEQUENCE_PARAMS = frozenset({
    "combos", "core_steps", "st_sizes", "latencies_ns", "intervals",
    "datasets", "structures", "unit_steps", "core_counts", "mechanisms",
    "topologies", "groups", "descs", "unit_split", "core_split",
    "severities",
})


def _parse_value(text: str):
    """Best-effort literal parsing for --arg values."""
    if "," in text:
        return tuple(_parse_value(part) for part in text.split(",") if part)
    for caster in (int, float):
        try:
            return caster(text)
        except ValueError:
            continue
    return text


def _print_result(name: str, result) -> None:
    if isinstance(result, dict):  # fig2-style {part: rows}
        for part, rows in result.items():
            print(format_table(rows, title=f"{name} [{part}]"))
            print()
    else:
        print(format_table(result, title=name))


def _runner_options(args) -> Dict:
    """The execution_options kwargs every runner-flagged subcommand shares."""
    return {
        "workers": args.workers,
        "cache": not args.no_cache,
        "cache_dir": args.cache_dir,
        "store": args.store,
        "worker_id": args.worker_id,
        "lease_ttl": args.lease_ttl,
        "sampling": getattr(args, "sampling", None),
        "telemetry": getattr(args, "telemetry", None),
        "sanitize": getattr(args, "sanitize", False),
    }


@contextlib.contextmanager
def _telemetry_scope(args):
    """Enable the telemetry bus for a command when --telemetry DIR is set."""
    directory = getattr(args, "telemetry", None)
    if not directory:
        yield
        return
    from repro.telemetry import telemetry_session

    with telemetry_session(directory, worker=getattr(args, "worker_id", None)):
        yield
    print(f"[telemetry] event log + snapshot written to {directory}/ "
          f"(render with `python -m repro report {directory}`)",
          file=sys.stderr)


@contextlib.contextmanager
def _sanitizer_scope(args):
    """Activate the determinism sanitizer for a command when --sanitize.

    Yields the active session (or None): the caller prints the hazard
    report and turns hazards into a non-zero exit after the scope closes.
    """
    if not getattr(args, "sanitize", False):
        yield None
        return
    from repro.analysis.sanitizer import sanitize_session

    with sanitize_session() as session:
        yield session


def cmd_list(_args) -> int:
    print(f"{'experiment':10s} description")
    print("-" * 60)
    for name, (_fn, description) in EXPERIMENTS.items():
        print(f"{name:10s} {description}")
    return 0


def cmd_run(args) -> int:
    name = args.experiment
    if name not in EXPERIMENTS:
        print(f"unknown experiment {name!r}; try `python -m repro list`",
              file=sys.stderr)
        return 2
    fn, _description = EXPERIMENTS[name]
    kwargs = {}
    for item in args.arg or []:
        if "=" not in item:
            print(f"--arg expects key=value, got {item!r}", file=sys.stderr)
            return 2
        key, value = item.split("=", 1)
        parsed = _parse_value(value)
        if key in _SEQUENCE_PARAMS and not isinstance(parsed, tuple):
            parsed = (parsed,)
        kwargs[key] = parsed
    if name in _POSITIONAL and _POSITIONAL[name] not in kwargs:
        print(f"{name} needs --arg {_POSITIONAL[name]}=...", file=sys.stderr)
        return 2
    # --faults / --link-profile are convenience spellings of the same-named
    # experiment kwargs; only experiments that declare them accept them.
    import inspect

    accepted = inspect.signature(fn).parameters
    for flag in ("faults", "link_profile"):
        value = getattr(args, flag, None)
        if value is None:
            continue
        if flag not in accepted:
            print(f"{name} does not take --{flag.replace('_', '-')}",
                  file=sys.stderr)
            return 2
        kwargs[flag] = value
    STATS.reset()
    with _telemetry_scope(args), _sanitizer_scope(args) as sanitizer, \
            execution_options(**_runner_options(args)):
        result = fn(**kwargs)
    _print_result(name, result)
    print(f"[runner] {STATS.summary()}", file=sys.stderr)
    if getattr(args, "plot", False):
        chart = render_plot(name, result)
        if chart is None:
            print(f"(no plot mapping for {name})", file=sys.stderr)
        else:
            print()
            print(chart)
    if sanitizer is not None:
        print(f"[sanitize] {sanitizer.report()}", file=sys.stderr)
        if sanitizer.hazards:
            return 1
    return 0


# ----------------------------------------------------------------------
# sweep: ad-hoc scenario matrices (beyond any hard-coded figure)
# ----------------------------------------------------------------------
_SWEEP_LABEL_KEYS = {"app": "combo", "structure": "structure",
                     "primitive": "primitive"}


def _csv(text: Optional[str]) -> Tuple[str, ...]:
    if not text:
        return ()
    return tuple(part for part in (p.strip() for p in text.split(",")) if part)


def cmd_sweep(args) -> int:
    apps = _csv(args.apps)
    structures = _csv(args.structures)
    primitives = _csv(args.primitives)
    workloads: List[Tuple[str, Dict]] = []
    workloads.extend(("app", {"combo": combo}) for combo in apps)
    workloads.extend(("structure", {"structure": s}) for s in structures)
    workloads.extend(
        ("primitive", {"primitive": p, "interval": args.interval,
                       "rounds": args.rounds})
        for p in primitives
    )
    if not workloads:
        print("sweep needs at least one workload: --apps, --structures, "
              "or --primitives", file=sys.stderr)
        return 2
    mechanisms = _csv(args.mechanisms) or _MECHS
    # fail fast on typos — workers must never see bad names mid-sweep.
    error = validate_names(apps=apps, structures=structures,
                           primitives=primitives, mechanisms=mechanisms)
    if error:
        print(f"sweep: {error}", file=sys.stderr)
        return 2
    vary: Dict[str, tuple] = {}
    for item in args.vary or []:
        if "=" not in item:
            print(f"--vary expects field=v1,v2,..., got {item!r}", file=sys.stderr)
            return 2
        key, values = item.split("=", 1)
        parsed = _parse_value(values)
        vary[key] = parsed if isinstance(parsed, tuple) else (parsed,)

    base_overrides: Dict[str, object] = {}
    try:
        if args.faults:
            from repro.sim.topo.faults import parse_fault_spec
            base_overrides.update(parse_fault_spec(args.faults))
        if args.link_profile:
            from repro.sim.topo.faults import parse_link_profile
            base_overrides["link_profile"] = parse_link_profile(
                args.link_profile)
        labeled = expand_matrix(workloads, mechanisms, vary=vary,
                                preset=args.preset, seed=args.seed,
                                base_overrides=base_overrides)
    except ValueError as exc:
        print(f"sweep: {exc}", file=sys.stderr)
        return 2

    if args.dry_run:
        with execution_options(cache=not args.no_cache,
                               cache_dir=args.cache_dir, store=args.store):
            statuses = probe_specs([spec for _label, spec in labeled])
        rows = [
            {"run": spec.describe(), "status": status}
            for (_label, spec), status in zip(labeled, statuses)
        ]
        print(format_table(rows, title="sweep (dry run)"))
        print(
            f"[dry-run] {len(labeled)} runs: "
            f"{statuses.count('cached')} cached, "
            f"{statuses.count('simulate')} to simulate, "
            f"{statuses.count('duplicate')} deduplicated",
            file=sys.stderr,
        )
        return 0

    STATS.reset()
    with _telemetry_scope(args), execution_options(**_runner_options(args)):
        results = run_sweep(SweepSpec.of(
            "cli_sweep", (spec for _label, spec in labeled)))

    # One table row per (workload, vary combo); mechanisms are columns.
    # expand_matrix emits mechanisms innermost, so chunk by their count.
    rows = []
    for start in range(0, len(labeled), len(mechanisms)):
        chunk = labeled[start:start + len(mechanisms)]
        label = chunk[0][0]
        row: Dict[str, object] = {
            "workload": label["args"][_SWEEP_LABEL_KEYS[label["workload"]]],
        }
        # vary columns only: --faults/--link-profile base overrides are
        # shared by every row and would just repeat long tuples.
        row.update({k: v for k, v in label["overrides"].items() if k in vary})
        metrics = {
            lbl["mechanism"]: m
            for (lbl, _spec), m in zip(chunk, results[start:start + len(mechanisms)])
        }
        base = metrics[mechanisms[0]].cycles
        for mech, m in metrics.items():
            row[f"{mech}_cycles"] = m.cycles
            row[f"{mech}_speedup"] = base / m.cycles if m.cycles else float("inf")
        rows.append(row)
    print(format_table(rows, title="sweep"))
    print(f"[runner] {STATS.summary()}", file=sys.stderr)
    return 0


# ----------------------------------------------------------------------
# corun: multi-tenant co-run scenarios (interference / isolation)
# ----------------------------------------------------------------------
def cmd_corun(args) -> int:
    from repro.harness.experiments import (
        CORUN_MECHANISMS, interference, isolation_check,
    )

    tenants = _csv(args.tenants)
    if not tenants:
        print("corun needs --tenants, e.g. --tenants lock,bfs.wk",
              file=sys.stderr)
        return 2
    mechanisms = _csv(args.mechanisms) or CORUN_MECHANISMS
    error = validate_names(mechanisms=mechanisms)
    if error:
        print(f"corun: {error}", file=sys.stderr)
        return 2
    topologies = _csv(args.topologies) or ("all_to_all",)
    unit_split = core_split = None
    try:
        if args.units:
            unit_split = tuple(int(u) for u in _csv(args.units))
        if args.cores:
            core_split = tuple(int(c) for c in _csv(args.cores))
    except ValueError:
        print("--units/--cores expect counts like 2,2", file=sys.stderr)
        return 2

    STATS.reset()
    status = 0
    with _telemetry_scope(args), execution_options(**_runner_options(args)):
        try:
            if args.check_isolation:
                if unit_split or core_split:
                    print("corun: --check-isolation is whole-machine by "
                          "definition; drop --units/--cores", file=sys.stderr)
                    return 2
                rows = isolation_check(
                    descs=tenants, mechanisms=mechanisms,
                    topologies=topologies, interval=args.interval,
                    rounds=args.rounds, preset=args.preset,
                )
                print(format_table(rows, title="corun isolation check"))
                broken = [r for r in rows if not r["identical"]]
                if broken:
                    print(
                        f"corun: isolation violated for "
                        f"{[(r['workload'], r['mechanism']) for r in broken]}",
                        file=sys.stderr,
                    )
                    status = 1
            else:
                if len(tenants) < 2:
                    print("corun interference needs at least two --tenants "
                          "(or pass --check-isolation)", file=sys.stderr)
                    return 2
                rows = interference(
                    groups=[tuple(tenants)], mechanisms=mechanisms,
                    topologies=topologies, interval=args.interval,
                    rounds=args.rounds, unit_split=unit_split,
                    core_split=core_split, preset=args.preset,
                )
                print(format_table(rows, title="corun interference"))
        except ValueError as exc:
            print(f"corun: {exc}", file=sys.stderr)
            return 2
    print(f"[runner] {STATS.summary()}", file=sys.stderr)
    return status


# ----------------------------------------------------------------------
# sample-check: sampled-mode honesty (estimates vs an exact run)
# ----------------------------------------------------------------------
def cmd_sample_check(args) -> int:
    from repro.harness.runner import execute_spec
    from repro.harness.sampling import flatten_metrics, run_sampled
    from repro.harness.specs import RunSpec
    from repro.workloads.base import RunMetrics

    primitives = _csv(args.primitives) or (() if args.structures else ("lock",))
    structures = _csv(args.structures)
    mechanisms = _csv(args.mechanisms) or ("syncron",)
    error = validate_names(primitives=primitives, structures=structures,
                           mechanisms=mechanisms)
    if error:
        print(f"sample-check: {error}", file=sys.stderr)
        return 2
    scenarios: List[Tuple[str, Dict]] = []
    scenarios.extend(
        ("primitive", {"primitive": p, "interval": args.interval,
                       "rounds": args.rounds})
        for p in primitives
    )
    scenarios.extend(
        ("structure", {"structure": s, "ops_per_core": args.rounds})
        for s in structures
    )

    rows = []
    status = 0
    for workload, wargs in scenarios:
        for mech in mechanisms:
            spec = RunSpec.make(workload, mechanism=mech, args=wargs,
                                preset=args.preset)
            try:
                sampled, report = run_sampled(spec, args.fraction)
            except ValueError as exc:
                print(f"sample-check: {spec.describe()}: {exc}",
                      file=sys.stderr)
                return 2
            exact = RunMetrics.from_dict(execute_spec(spec)["result"])
            flat_exact = flatten_metrics(exact)
            violations = []
            for name, cell in report["counters"].items():
                if name.startswith("stats.kernel."):
                    continue  # simulation effort, not an extrapolated target
                observed = abs(cell["estimate"] - flat_exact.get(name, 0.0))
                if observed > cell["bound"]:
                    violations.append((name, observed, cell["bound"]))
            exact_events = flat_exact["stats.kernel.events_processed"]
            ratio = (report["executed_events"] / exact_events
                     if exact_events else 0.0)
            rows.append({
                "run": spec.describe(),
                "rounds": (
                    "+".join(str(k) for k in report["sampled_rounds"])
                    + f"/{report['total_rounds']}"
                ),
                "events_vs_exact": f"{100 * ratio:.1f}%",
                "cycles_est": sampled.cycles,
                "cycles_exact": exact.cycles,
                "cycles_err_pct": (
                    f"{100 * abs(sampled.cycles - exact.cycles) / exact.cycles:.2f}"
                    if exact.cycles else "0.00"
                ),
                "counters_ok": (
                    f"{len(report['counters']) - len(violations)}"
                    f"/{len(report['counters'])}"
                ),
            })
            if violations:
                status = 1
                for name, observed, bound in violations:
                    print(
                        f"sample-check: {spec.describe()}: counter {name} "
                        f"error {observed:.3g} escapes its bound {bound:.3g}",
                        file=sys.stderr,
                    )
            if ratio > args.max_event_ratio:
                status = 1
                print(
                    f"sample-check: {spec.describe()}: sampled runs executed "
                    f"{100 * ratio:.1f}% of the exact run's events "
                    f"(limit {100 * args.max_event_ratio:.0f}%)",
                    file=sys.stderr,
                )
    print(format_table(rows, title="sample-check (sampled vs exact)"))
    if status == 0:
        print("[sample-check] all error bounds cover the observed error",
              file=sys.stderr)
    return status


# ----------------------------------------------------------------------
# cache: inspect and maintain the content-addressed result store
# ----------------------------------------------------------------------
def cmd_cache(args) -> int:
    import json as _json
    import os as _os

    from repro.harness.store import StoreError, open_store

    url = args.store or "dir:" + str(
        args.cache_dir or _os.environ.get("REPRO_CACHE_DIR", ".repro-cache"))
    try:
        store = open_store(url)
        if args.action == "stats":
            report = store.stats()
        elif args.action == "verify":
            report = store.verify()
        elif args.action == "gc":
            report = store.gc()
        elif args.action == "migrate":
            # opening the store already ingested a results.jsonl sitting in
            # its own directory; --source ingests an arbitrary legacy file.
            ingested = store.migrated
            if args.source:
                ingested += store.ingest_jsonl(args.source,
                                               rename=not args.keep_source)
            report = {"backend": store.scheme, "ingested": ingested,
                      "entries": len(store)}
    except StoreError as exc:
        print(f"cache: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(_json.dumps(report, indent=2, sort_keys=True))
    else:
        for key, value in report.items():
            print(f"{key:18s} {value}")
    if args.action == "verify":
        total = report.get("quarantine_total", len(report["corrupt"]))
        if report["corrupt"]:
            print(f"cache: {len(report['corrupt'])} corrupt entries "
                  f"quarantined this pass ({total} total in quarantine/)",
                  file=sys.stderr)
            return 1
        print(f"cache: verify ok ({report['ok']} entries, {total} in "
              f"quarantine/ from earlier damage)", file=sys.stderr)
    return 0


# ----------------------------------------------------------------------
# top: live view of an in-flight cooperative sweep
# ----------------------------------------------------------------------
def _store_root(args) -> Optional[str]:
    """Resolve the filesystem root the sweep's heartbeats live under."""
    import os as _os

    url = getattr(args, "store", None)
    if url:
        scheme, sep, rest = url.partition(":")
        if not sep:
            return url  # bare path
        if rest:
            return rest  # dir:PATH / shared:PATH
        return None  # memory: has no root -> nothing to observe
    return (getattr(args, "cache_dir", None)
            or _os.environ.get("REPRO_CACHE_DIR", ".repro-cache"))


def cmd_top(args) -> int:
    import time as _time

    from repro.harness import topview

    root = _store_root(args)
    if root is None:
        print("top: a memory: store has no on-disk heartbeats to observe; "
              "point --store at the sweep's dir:/shared: root",
              file=sys.stderr)
        return 2
    once = args.once or not sys.stdout.isatty()
    try:
        while True:
            snapshot = topview.gather(root)
            text = topview.render(snapshot)
            if once:
                print(text)
                return 0 if snapshot["found"] else 1
            # TTY: redraw in place until every worker reports done.
            sys.stdout.write("\x1b[2J\x1b[H" + text + "\n")
            sys.stdout.flush()
            if snapshot["found"] and topview.finished(snapshot):
                return 0
            _time.sleep(args.interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        print()
        return 0


# ----------------------------------------------------------------------
# report: render a finished run's telemetry
# ----------------------------------------------------------------------
def cmd_report(args) -> int:
    import json as _json
    from pathlib import Path

    from repro.telemetry import merge_snapshots

    directory = Path(args.telemetry_dir)
    snapshots = []
    for path in sorted(directory.glob("snapshot-*.json")):
        try:
            snapshots.append(_json.loads(path.read_text(encoding="utf-8")))
        except (OSError, _json.JSONDecodeError):
            print(f"report: skipping unreadable {path}", file=sys.stderr)
    event_counts: Dict[str, int] = {}
    event_lines = 0
    for path in sorted(directory.glob("events-*.jsonl")):
        try:
            lines = path.read_text(encoding="utf-8").splitlines()
        except OSError:
            continue
        for line in lines:
            try:
                record = _json.loads(line)
            except _json.JSONDecodeError:
                continue
            event_lines += 1
            name = str(record.get("event", "?"))
            event_counts[name] = event_counts.get(name, 0) + 1
    if not snapshots and not event_counts:
        print(f"report: no telemetry found under {directory}/ "
              "(expected snapshot-*.json / events-*.jsonl)", file=sys.stderr)
        return 2

    merged = merge_snapshots(snapshots)
    title = f"telemetry @ {directory}"
    workers = merged.get("workers", [])
    print(f"{title}: {len(snapshots)} snapshot(s), {event_lines} logged "
          f"event(s), workers: {', '.join(workers) or '-'}")
    if merged.get("spans"):
        rows = [
            {"span": name, "count": cell["count"],
             "total_s": cell["total_s"],
             "mean_ms": 1e3 * cell["total_s"] / cell["count"],
             "max_ms": 1e3 * cell["max_s"], "errors": cell["errors"]}
            for name, cell in sorted(merged["spans"].items())
        ]
        print()
        print(format_table(rows, title="spans"))
    if merged.get("counters"):
        rows = [{"counter": k, "value": v}
                for k, v in sorted(merged["counters"].items())]
        print()
        print(format_table(rows, title="counters"))
    if merged.get("gauges"):
        rows = [{"gauge": k, "value": v}
                for k, v in sorted(merged["gauges"].items())]
        print()
        print(format_table(rows, title="gauges"))
    if merged.get("histograms"):
        rows = [
            {"histogram": name, "count": cell["count"], "sum": cell["sum"],
             "mean_ms": (1e3 * cell["sum"] / cell["count"]
                         if cell["count"] else 0.0)}
            for name, cell in sorted(merged["histograms"].items())
        ]
        print()
        print(format_table(rows, title="histograms"))
    if event_counts:
        rows = [{"event": k, "count": v}
                for k, v in sorted(event_counts.items())]
        print()
        print(format_table(rows, title="event log"))
    return 0


# ----------------------------------------------------------------------
# lint: the simulator-invariant static-analysis gate
# ----------------------------------------------------------------------
def cmd_lint(args) -> int:
    from pathlib import Path

    from repro.analysis.engine import (
        LintError,
        default_baseline_path,
        lint_package,
        load_baseline,
        render_json,
        render_table,
        write_baseline,
    )

    baseline_path = (Path(args.baseline) if args.baseline
                     else default_baseline_path())
    try:
        report = lint_package(rule_ids=args.rule, baseline_path=baseline_path)
    except LintError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    if args.update_baseline:
        keep = report.findings + report.baselined
        write_baseline(baseline_path, keep, load_baseline(baseline_path))
        print(f"baseline updated: {len(keep)} entry(ies) -> {baseline_path}")
        return 0
    print(render_json(report) if args.format == "json"
          else render_table(report))
    if args.output:
        Path(args.output).write_text(render_json(report) + "\n")
    return 0 if report.clean else 1


def cmd_quickstart(_args) -> int:
    from repro import NDPSystem, api, ndp_2_5d
    from repro.sim import Compute

    system = NDPSystem(ndp_2_5d(), mechanism="syncron")
    lock = system.create_syncvar(name="cli_lock")
    shared = {"counter": 0}

    def worker():
        for _ in range(10):
            yield api.lock_acquire(lock)
            shared["counter"] += 1
            yield Compute(20)
            yield api.lock_release(lock)

    cycles = system.run_programs({c.core_id: worker() for c in system.cores})
    print(f"{len(system.cores)} cores, {shared['counter']} lock-protected "
          f"increments, {cycles} cycles, 0 lost updates")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SynCron (HPCA 2021) reproduction: run the paper's experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible tables/figures")

    def add_runner_flags(cmd):
        cmd.add_argument("--workers", "--jobs", dest="workers", type=int,
                         default=1, metavar="N",
                         help="pull-based worker processes draining the sweep "
                              "(default 1; --jobs is the legacy alias)")
        cmd.add_argument("--no-cache", action="store_true",
                         help="ignore and don't write the on-disk result store")
        cmd.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="result-store directory (default $REPRO_CACHE_DIR "
                              "or .repro-cache)")
        cmd.add_argument("--store", default=None, metavar="URL",
                         help="result-store backend: memory:, dir:PATH, or "
                              "shared:PATH (default dir:<cache-dir>)")
        cmd.add_argument("--worker-id", default=None, metavar="ID",
                         help="join a cooperative drain under this identity: "
                              "independent invocations (other processes or "
                              "hosts) pointed at one shared store execute "
                              "each spec exactly once")
        cmd.add_argument("--lease-ttl", type=float, default=None, metavar="SEC",
                         help="seconds before an unreleased claim from a "
                              "crashed worker is re-run by survivors "
                              "(default 60)")
        cmd.add_argument("--sampling", type=float, default=None, metavar="F",
                         help="sampled simulation: run F (0<F<1) of each "
                              "sampleable workload's rounds and extrapolate "
                              "with error bounds; approximate, never cached "
                              "(see `repro sample-check`)")
        cmd.add_argument("--telemetry", default=None, metavar="DIR",
                         help="write a JSONL event log + aggregate snapshot "
                              "of this command's execution to DIR (render "
                              "afterwards with `repro report DIR`)")

    run = sub.add_parser("run", help="run one experiment and print its table")
    run.add_argument("experiment", help="e.g. fig11, table1, ext_rwlock")
    run.add_argument("--arg", action="append", metavar="KEY=VALUE",
                     help="experiment keyword argument (repeatable)")
    run.add_argument("--plot", action="store_true",
                     help="also draw a terminal chart in the figure's shape")
    run.add_argument("--faults", default=None, metavar="SPEC",
                     help="fault plan for fault-aware experiments "
                          "(degradation): comma-separated events like "
                          "'0>1@100', '2-3@50+500', 'unit:1@200', or "
                          "scalars 'rate=0.1', 'seed=7'")
    run.add_argument("--link-profile", default=None, metavar="SPEC",
                     help="per-channel overrides like "
                          "'0>1=25.6:80,2-3=:200' (GB/s and/or ns)")
    run.add_argument("--sanitize", action="store_true",
                     help="runtime determinism sanitizer: record per-cycle "
                          "access sets and flag same-cycle ordering hazards "
                          "(debug mode: forces --no-cache and one worker; "
                          "non-zero exit on hazards)")
    add_runner_flags(run)

    sweep = sub.add_parser(
        "sweep",
        help="run an ad-hoc scenario matrix (workloads x mechanisms x config)",
    )
    sweep.add_argument("--apps", metavar="A,B,...",
                       help="application-input combos, e.g. bfs.wk,cc.sl,ts.air")
    sweep.add_argument("--structures", metavar="S,T,...",
                       help="data structures, e.g. stack,queue,bst_fg")
    sweep.add_argument("--primitives", metavar="P,Q,...",
                       help="sync primitives, e.g. lock,barrier")
    sweep.add_argument("--interval", type=int, default=200,
                       help="instruction interval for --primitives (default 200)")
    sweep.add_argument("--rounds", type=int, default=25,
                       help="rounds for --primitives (default 25)")
    sweep.add_argument("--mechanisms", metavar="M,N,...",
                       help="mechanisms to compare (default central,hier,"
                            "syncron,ideal); first is the speedup baseline")
    sweep.add_argument("--vary", action="append", metavar="FIELD=V1,V2,...",
                       help="sweep a SystemConfig field (repeatable; cross "
                            "product), e.g. link_latency=40,100,500")
    sweep.add_argument("--preset", default="ndp_2_5d",
                       help="base SystemConfig preset (default ndp_2_5d)")
    sweep.add_argument("--seed", type=int, default=None,
                       help="workload seed forwarded to seedable workloads")
    sweep.add_argument("--faults", default=None, metavar="SPEC",
                       help="inject a fault plan into every run: events like "
                            "'0>1@100', '2-3@50+500', 'unit:1@200', or "
                            "scalars 'rate=0.1', 'transient=0.05', 'seed=7'")
    sweep.add_argument("--link-profile", default=None, metavar="SPEC",
                       help="per-channel bandwidth/latency overrides for "
                            "every run, e.g. '0>1=25.6:80,2-3=:200'")
    sweep.add_argument("--dry-run", action="store_true",
                       help="print the resolved run matrix and cache "
                            "hit/miss counts without simulating anything")
    add_runner_flags(sweep)

    corun = sub.add_parser(
        "corun",
        help="co-run tenants on one machine (interference / isolation)",
    )
    corun.add_argument("--tenants", metavar="T1,T2,...",
                       help="tenant workloads: primitives (lock), app combos "
                            "(bfs.wk), or structures (stack)")
    corun.add_argument("--units", metavar="N1,N2,...",
                       help="units per tenant (contiguous slices; default "
                            "even split)")
    corun.add_argument("--cores", metavar="N1,N2,...",
                       help="client cores per tenant instead of whole units "
                            "(tenants then share units/SEs/crossbars)")
    corun.add_argument("--mechanisms", metavar="M,N,...",
                       help="mechanisms to compare (default central,syncron)")
    corun.add_argument("--topologies", metavar="T,U,...",
                       help="fabrics to sweep (default all_to_all)")
    corun.add_argument("--interval", type=int, default=200,
                       help="instruction interval for primitive tenants "
                            "(default 200)")
    corun.add_argument("--rounds", type=int, default=None,
                       help="rounds for primitive tenants (default scaled)")
    corun.add_argument("--preset", default="ndp_2_5d",
                       help="base SystemConfig preset (default ndp_2_5d)")
    corun.add_argument("--check-isolation", action="store_true",
                       help="assert a whole-machine single tenant is "
                            "bit-identical to the plain run (exit 1 if not)")
    add_runner_flags(corun)

    check = sub.add_parser(
        "sample-check",
        help="verify sampled-mode error bounds against an exact run",
    )
    check.add_argument("--primitives", metavar="P,Q,...",
                       help="primitive scenarios (default lock when no "
                            "--structures given)")
    check.add_argument("--structures", metavar="S,T,...",
                       help="data-structure scenarios, e.g. stack,queue")
    check.add_argument("--mechanisms", metavar="M,N,...",
                       help="mechanisms to check (default syncron)")
    check.add_argument("--fraction", type=float, default=0.125,
                       help="sampling fraction to validate (default 0.125)")
    check.add_argument("--rounds", type=int, default=96,
                       help="full round count M of each scenario (default 96)")
    check.add_argument("--interval", type=int, default=200,
                       help="instruction interval for primitives (default 200)")
    check.add_argument("--preset", default="ndp_2_5d",
                       help="base SystemConfig preset (default ndp_2_5d)")
    check.add_argument("--max-event-ratio", type=float, default=0.25,
                       help="fail if sampled runs execute more than this "
                            "fraction of the exact run's events (default 0.25)")

    cache = sub.add_parser(
        "cache",
        help="inspect/maintain the content-addressed result store",
    )
    cache.add_argument("action",
                       choices=("stats", "verify", "gc", "migrate"),
                       help="stats: entries/bytes/shards; verify: re-hash "
                            "entries and quarantine corruption; gc: drop "
                            "stale-version entries, dead leases, abandoned "
                            "temp files; migrate: ingest a legacy "
                            "results.jsonl")
    cache.add_argument("--store", default=None, metavar="URL",
                       help="store url (default dir:<cache-dir>)")
    cache.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="store directory (default $REPRO_CACHE_DIR or "
                            ".repro-cache)")
    cache.add_argument("--source", default=None, metavar="JSONL",
                       help="migrate: an explicit legacy results.jsonl path")
    cache.add_argument("--keep-source", action="store_true",
                       help="migrate: don't rename the ingested file")
    cache.add_argument("--json", action="store_true",
                       help="machine-readable output")

    top = sub.add_parser(
        "top",
        help="live progress of a cooperative sweep draining a shared store",
    )
    top.add_argument("--store", default=None, metavar="URL",
                     help="the sweep's store url (dir:PATH or shared:PATH)")
    top.add_argument("--cache-dir", default=None, metavar="DIR",
                     help="store directory (default $REPRO_CACHE_DIR or "
                          ".repro-cache)")
    top.add_argument("--interval", type=float, default=2.0, metavar="SEC",
                     help="refresh interval on a TTY (default 2.0)")
    top.add_argument("--once", action="store_true",
                     help="print one snapshot and exit (automatic when "
                          "stdout is not a TTY)")

    report = sub.add_parser(
        "report",
        help="render the telemetry a --telemetry run left behind",
    )
    report.add_argument("telemetry_dir", metavar="DIR",
                        help="directory passed to --telemetry (holds "
                             "snapshot-*.json and events-*.jsonl)")

    lint = sub.add_parser(
        "lint",
        help="static analysis: check the package against the simulator "
             "invariants (RP001..RP006)",
    )
    lint.add_argument("--rule", action="append", metavar="RPNNN",
                      help="check only this rule (repeatable; default all)")
    lint.add_argument("--format", choices=("table", "json"), default="table",
                      help="report format (default table)")
    lint.add_argument("--update-baseline", action="store_true",
                      help="rewrite baseline.json to grandfather every "
                           "current finding (keeps existing justifications; "
                           "new entries get a TODO)")
    lint.add_argument("--baseline", default=None, metavar="PATH",
                      help="baseline file (default: the committed "
                           "src/repro/analysis/baseline.json)")
    lint.add_argument("--output", default=None, metavar="PATH",
                      help="additionally write the JSON report to PATH "
                           "(CI artifact)")

    sub.add_parser("quickstart", help="run the README quickstart")
    return parser


def main(argv: List[str] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {"list": cmd_list, "run": cmd_run, "sweep": cmd_sweep,
               "corun": cmd_corun, "cache": cmd_cache,
               "sample-check": cmd_sample_check,
               "top": cmd_top, "report": cmd_report,
               "lint": cmd_lint, "quickstart": cmd_quickstart}
    return handler[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
