"""Central baseline (Sec. 5): one server core for the whole system.

Extends the message-passing barrier of Tesseract [Ahn et al., ISCA'15] to
all four primitives: a single dedicated NDP core acts as server and
coordinates synchronization among all NDP cores, issuing memory requests to
synchronization variables through its own memory hierarchy.  Every client —
including clients in other NDP units — messages it directly, so under
contention all traffic funnels over the narrow inter-unit links to one spot.
"""

from __future__ import annotations

from repro.core.engine import SynCronMechanism
from repro.core.messages import REQUEST_BYTES
from repro.sync.server import ServerEngine


class _CentralServer(ServerEngine):
    """The single server core coordinates every variable."""

    def is_master(self, var) -> bool:
        return True

    def master_of(self, var) -> int:
        return self.se_id


class CentralMechanism(SynCronMechanism):
    name = "central"

    #: the server core lives in unit 0 (any fixed unit is equivalent).
    SERVER_UNIT = 0

    def __init__(self, system):
        super().__init__(system)
        server = _CentralServer(self, se_id=self.SERVER_UNIT, unit=self.SERVER_UNIT)
        # every "SE slot" routes to the one server.
        self.ses = [server] * self.config.num_units
        self.server = server

    def _inject(self, core, msg) -> None:
        if core.unit_id == self.SERVER_UNIT:
            self.stats.sync_messages_local += 1
        else:
            self.stats.sync_messages_global += 1
        latency = self.interconnect.transfer_latency(
            core.unit_id, self.SERVER_UNIT, self.sim.now, REQUEST_BYTES
        )
        self.server.receive(
            msg, self.sim.now + latency, sender=core.sender_token
        )
