"""MiSAR-style non-integrated overflow management (paper Sec. 6.7.3 / Fig. 23).

SynCron's integrated scheme falls back to main memory at the Master SE.
MiSAR instead *aborts* hardware synchronization on overflow: the accelerator
notifies the participating cores to synchronize through an alternative
software solution, and when they finish they notify the accelerator to
switch back.  The paper adapts that scheme to SynCron and evaluates two
alternative software solutions:

- ``SynCron_CentralOvrfl`` — one dedicated NDP core handles *all* overflowed
  variables (a single software server);
- ``SynCron_DistribOvrfl``  — one NDP core per NDP unit handles overflowed
  variables whose home is that unit.

We model the scheme as follows.  When the Master SE cannot buffer a variable
(ST full), it (1) broadcasts abort/switch notifications (network traffic to
every unit), (2) marks the variable as fallback-serviced, and (3) forwards
this and all subsequent messages for it to the fallback *server core*, which
services them with the software-server cost model
(:class:`~repro.sync.server.ServerEngine`).  When the fallback server's
state for the variable drains, it notifies the SEs to switch back to
hardware (more traffic) and the variable becomes ST-eligible again.  This
reproduces the costs the paper attributes to non-integrated overflow: extra
hops, software service latency, switch-notification traffic, and (for
CentralOvrfl) serialization at a single fallback server.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.core.engine import SynCronMechanism, SyncEngine
from repro.core.messages import LOCAL_OPCODES, Message, Opcode, OVERFLOW_OPCODES, RESPONSE_BYTES
from repro.sync.server import ServerEngine


class _AbortModeSE(SyncEngine):
    """An SE whose master-side overflow path aborts to a fallback server."""

    def _get_state(self, msg: Message, acquire: bool, sem_init: Optional[int] = None):
        addr = msg.var.addr
        if self.is_master(msg.var) and self.mech.is_fallback_var(addr):
            self.mech.forward_to_fallback(self, msg)
            return None, False
        entry = self.st.lookup(addr)
        if entry is not None:
            return entry, False
        if not self.is_master(msg.var):
            if (
                self.st.is_full
                or addr in self._redirected
                or self.counters.is_memory_serviced(addr)
            ):
                self._redirect_overflow(msg)
                return None, False
            entry = self.st.allocate(msg.var)
            self.stats.count_st_allocation()
            if sem_init is not None:
                entry.table_info = sem_init
            return entry, False
        # Master SE with no entry.
        if not self.st.is_full:
            entry = self.st.allocate(msg.var)
            self.stats.count_st_allocation()
            if sem_init is not None:
                entry.table_info = sem_init
            return entry, False
        # Overflow: abort to the alternative software solution.
        self.mech.begin_fallback(self, msg, sem_init)
        return None, False


class _FallbackServer(ServerEngine):
    """The software server that services overflowed variables (flat)."""

    def is_master(self, var) -> bool:
        return True

    def master_of(self, var) -> int:
        return self.se_id

    def dispatch(self, msg: Message) -> None:
        addr = msg.var.addr
        left = self.mech._inflight.get(addr, 0) - 1
        self.mech._inflight[addr] = max(left, 0)
        super().dispatch(msg)
        if left <= 0 and self.st.lookup(addr) is None:
            # The last in-flight message has been processed and the state is
            # gone: now the switch back to hardware is safe.
            self.mech.on_fallback_drained(self, msg.var)

    def _charge_state_access(self, var) -> None:
        """The alternative software solution keeps synchronization variables
        in shared read-write memory, which the NDP system's software-assisted
        coherence makes uncacheable (Sec. 4.5): every access goes to DRAM."""
        accesses = self.config.server_handler_accesses
        for i in range(accesses):
            now = self.sim.now + self._extra
            self._extra += self.mech.memsys.access(
                self.unit,
                None,
                var.addr,
                is_write=(i == accesses - 1),
                cacheable=False,
                now=now,
                for_sync=True,
            )

    def _maybe_free_state(self, state, var, in_memory: bool) -> None:
        super()._maybe_free_state(state, var, in_memory)
        if self.st.lookup(var.addr) is None and self.mech._inflight.get(var.addr, 0) == 0:
            self.mech.on_fallback_drained(self, var)


class _AbortOverflowMechanism(SynCronMechanism):
    """Shared machinery for the two non-integrated overflow variants."""

    def __init__(self, system):
        super().__init__(system)
        self.ses = [_AbortModeSE(self, u) for u in range(self.config.num_units)]
        self._fallback_vars: Set[int] = set()
        #: forwarded-but-not-yet-processed message count per variable; the
        #: switch back to hardware must wait until this drains, or a grant
        #: issued by the fallback would be released into thin air.
        self._inflight: Dict[int, int] = {}
        self._fallbacks = self._make_fallbacks()

    # Subclasses provide the fallback topology. -------------------------
    def _make_fallbacks(self):  # pragma: no cover - abstract
        raise NotImplementedError

    def _fallback_for(self, var) -> _FallbackServer:  # pragma: no cover
        raise NotImplementedError

    # ------------------------------------------------------------------
    def is_fallback_var(self, addr: int) -> bool:
        return addr in self._fallback_vars

    def begin_fallback(self, se: _AbortModeSE, msg: Message,
                       sem_init: Optional[int] = None) -> None:
        """First overflow for this variable: abort + switch to software."""
        self._fallback_vars.add(msg.var.addr)
        self._broadcast_switch(se)
        self.forward_to_fallback(se, msg)

    def _broadcast_switch(self, se: SyncEngine) -> None:
        """Abort/resume notifications to every unit's cores (traffic only)."""
        now = self.sim.now
        for unit in range(self.config.num_units):
            if unit == se.unit:
                self.stats.sync_messages_local += 1
                self.interconnect.local_latency(unit, now, RESPONSE_BYTES)
            else:
                self.stats.sync_messages_global += 1
                self.interconnect.transfer_latency(se.unit, unit, now, RESPONSE_BYTES)

    def forward_to_fallback(self, se: SyncEngine, msg: Message) -> None:
        server = self._fallback_for(msg.var)
        addr = msg.var.addr
        self._inflight[addr] = self._inflight.get(addr, 0) + 1
        depart = self.sim.now + se._extra

        core_originated = msg.opcode in LOCAL_OPCODES or msg.opcode in OVERFLOW_OPCODES
        if core_originated:
            if msg.opcode in LOCAL_OPCODES:
                # Overflow-opcode messages were already counted as overflowed
                # requests by the local SE that re-directed them.
                self.stats.st_overflow_requests += 1
            # MiSAR-style abort: the SE tells the requesting core to use the
            # alternative solution, and the core re-issues the request to the
            # fallback server itself (Sec. 6.7.3) — one extra round trip per
            # request, plus a switch-back notification afterwards.
            origin = self.core_unit(msg.core) if msg.core is not None else se.unit
            abort = self.interconnect.transfer_latency(
                se.unit, origin, depart, RESPONSE_BYTES
            )
            self._count_message(se.unit, origin)
            reissue = self.interconnect.transfer_latency(
                origin, server.unit, depart + abort, msg.bytes
            )
            self._count_message(origin, server.unit)
            # switch-back notification core -> SE, charged as traffic.
            self.interconnect.transfer_latency(
                origin, se.unit, depart + abort, RESPONSE_BYTES
            )
            self._count_message(origin, se.unit)
            arrival = depart + abort + reissue
        else:
            latency = self.interconnect.transfer_latency(
                se.unit, server.unit, depart, msg.bytes
            )
            self._count_message(se.unit, server.unit)
            arrival = depart + latency
        server.receive(msg, arrival, sender=se.sender_token)

    def _count_message(self, src_unit: int, dst_unit: int) -> None:
        if src_unit == dst_unit:
            self.stats.sync_messages_local += 1
        else:
            self.stats.sync_messages_global += 1

    def inject_internal(self, se, msg: Message) -> None:
        """Condvar-driven lock release/re-acquire must run hierarchically at
        the involved core's local SE, even when the condvar itself is being
        serviced by a fallback server."""
        if isinstance(se, _FallbackServer):
            target = self.ses[self.core_unit(msg.core)]
            depart = self.sim.now + se._extra
            if target.unit == se.unit:
                self.stats.sync_messages_local += 1
                latency = self.interconnect.local_latency(se.unit, depart, msg.bytes)
            else:
                self.stats.sync_messages_global += 1
                latency = self.interconnect.transfer_latency(
                    se.unit, target.unit, depart, msg.bytes
                )
            target.receive(msg, depart + latency, sender=se.sender_token)
            return
        super().inject_internal(se, msg)

    def on_fallback_drained(self, server: _FallbackServer, var) -> None:
        """The variable's software state drained: switch back to hardware."""
        if var.addr in self._fallback_vars:
            self._fallback_vars.discard(var.addr)
            self._broadcast_switch(server)


class SynCronCentralOverflowMechanism(_AbortOverflowMechanism):
    """Fig. 23 ``SynCron_CentralOvrfl``: one fallback server for everything."""

    name = "syncron_central_ovrfl"

    def _make_fallbacks(self):
        return [_FallbackServer(self, se_id=self.config.num_units, unit=0)]

    def _fallback_for(self, var) -> _FallbackServer:
        return self._fallbacks[0]


class SynCronDistribOverflowMechanism(_AbortOverflowMechanism):
    """Fig. 23 ``SynCron_DistribOvrfl``: one fallback server per NDP unit,
    handling the variables homed in its unit."""

    name = "syncron_distrib_ovrfl"

    def _make_fallbacks(self):
        return [
            _FallbackServer(self, se_id=self.config.num_units + u, unit=u)
            for u in range(self.config.num_units)
        ]

    def _fallback_for(self, var) -> _FallbackServer:
        return self._fallbacks[var.unit]
