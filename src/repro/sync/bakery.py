"""Lamport-bakery software synchronization baseline (paper Sec. 2.2.1).

When the hardware provides no atomic read-modify-write operations at all,
synchronization can still be built from plain loads and stores with
Lamport's bakery algorithm [87] — at the cost of touching ``O(N)`` memory
locations per retry for ``N`` participating cores.  The paper cites this
scaling as the reason shared-memory synchronization without rmw support is
a non-starter on NDP systems; this module implements the baseline so the
``O(N)`` wall is measurable (see ``benchmarks/bench_ablations.py``).

Model
-----

Each synchronization variable owns a bakery array (``choosing[N]`` and
``number[N]``) in its home unit's memory.  All accesses are uncacheable
(shared read-write data bypasses the L1 per the baseline architecture), so
every load/store is a round trip to the home unit's DRAM:

- *taking a ticket* costs 2 stores + ``N`` loads (read every number to pick
  max+1) + 1 store;
- *one doorway scan* costs up to ``2N`` loads (``choosing[j]`` then
  ``number[j]`` per rival); a failed scan backs off and rescans.

Ordering (who holds the lock) is tracked by ticket order, which the scans
discover; grant timing is when the winner's first *successful* scan
completes after the previous owner resets its number.

Higher-level primitives (barrier, semaphore, condition variable) follow the
textbook construction: a bakery lock guards the primitive's state word;
waiters poll the state word (one uncacheable load per poll) between
critical sections.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

from repro.sim.program import (
    BARRIER_WAIT_ACROSS_UNITS,
    BARRIER_WAIT_WITHIN_UNIT,
    COND_BROADCAST,
    COND_SIGNAL,
    COND_WAIT,
    LOCK_ACQUIRE,
    LOCK_RELEASE,
    RW_READ_ACQUIRE,
    RW_READ_RELEASE,
    RW_WRITE_ACQUIRE,
    RW_WRITE_RELEASE,
    SEM_POST,
    SEM_WAIT,
)
from repro.sim.memsys import REQUEST_BYTES
from repro.sim.stats import charge_elided_transfer
from repro.sim.syncif import MechanismBase, SpinWaitMixin, SyncVar, _no_waiter

#: bytes of one word-grain uncacheable access (header + payload).
WORD_BYTES = 16


class _BakeryLockState:
    """Logical state of one bakery lock: ticket order is FIFO.

    Ownership is per *ticket*, not per core: one core can have several
    acquisitions of the same lock in flight at once (an async ``sem_post``
    plus the next ``sem_wait`` both take the guard lock), and each must be
    granted exactly once.  Tracking the owner by core id let every parked
    attempt of the owning core believe it held the lock, enter the critical
    section, and double-release.
    """

    __slots__ = ("next_ticket", "owner", "owner_core", "queue", "held")

    def __init__(self) -> None:
        self.next_ticket = 1
        #: ticket currently in the critical section (None = free).
        self.owner: Optional[int] = None
        self.owner_core: Optional[int] = None
        #: parked acquisitions, FIFO: (ticket, core_id).
        self.queue: Deque[Tuple[int, int]] = deque()
        #: granted-but-unreleased tickets per core, in grant order.
        self.held: Dict[int, Deque[int]] = {}

    def take_ticket(self, core_id: int) -> int:
        """Join the bakery line; returns this acquisition's ticket.

        The caller learns whether it was granted immediately by comparing
        ``state.owner`` to the returned ticket.
        """
        ticket = self.next_ticket
        self.next_ticket += 1
        if self.owner is None and not self.queue:
            self._grant(ticket, core_id)
        else:
            self.queue.append((ticket, core_id))
        return ticket

    def _grant(self, ticket: int, core_id: int) -> None:
        self.owner = ticket
        self.owner_core = core_id
        self.held.setdefault(core_id, deque()).append(ticket)

    def release(self, core_id: int) -> None:
        held = self.held.get(core_id)
        if not held or self.owner != held[0]:
            raise RuntimeError(
                f"core {core_id} released a bakery lock owned by core "
                f"{self.owner_core} (ticket {self.owner})"
            )
        held.popleft()
        if not held:
            del self.held[core_id]
        if self.queue:
            self._grant(*self.queue.popleft())
        else:
            self.owner = None
            self.owner_core = None


class BakeryMechanism(SpinWaitMixin, MechanismBase):
    """Software synchronization from loads/stores only (``bakery``).

    Waiting is wait-channel based (no event per poll): doorway scanners
    park on the per-variable ``"L"`` channel, signalled by every lock
    release; state-word pollers park on the ``"W"`` channel, signalled
    whenever a guarded critical section actually changes a word.  A woken
    core runs one real, fully-charged rescan/attempt; the elided rounds in
    between are charged analytically (a virtual scan still pays its
    ``2N``-load traffic — the O(N) bakery wall survives elision).
    """

    name = "bakery"

    def __init__(self, system):
        super().__init__(system)
        self._locks: Dict[int, _BakeryLockState] = {}
        #: state words for barrier/semaphore/condvar (addr, field) -> value.
        self._words: Dict[Tuple[int, str], int] = {}
        self._sem_initialized: Dict[int, bool] = {}
        #: per-core duration of the most recent charged access sequence —
        #: the physical length of one poll, folded into the virtual period.
        self._seq_cycles: Dict[int, int] = {}
        self.scan_rounds = 0
        #: set by :meth:`_set_word` inside a critical section's observe
        #: hook; tells :meth:`_guarded_update` to signal the "W" channel.
        self._mutated = False
        self._init_spin_channels()

    # ------------------------------------------------------------------
    # Memory-access cost model
    # ------------------------------------------------------------------
    def _access(self, core, var: SyncVar, is_write: bool, now: int) -> int:
        """One uncacheable word access to ``var``'s home unit."""
        return self.system.memsys.access(
            core.unit_id, None, var.addr, is_write,
            cacheable=False, now=now, size=8, for_sync=True,
        )

    def _charge_sequence(self, core, var: SyncVar, loads: int, stores: int,
                         done: Callable[[], None]) -> None:
        """Charge ``loads`` + ``stores`` back-to-back accesses, then call
        ``done``.  One simulator event for the whole sequence (the in-order
        core cannot overlap them anyway)."""
        # Retry chains re-enter here from scheduled events, so re-establish
        # the requesting core's tenant as the attribution context.
        self.stats.active = getattr(core, "tstats", None)
        cursor = self.sim.now
        for _ in range(stores):
            cursor += max(self._access(core, var, True, cursor), 1)
        for _ in range(loads):
            cursor += max(self._access(core, var, False, cursor), 1)
        if core.unit_id == var.unit:
            self.stats.sync_messages_local += loads + stores
        else:
            self.stats.sync_messages_global += loads + stores
        self._seq_cycles[core.core_id] = cursor - self.sim.now
        self.sim.schedule_at(cursor, done)

    def _charge_elided_loads(self, core, var: SyncVar, count: int) -> None:
        """Analytic traffic/energy of ``count`` elided uncacheable loads.

        Mirrors what ``count`` real polls through ``memsys.access`` plus
        :meth:`_charge_sequence`'s message accounting would charge (request
        + word response to the home unit, one DRAM read each, charged as
        row hits), without touching bank/link reservation state.
        """
        stats = self.stats
        stats.active = getattr(core, "tstats", None)
        tenant = stats.active
        home = var.unit
        local = core.unit_id == home
        if local:
            stats.sync_messages_local += count
            link_hops = 0
        else:
            stats.sync_messages_global += count
            link_hops = self.interconnect.remote_hops(core.unit_id, home)
        local_hops = self.config.local_hops
        charge_elided_transfer(stats, REQUEST_BYTES, count, local,
                               local_hops, link_hops)
        charge_elided_transfer(stats, REQUEST_BYTES + 8, count, local,
                               local_hops, link_hops)
        stats.dram_reads += count
        stats.dram_row_hits += count
        stats.sync_memory_accesses += count
        if tenant is not None:
            tenant.sync_memory_accesses += count

    def _set_word(self, var: SyncVar, field: str, value: int) -> None:
        """Write a state word from inside a critical section's observe
        hook, flagging the change so the section signals waiters."""
        key = (var.addr, field)
        if self._words.get(key, 0) != value:
            self._words[key] = value
            self._mutated = True

    @property
    def _backoff(self) -> int:
        return max(self.config.spin_backoff_cycles, 1)

    def _virtual_period(self, core) -> int:
        """Spacing between one waiter's virtual polls.

        The explicit chain re-polls one backoff after the previous poll's
        charged access sequence *completed* — a scan cannot overlap itself —
        so the honest period is that sequence's measured duration (the
        core's most recent :meth:`_charge_sequence`, which at every wait
        site is exactly the scan/probe being repeated) plus the backoff.
        Pacing virtual polls at the bare backoff would count and charge
        polls faster than the in-order core could physically issue them.
        """
        return self._seq_cycles.get(core.core_id, 1) + self._backoff

    @property
    def _n(self) -> int:
        """Participants the bakery arrays are sized for."""
        return self.config.total_clients

    def _lock_state(self, addr: int) -> _BakeryLockState:
        state = self._locks.get(addr)
        if state is None:
            state = _BakeryLockState()
            self._locks[addr] = state
        return state

    # ------------------------------------------------------------------
    # Mechanism interface
    # ------------------------------------------------------------------
    def request(self, core, op, var, info, callback) -> None:
        self._admit(core, op, var)
        if op == LOCK_ACQUIRE:
            self._lock_acquire(core, var, callback)
        elif op == LOCK_RELEASE:
            self._lock_release(core, var, callback)
        elif op in (BARRIER_WAIT_WITHIN_UNIT, BARRIER_WAIT_ACROSS_UNITS):
            self._barrier_wait(core, var, info, callback)
        elif op == SEM_WAIT:
            self._sem_wait(core, var, info, callback)
        elif op == SEM_POST:
            self._guarded_update(core, var, "sem", lambda v: v + 1, callback)
        elif op == COND_WAIT:
            self._cond_wait(core, var, info, callback)
        elif op == COND_SIGNAL:
            self._guarded_update(core, var, "credits", lambda v: v + 1, callback)
        elif op == COND_BROADCAST:
            self._guarded_update(core, var, "gen", lambda v: v + 1, callback)
        elif op == RW_READ_ACQUIRE:
            self._rw_acquire(core, var, callback, write=False)
        elif op == RW_READ_RELEASE:
            self._guarded_update(core, var, "readers", lambda v: v - 1, callback)
        elif op == RW_WRITE_ACQUIRE:
            self._rw_acquire(core, var, callback, write=True)
        elif op == RW_WRITE_RELEASE:
            self._guarded_update(core, var, "writer", lambda _v: 0, callback)
        else:
            raise ValueError(f"unknown sync op {op!r}")

    def request_async(self, core, op, var, info) -> int:
        self.request(core, op, var, info, callback=_no_waiter)
        return self.config.async_issue_cycles

    # ------------------------------------------------------------------
    # The bakery lock itself
    # ------------------------------------------------------------------
    def _lock_acquire(self, core, var, callback) -> None:
        state = self._lock_state(var.addr)
        ticket = state.take_ticket(core.core_id)
        n = self._n

        # Doorway: choosing[i]=1, read N numbers, number[i]=max+1,
        # choosing[i]=0 — 2 stores + N loads + 1 store.
        def after_doorway() -> None:
            if state.owner == ticket:
                # First scan still walks every rival once.
                self._charge_sequence(core, var, loads=2 * n, stores=0, done=callback)
            else:
                scan()

        def scan() -> None:
            self.scan_rounds += 1
            self.stats.extra["bakery_scans"] += 1

            def after_scan() -> None:
                if state.owner == ticket:
                    callback()
                else:
                    # Ownership can only change on a release, which signals
                    # the "L" channel; park instead of rescanning blind.
                    # The decision and the wait share this event frame, so
                    # no ``seen`` guard is needed.
                    channel = self._spin_channel(var.addr, "L")
                    delay = self._virtual_period(core)
                    channel.wait(self._scan_woken, delay, delay,
                                 core, var, scan)

            self._charge_sequence(core, var, loads=2 * n, stores=0, done=after_scan)

        self._charge_sequence(core, var, loads=n, stores=3, done=after_doorway)

    def _scan_woken(self, rounds: int, core, var, scan) -> None:
        """Account ``rounds`` elided doorway scans, then rescan for real."""
        if rounds:
            self.scan_rounds += rounds
            self.stats.extra["bakery_scans"] += rounds
            self._charge_elided_loads(core, var, 2 * self._n * rounds)
        scan()

    def _lock_release(self, core, var, callback) -> None:
        state = self._lock_state(var.addr)

        def after_store() -> None:
            state.release(core.core_id)
            # Wake every doorway scanner: each rescans once for real and
            # only the new FIFO owner proceeds — the O(N) release herd the
            # bakery algorithm is measured for.
            self._spin_signal(var.addr, "L")
            callback()

        # number[i] = 0: one store.
        self._charge_sequence(core, var, loads=0, stores=1, done=after_store)

    # ------------------------------------------------------------------
    # Guarded state updates (barrier / semaphore / condvar bodies)
    # ------------------------------------------------------------------
    def _guarded_update(self, core, var, field: str,
                        fn: Callable[[int], int], callback,
                        observe: Optional[Callable[[int, int], None]] = None) -> None:
        """bakery-lock(var) { old = word; word = fn(old) } unlock; callback.

        ``observe(old, new)`` runs inside the critical section.
        """
        def in_critical_section() -> None:
            key = (var.addr, field)
            old = self._words.get(key, 0)
            new = fn(old)
            changed = new != old
            if changed:
                self._words[key] = new
            self._mutated = False
            if observe is not None:
                observe(old, new)
            if changed or self._mutated:
                # A state word actually changed: wake the pollers.  Failed
                # attempts (identity updates) stay silent, so losing races
                # cannot cascade into wake storms.
                self._spin_signal(var.addr, "W")
            # read + write of the state word, then release.
            self._charge_sequence(core, var, loads=1, stores=1, done=release)

        def release() -> None:
            self._lock_release(core, var, callback)

        self._lock_acquire(core, var, in_critical_section)

    def _poll_until(self, core, var, field: str,
                    satisfied: Callable[[int], bool], callback) -> None:
        """Spin-load the state word until ``satisfied(value)``."""
        channel = self._spin_channel(var.addr, "W")

        def poll() -> None:
            def after_load() -> None:
                if satisfied(self._words.get((var.addr, field), 0)):
                    callback()
                else:
                    # Decision and wait share this frame: no seen guard.
                    self.stats.extra["bakery_polls"] += 1
                    delay = self._virtual_period(core)
                    channel.wait(self._poll_woken, delay, delay,
                                 core, var, poll)

            self._charge_sequence(core, var, loads=1, stores=0, done=after_load)

        poll()

    def _poll_woken(self, polls: int, core, var, poll) -> None:
        """Account ``polls`` elided word loads, then poll once for real."""
        if polls:
            self.stats.extra["bakery_polls"] += polls
            self._charge_elided_loads(core, var, polls)
        poll()

    # ------------------------------------------------------------------
    # Barrier / semaphore / condvar over the guarded word
    # ------------------------------------------------------------------
    def _barrier_wait(self, core, var, expected: int, callback) -> None:
        if expected < 1:
            raise ValueError("barrier needs a positive participant count")

        def on_arrival(old: int, new: int) -> None:
            if new >= expected:
                # Last arriver: reset count, bump generation (still inside
                # the critical section, so no extra lock round).
                self._set_word(var, "count", 0)
                self._set_word(var, "gen",
                               self._words.get((var.addr, "gen"), 0) + 1)
                arrival_outcome["last"] = True
            else:
                arrival_outcome["generation"] = self._words.get((var.addr, "gen"), 0)

        def after_update() -> None:
            if arrival_outcome.get("last"):
                callback()
            else:
                my_generation = arrival_outcome["generation"]
                self._poll_until(
                    core, var, "gen", lambda g: g > my_generation, callback
                )

        arrival_outcome: Dict[str, object] = {}
        self._guarded_update(
            core, var, "count", lambda v: v + 1, after_update, observe=on_arrival
        )

    def _sem_wait(self, core, var, initial: int, callback) -> None:
        if not self._sem_initialized.get(var.addr):
            self._sem_initialized[var.addr] = True
            self._words[(var.addr, "sem")] = initial

        channel = self._spin_channel(var.addr, "W")

        def attempt() -> None:
            outcome: Dict[str, int] = {}

            def on_value(old: int, _new: int) -> None:
                outcome["granted"] = old > 0
                # The sem word was *observed* in this frame; snapshot for
                # the lost-wakeup guard — a post completing between our
                # critical section and the wait registration must wake us.
                outcome["seen"] = channel.signals

            def after_update() -> None:
                if outcome["granted"]:
                    callback()
                else:
                    delay = self._virtual_period(core)
                    channel.wait(self._poll_woken, delay, delay,
                                 core, var, attempt, seen=outcome["seen"])

            self._guarded_update(
                core, var, "sem",
                lambda v: v - 1 if v > 0 else v,
                after_update, observe=on_value,
            )

        attempt()

    def _cond_wait(self, core, var, lock_var, callback) -> None:
        snapshot: Dict[str, int] = {}

        def on_snapshot(old: int, _new: int) -> None:
            snapshot["generation"] = self._words.get((var.addr, "gen"), 0)

        def after_snapshot() -> None:
            # Release the caller's lock, then poll for a wakeup.
            self._lock_release(core, lock_var, spin)

        def spin() -> None:
            my_generation = snapshot["generation"]

            def woken_by(credits_or_gen: int) -> bool:
                del credits_or_gen
                generation = self._words.get((var.addr, "gen"), 0)
                credits = self._words.get((var.addr, "credits"), 0)
                return generation > my_generation or credits > 0

            def consume() -> None:
                generation = self._words.get((var.addr, "gen"), 0)
                if generation > snapshot["generation"]:
                    reacquire()
                    return
                outcome: Dict[str, bool] = {}

                def on_credit(old: int, _new: int) -> None:
                    outcome["granted"] = old > 0

                def after_consume() -> None:
                    if outcome["granted"]:
                        reacquire()
                    else:
                        spin()

                self._guarded_update(
                    core, var, "credits",
                    lambda v: v - 1 if v > 0 else v,
                    after_consume, observe=on_credit,
                )

            self._poll_until(core, var, "credits", woken_by, consume)

        def reacquire() -> None:
            self._lock_acquire(core, lock_var, callback)

        # Snapshot the generation under the condvar's own bakery lock so a
        # broadcast cannot slip between snapshot and lock release unnoticed
        # (credits are counting, so signals cannot be lost either way).
        self._guarded_update(
            core, var, "gen", lambda v: v, after_snapshot, observe=on_snapshot
        )

    # ------------------------------------------------------------------
    # Reader-writer lock: readers/writer words guarded by the bakery lock
    # ------------------------------------------------------------------
    def _rw_acquire(self, core, var, callback, write: bool) -> None:
        channel = self._spin_channel(var.addr, "W")

        def attempt() -> None:
            outcome: Dict[str, int] = {}

            def try_take(_old: int, _new: int) -> None:
                readers = self._words.get((var.addr, "readers"), 0)
                writer = self._words.get((var.addr, "writer"), 0)
                outcome["seen"] = channel.signals
                if write:
                    if readers == 0 and writer == 0:
                        self._set_word(var, "writer", 1)
                        outcome["granted"] = True
                    else:
                        outcome["granted"] = False
                else:
                    if writer == 0:
                        self._set_word(var, "readers", readers + 1)
                        outcome["granted"] = True
                    else:
                        outcome["granted"] = False

            def after_update() -> None:
                if outcome["granted"]:
                    callback()
                else:
                    delay = self._virtual_period(core)
                    channel.wait(self._poll_woken, delay, delay,
                                 core, var, attempt, seen=outcome["seen"])

            # The guarded field is irrelevant (identity update); try_take
            # inspects and mutates both rw words inside the critical section.
            self._guarded_update(
                core, var, "rw_probe", lambda v: v, after_update, observe=try_take
            )

        attempt()

    # ------------------------------------------------------------------
    # Introspection (tests)
    # ------------------------------------------------------------------
    def word(self, var: SyncVar, field: str) -> int:
        return self._words.get((var.addr, field), 0)

    def lock_owner(self, var: SyncVar) -> Optional[int]:
        state = self._locks.get(var.addr)
        return state.owner_core if state else None

    def destroy_var(self, var: SyncVar) -> None:
        self._locks.pop(var.addr, None)
        self._sem_initialized.pop(var.addr, None)
        for field in ("count", "gen", "sem", "credits", "readers", "writer",
                      "rw_probe"):
            self._words.pop((var.addr, field), None)
