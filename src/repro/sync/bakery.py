"""Lamport-bakery software synchronization baseline (paper Sec. 2.2.1).

When the hardware provides no atomic read-modify-write operations at all,
synchronization can still be built from plain loads and stores with
Lamport's bakery algorithm [87] — at the cost of touching ``O(N)`` memory
locations per retry for ``N`` participating cores.  The paper cites this
scaling as the reason shared-memory synchronization without rmw support is
a non-starter on NDP systems; this module implements the baseline so the
``O(N)`` wall is measurable (see ``benchmarks/bench_ablations.py``).

Model
-----

Each synchronization variable owns a bakery array (``choosing[N]`` and
``number[N]``) in its home unit's memory.  All accesses are uncacheable
(shared read-write data bypasses the L1 per the baseline architecture), so
every load/store is a round trip to the home unit's DRAM:

- *taking a ticket* costs 2 stores + ``N`` loads (read every number to pick
  max+1) + 1 store;
- *one doorway scan* costs up to ``2N`` loads (``choosing[j]`` then
  ``number[j]`` per rival); a failed scan backs off and rescans.

Ordering (who holds the lock) is tracked by ticket order, which the scans
discover; grant timing is when the winner's first *successful* scan
completes after the previous owner resets its number.

Higher-level primitives (barrier, semaphore, condition variable) follow the
textbook construction: a bakery lock guards the primitive's state word;
waiters poll the state word (one uncacheable load per poll) between
critical sections.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

from repro.sim.program import (
    BARRIER_WAIT_ACROSS_UNITS,
    BARRIER_WAIT_WITHIN_UNIT,
    COND_BROADCAST,
    COND_SIGNAL,
    COND_WAIT,
    LOCK_ACQUIRE,
    LOCK_RELEASE,
    RW_READ_ACQUIRE,
    RW_READ_RELEASE,
    RW_WRITE_ACQUIRE,
    RW_WRITE_RELEASE,
    SEM_POST,
    SEM_WAIT,
)
from repro.sim.syncif import MechanismBase, SyncVar, _no_waiter

#: bytes of one word-grain uncacheable access (header + payload).
WORD_BYTES = 16


class _BakeryLockState:
    """Logical state of one bakery lock: ticket order is FIFO."""

    __slots__ = ("next_ticket", "owner", "queue")

    def __init__(self) -> None:
        self.next_ticket = 1
        self.owner: Optional[int] = None
        self.queue: Deque[int] = deque()

    def take_ticket(self, core_id: int) -> bool:
        """Join the bakery line; returns True when the line was empty."""
        if self.owner is None and not self.queue:
            self.owner = core_id
            return True
        self.queue.append(core_id)
        return False

    def release(self, core_id: int) -> None:
        if self.owner != core_id:
            raise RuntimeError(
                f"core {core_id} released a bakery lock owned by {self.owner}"
            )
        self.owner = self.queue.popleft() if self.queue else None


class BakeryMechanism(MechanismBase):
    """Software synchronization from loads/stores only (``bakery``)."""

    name = "bakery"

    def __init__(self, system):
        super().__init__(system)
        self._locks: Dict[int, _BakeryLockState] = {}
        #: state words for barrier/semaphore/condvar (addr, field) -> value.
        self._words: Dict[Tuple[int, str], int] = {}
        self._sem_initialized: Dict[int, bool] = {}
        self.scan_rounds = 0

    # ------------------------------------------------------------------
    # Memory-access cost model
    # ------------------------------------------------------------------
    def _access(self, core, var: SyncVar, is_write: bool, now: int) -> int:
        """One uncacheable word access to ``var``'s home unit."""
        return self.system.memsys.access(
            core.unit_id, None, var.addr, is_write,
            cacheable=False, now=now, size=8, for_sync=True,
        )

    def _charge_sequence(self, core, var: SyncVar, loads: int, stores: int,
                         done: Callable[[], None]) -> None:
        """Charge ``loads`` + ``stores`` back-to-back accesses, then call
        ``done``.  One simulator event for the whole sequence (the in-order
        core cannot overlap them anyway)."""
        # Retry chains re-enter here from scheduled events, so re-establish
        # the requesting core's tenant as the attribution context.
        self.stats.active = getattr(core, "tstats", None)
        cursor = self.sim.now
        for _ in range(stores):
            cursor += max(self._access(core, var, True, cursor), 1)
        for _ in range(loads):
            cursor += max(self._access(core, var, False, cursor), 1)
        if core.unit_id == var.unit:
            self.stats.sync_messages_local += loads + stores
        else:
            self.stats.sync_messages_global += loads + stores
        self.sim.schedule_at(cursor, done)

    @property
    def _n(self) -> int:
        """Participants the bakery arrays are sized for."""
        return self.config.total_clients

    def _lock_state(self, addr: int) -> _BakeryLockState:
        state = self._locks.get(addr)
        if state is None:
            state = _BakeryLockState()
            self._locks[addr] = state
        return state

    # ------------------------------------------------------------------
    # Mechanism interface
    # ------------------------------------------------------------------
    def request(self, core, op, var, info, callback) -> None:
        self._admit(core, op, var)
        if op == LOCK_ACQUIRE:
            self._lock_acquire(core, var, callback)
        elif op == LOCK_RELEASE:
            self._lock_release(core, var, callback)
        elif op in (BARRIER_WAIT_WITHIN_UNIT, BARRIER_WAIT_ACROSS_UNITS):
            self._barrier_wait(core, var, info, callback)
        elif op == SEM_WAIT:
            self._sem_wait(core, var, info, callback)
        elif op == SEM_POST:
            self._guarded_update(core, var, "sem", lambda v: v + 1, callback)
        elif op == COND_WAIT:
            self._cond_wait(core, var, info, callback)
        elif op == COND_SIGNAL:
            self._guarded_update(core, var, "credits", lambda v: v + 1, callback)
        elif op == COND_BROADCAST:
            self._guarded_update(core, var, "gen", lambda v: v + 1, callback)
        elif op == RW_READ_ACQUIRE:
            self._rw_acquire(core, var, callback, write=False)
        elif op == RW_READ_RELEASE:
            self._guarded_update(core, var, "readers", lambda v: v - 1, callback)
        elif op == RW_WRITE_ACQUIRE:
            self._rw_acquire(core, var, callback, write=True)
        elif op == RW_WRITE_RELEASE:
            self._guarded_update(core, var, "writer", lambda _v: 0, callback)
        else:
            raise ValueError(f"unknown sync op {op!r}")

    def request_async(self, core, op, var, info) -> int:
        self.request(core, op, var, info, callback=_no_waiter)
        return self.config.async_issue_cycles

    # ------------------------------------------------------------------
    # The bakery lock itself
    # ------------------------------------------------------------------
    def _lock_acquire(self, core, var, callback) -> None:
        state = self._lock_state(var.addr)
        granted = state.take_ticket(core.core_id)
        n = self._n

        # Doorway: choosing[i]=1, read N numbers, number[i]=max+1,
        # choosing[i]=0 — 2 stores + N loads + 1 store.
        def after_doorway() -> None:
            if state.owner == core.core_id:
                # First scan still walks every rival once.
                self._charge_sequence(core, var, loads=2 * n, stores=0, done=callback)
            else:
                scan()

        def scan() -> None:
            self.scan_rounds += 1
            self.stats.extra["bakery_scans"] += 1

            def after_scan() -> None:
                if state.owner == core.core_id:
                    callback()
                else:
                    self.sim.schedule(
                        max(self.config.spin_backoff_cycles, 1), scan
                    )

            self._charge_sequence(core, var, loads=2 * n, stores=0, done=after_scan)

        del granted  # ownership is re-checked after the charged doorway
        self._charge_sequence(core, var, loads=n, stores=3, done=after_doorway)

    def _lock_release(self, core, var, callback) -> None:
        state = self._lock_state(var.addr)

        def after_store() -> None:
            state.release(core.core_id)
            callback()

        # number[i] = 0: one store.
        self._charge_sequence(core, var, loads=0, stores=1, done=after_store)

    # ------------------------------------------------------------------
    # Guarded state updates (barrier / semaphore / condvar bodies)
    # ------------------------------------------------------------------
    def _guarded_update(self, core, var, field: str,
                        fn: Callable[[int], int], callback,
                        observe: Optional[Callable[[int, int], None]] = None) -> None:
        """bakery-lock(var) { old = word; word = fn(old) } unlock; callback.

        ``observe(old, new)`` runs inside the critical section.
        """
        def in_critical_section() -> None:
            key = (var.addr, field)
            old = self._words.get(key, 0)
            new = fn(old)
            self._words[key] = new
            if observe is not None:
                observe(old, new)
            # read + write of the state word, then release.
            self._charge_sequence(core, var, loads=1, stores=1, done=release)

        def release() -> None:
            self._lock_release(core, var, callback)

        self._lock_acquire(core, var, in_critical_section)

    def _poll_until(self, core, var, field: str,
                    satisfied: Callable[[int], bool], callback) -> None:
        """Spin-load the state word until ``satisfied(value)``."""
        def poll() -> None:
            def after_load() -> None:
                if satisfied(self._words.get((var.addr, field), 0)):
                    callback()
                else:
                    self.stats.extra["bakery_polls"] += 1
                    self.sim.schedule(max(self.config.spin_backoff_cycles, 1), poll)

            self._charge_sequence(core, var, loads=1, stores=0, done=after_load)

        poll()

    # ------------------------------------------------------------------
    # Barrier / semaphore / condvar over the guarded word
    # ------------------------------------------------------------------
    def _barrier_wait(self, core, var, expected: int, callback) -> None:
        if expected < 1:
            raise ValueError("barrier needs a positive participant count")

        def on_arrival(old: int, new: int) -> None:
            if new >= expected:
                # Last arriver: reset count, bump generation (still inside
                # the critical section, so no extra lock round).
                self._words[(var.addr, "count")] = 0
                gen_key = (var.addr, "gen")
                self._words[gen_key] = self._words.get(gen_key, 0) + 1
                arrival_outcome["last"] = True
            else:
                arrival_outcome["generation"] = self._words.get((var.addr, "gen"), 0)

        def after_update() -> None:
            if arrival_outcome.get("last"):
                callback()
            else:
                my_generation = arrival_outcome["generation"]
                self._poll_until(
                    core, var, "gen", lambda g: g > my_generation, callback
                )

        arrival_outcome: Dict[str, object] = {}
        self._guarded_update(
            core, var, "count", lambda v: v + 1, after_update, observe=on_arrival
        )

    def _sem_wait(self, core, var, initial: int, callback) -> None:
        if not self._sem_initialized.get(var.addr):
            self._sem_initialized[var.addr] = True
            self._words[(var.addr, "sem")] = initial

        def attempt() -> None:
            outcome: Dict[str, bool] = {}

            def on_value(old: int, _new: int) -> None:
                outcome["granted"] = old > 0

            def after_update() -> None:
                if outcome["granted"]:
                    callback()
                else:
                    self.sim.schedule(
                        max(self.config.spin_backoff_cycles, 1), attempt
                    )

            self._guarded_update(
                core, var, "sem",
                lambda v: v - 1 if v > 0 else v,
                after_update, observe=on_value,
            )

        attempt()

    def _cond_wait(self, core, var, lock_var, callback) -> None:
        snapshot: Dict[str, int] = {}

        def on_snapshot(old: int, _new: int) -> None:
            snapshot["generation"] = self._words.get((var.addr, "gen"), 0)

        def after_snapshot() -> None:
            # Release the caller's lock, then poll for a wakeup.
            self._lock_release(core, lock_var, spin)

        def spin() -> None:
            my_generation = snapshot["generation"]

            def woken_by(credits_or_gen: int) -> bool:
                del credits_or_gen
                generation = self._words.get((var.addr, "gen"), 0)
                credits = self._words.get((var.addr, "credits"), 0)
                return generation > my_generation or credits > 0

            def consume() -> None:
                generation = self._words.get((var.addr, "gen"), 0)
                if generation > snapshot["generation"]:
                    reacquire()
                    return
                outcome: Dict[str, bool] = {}

                def on_credit(old: int, _new: int) -> None:
                    outcome["granted"] = old > 0

                def after_consume() -> None:
                    if outcome["granted"]:
                        reacquire()
                    else:
                        spin()

                self._guarded_update(
                    core, var, "credits",
                    lambda v: v - 1 if v > 0 else v,
                    after_consume, observe=on_credit,
                )

            self._poll_until(core, var, "credits", woken_by, consume)

        def reacquire() -> None:
            self._lock_acquire(core, lock_var, callback)

        # Snapshot the generation under the condvar's own bakery lock so a
        # broadcast cannot slip between snapshot and lock release unnoticed
        # (credits are counting, so signals cannot be lost either way).
        self._guarded_update(
            core, var, "gen", lambda v: v, after_snapshot, observe=on_snapshot
        )

    # ------------------------------------------------------------------
    # Reader-writer lock: readers/writer words guarded by the bakery lock
    # ------------------------------------------------------------------
    def _rw_acquire(self, core, var, callback, write: bool) -> None:
        def attempt() -> None:
            outcome: Dict[str, bool] = {}

            def try_take(_old: int, _new: int) -> None:
                readers = self._words.get((var.addr, "readers"), 0)
                writer = self._words.get((var.addr, "writer"), 0)
                if write:
                    if readers == 0 and writer == 0:
                        self._words[(var.addr, "writer")] = 1
                        outcome["granted"] = True
                    else:
                        outcome["granted"] = False
                else:
                    if writer == 0:
                        self._words[(var.addr, "readers")] = readers + 1
                        outcome["granted"] = True
                    else:
                        outcome["granted"] = False

            def after_update() -> None:
                if outcome["granted"]:
                    callback()
                else:
                    self.sim.schedule(
                        max(self.config.spin_backoff_cycles, 1), attempt
                    )

            # The guarded field is irrelevant (identity update); try_take
            # inspects and mutates both rw words inside the critical section.
            self._guarded_update(
                core, var, "rw_probe", lambda v: v, after_update, observe=try_take
            )

        attempt()

    # ------------------------------------------------------------------
    # Introspection (tests)
    # ------------------------------------------------------------------
    def word(self, var: SyncVar, field: str) -> int:
        return self._words.get((var.addr, field), 0)

    def lock_owner(self, var: SyncVar) -> Optional[int]:
        state = self._locks.get(var.addr)
        return state.owner if state else None

    def destroy_var(self, var: SyncVar) -> None:
        self._locks.pop(var.addr, None)
        self._sem_initialized.pop(var.addr, None)
        for field in ("count", "gen", "sem", "credits", "readers", "writer",
                      "rw_probe"):
            self._words.pop((var.addr, field), None)
