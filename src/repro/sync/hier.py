"""Hier baseline (Sec. 5): one server core per NDP unit.

A hierarchical message-passing scheme in the spirit of the tree barrier of
Gao et al. [PACT'15] and the hierarchical lock of pLock [ASPLOS'19]: one NDP
core per unit acts as a local server, aggregating its unit's requests and
coordinating with the variable's home-unit server, exactly like SynCron's
SEs — but each server is *software on a core*: per-message handler
instructions plus loads/stores to waiting lists and synchronization
variables through its L1 and memory, instead of SynCron's dedicated SPU and
1-cycle ST.
"""

from __future__ import annotations

from repro.core.engine import SynCronMechanism
from repro.sync.server import ServerEngine


class HierMechanism(SynCronMechanism):
    name = "hier"

    def __init__(self, system):
        super().__init__(system)
        self.ses = [
            ServerEngine(self, se_id=u, unit=u)
            for u in range(self.config.num_units)
        ]
