"""Synchronization mechanisms evaluated against SynCron.

- :class:`~repro.sync.central.CentralMechanism` — one server core system-wide.
- :class:`~repro.sync.hier.HierMechanism` — one server core per NDP unit.
- :class:`~repro.sync.ideal.IdealMechanism` — zero-overhead synchronization.
- :class:`~repro.sync.flat.FlatSynCronMechanism` — SynCron without hierarchy.
- :mod:`~repro.sync.overflow_alt` — MiSAR-style overflow variants (Fig. 23).
- :class:`~repro.sync.logic.SyncLogic` — timing-free reference semantics.
"""

from repro.sync.central import CentralMechanism
from repro.sync.flat import FlatSynCronMechanism
from repro.sync.hier import HierMechanism
from repro.sync.ideal import IdealMechanism
from repro.sync.logic import LogicError, SyncLogic
from repro.sync.overflow_alt import (
    SynCronCentralOverflowMechanism,
    SynCronDistribOverflowMechanism,
)
from repro.sync.server import ServerEngine

__all__ = [
    "CentralMechanism",
    "FlatSynCronMechanism",
    "HierMechanism",
    "IdealMechanism",
    "LogicError",
    "ServerEngine",
    "SynCronCentralOverflowMechanism",
    "SynCronDistribOverflowMechanism",
    "SyncLogic",
]
