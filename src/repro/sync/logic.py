"""Timing-free synchronization semantics.

:class:`SyncLogic` implements the *logical* behaviour of locks, barriers,
semaphores and condition variables with no messages and no latency: apply an
operation, get back the set of cores that may now proceed.  It is the
semantic reference for every mechanism (the property tests check SynCron's
distributed protocol against it) and the engine behind the Ideal baseline
(zero-overhead synchronization, Sec. 5 "Comparison Points").
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.sim.program import (
    BARRIER_WAIT_ACROSS_UNITS,
    BARRIER_WAIT_WITHIN_UNIT,
    COND_BROADCAST,
    COND_SIGNAL,
    COND_WAIT,
    LOCK_ACQUIRE,
    LOCK_RELEASE,
    RW_READ_ACQUIRE,
    RW_READ_RELEASE,
    RW_WRITE_ACQUIRE,
    RW_WRITE_RELEASE,
    SEM_POST,
    SEM_WAIT,
)
from repro.sim.syncif import SyncUsageError


class LogicError(SyncUsageError):
    """An operation a correct program could not have issued."""


@dataclass
class _VarState:
    kind: Optional[str] = None
    # lock
    owner: Optional[int] = None
    lock_queue: Deque[int] = field(default_factory=deque)
    # barrier
    arrived: int = 0
    barrier_waiters: List[int] = field(default_factory=list)
    # semaphore
    sem_value: int = 0
    sem_initialized: bool = False
    sem_queue: Deque[int] = field(default_factory=deque)
    # condition variable: (core, lock_var) pairs
    cond_queue: Deque[Tuple[int, object]] = field(default_factory=deque)
    # reader-writer lock
    readers: int = 0
    writer: Optional[int] = None
    rw_queue: Deque[Tuple[str, int]] = field(default_factory=deque)


class SyncLogic:
    """Reference semantics for all four primitives."""

    def __init__(self) -> None:
        self._vars: Dict[int, _VarState] = {}

    def _state(self, var, kind: str) -> _VarState:
        st = self._vars.get(var.addr)
        if st is None:
            st = _VarState(kind=kind)
            self._vars[var.addr] = st
        elif st.kind != kind:
            raise LogicError(
                f"variable {var.name} used as {st.kind} and now as {kind}"
            )
        return st

    # ------------------------------------------------------------------
    def apply(self, core_id: int, op: str, var, info=0) -> List[int]:
        """Apply one operation; returns the cores that may now proceed.

        For acquire-type operations the requesting core appears in the
        result iff it was granted immediately.
        """
        if op == LOCK_ACQUIRE:
            return self._lock_acquire(core_id, var)
        if op == LOCK_RELEASE:
            return self._lock_release(core_id, var)
        if op in (BARRIER_WAIT_WITHIN_UNIT, BARRIER_WAIT_ACROSS_UNITS):
            return self._barrier_wait(core_id, var, info)
        if op == SEM_WAIT:
            return self._sem_wait(core_id, var, info)
        if op == SEM_POST:
            return self._sem_post(core_id, var)
        if op == COND_WAIT:
            return self._cond_wait(core_id, var, info)
        if op == COND_SIGNAL:
            return self._cond_signal(var, wake_all=False)
        if op == COND_BROADCAST:
            return self._cond_signal(var, wake_all=True)
        if op == RW_READ_ACQUIRE:
            return self._rw_read_acquire(core_id, var)
        if op == RW_READ_RELEASE:
            return self._rw_read_release(core_id, var)
        if op == RW_WRITE_ACQUIRE:
            return self._rw_write_acquire(core_id, var)
        if op == RW_WRITE_RELEASE:
            return self._rw_write_release(core_id, var)
        raise LogicError(f"unknown operation {op!r}")

    # ------------------------------------------------------------------
    def _lock_acquire(self, core_id: int, var) -> List[int]:
        st = self._state(var, "lock")
        if st.owner is None:
            st.owner = core_id
            return [core_id]
        st.lock_queue.append(core_id)
        return []

    def _lock_release(self, core_id: int, var) -> List[int]:
        st = self._state(var, "lock")
        if st.owner != core_id:
            raise LogicError(
                f"core {core_id} released lock {var.name} owned by {st.owner}"
            )
        if st.lock_queue:
            st.owner = st.lock_queue.popleft()
            return [st.owner]
        st.owner = None
        return []

    def _barrier_wait(self, core_id: int, var, expected: int) -> List[int]:
        if expected < 1:
            raise LogicError("barrier needs a positive participant count")
        st = self._state(var, "barrier")
        st.arrived += 1
        st.barrier_waiters.append(core_id)
        if st.arrived >= expected:
            woken = list(st.barrier_waiters)
            st.arrived = 0
            st.barrier_waiters.clear()
            return woken
        return []

    def _sem_wait(self, core_id: int, var, initial: int) -> List[int]:
        st = self._state(var, "semaphore")
        if not st.sem_initialized:
            st.sem_value = initial
            st.sem_initialized = True
        if st.sem_value > 0:
            st.sem_value -= 1
            return [core_id]
        st.sem_queue.append(core_id)
        return []

    def _sem_post(self, core_id: int, var) -> List[int]:
        st = self._state(var, "semaphore")
        if st.sem_queue:
            return [st.sem_queue.popleft()]
        st.sem_value += 1
        return []

    def _cond_wait(self, core_id: int, var, lock_var) -> List[int]:
        st = self._state(var, "condvar")
        st.cond_queue.append((core_id, lock_var))
        # pthread semantics: atomically release the associated lock.
        return self._lock_release(core_id, lock_var)

    def _cond_signal(self, var, wake_all: bool) -> List[int]:
        st = self._vars.get(var.addr)
        if st is None or st.kind != "condvar" or not st.cond_queue:
            return []  # lost signal (POSIX)
        woken: List[int] = []
        while st.cond_queue:
            core_id, lock_var = st.cond_queue.popleft()
            # The woken waiter must re-acquire the lock before proceeding.
            woken.extend(self._lock_acquire(core_id, lock_var))
            if not wake_all:
                break
        return woken

    # ------------------------------------------------------------------
    # Reader-writer lock (fair FIFO: a queued writer blocks later readers)
    # ------------------------------------------------------------------
    def _rw_read_acquire(self, core_id: int, var) -> List[int]:
        st = self._state(var, "rwlock")
        writer_waiting = any(kind == "w" for kind, _ in st.rw_queue)
        if st.writer is None and not writer_waiting:
            st.readers += 1
            return [core_id]
        st.rw_queue.append(("r", core_id))
        return []

    def _rw_read_release(self, core_id: int, var) -> List[int]:
        st = self._state(var, "rwlock")
        if st.readers <= 0:
            raise LogicError(
                f"core {core_id} read-released {var.name} with no readers"
            )
        st.readers -= 1
        return self._rw_wake(st)

    def _rw_write_acquire(self, core_id: int, var) -> List[int]:
        st = self._state(var, "rwlock")
        if st.writer is None and st.readers == 0 and not st.rw_queue:
            st.writer = core_id
            return [core_id]
        st.rw_queue.append(("w", core_id))
        return []

    def _rw_write_release(self, core_id: int, var) -> List[int]:
        st = self._state(var, "rwlock")
        if st.writer != core_id:
            raise LogicError(
                f"core {core_id} write-released {var.name} owned by {st.writer}"
            )
        st.writer = None
        return self._rw_wake(st)

    def _rw_wake(self, st: _VarState) -> List[int]:
        woken: List[int] = []
        if st.writer is None and st.rw_queue:
            if st.rw_queue[0][0] == "w":
                if st.readers == 0:
                    _kind, core = st.rw_queue.popleft()
                    st.writer = core
                    woken.append(core)
            else:
                while st.rw_queue and st.rw_queue[0][0] == "r":
                    _kind, core = st.rw_queue.popleft()
                    st.readers += 1
                    woken.append(core)
        return woken

    # ------------------------------------------------------------------
    # Introspection (used by tests)
    # ------------------------------------------------------------------
    def lock_owner(self, var) -> Optional[int]:
        st = self._vars.get(var.addr)
        return st.owner if st else None

    def sem_value(self, var) -> int:
        st = self._vars.get(var.addr)
        return st.sem_value if st else 0

    def rw_readers(self, var) -> int:
        st = self._vars.get(var.addr)
        return st.readers if st else 0

    def rw_writer(self, var) -> Optional[int]:
        st = self._vars.get(var.addr)
        return st.writer if st else None

    def waiters(self, var) -> int:
        st = self._vars.get(var.addr)
        if st is None:
            return 0
        return (
            len(st.lock_queue)
            + len(st.barrier_waiters)
            + len(st.sem_queue)
            + len(st.cond_queue)
            + len(st.rw_queue)
        )
