"""Server-core engine: an NDP core acting as a synchronization server.

The Central and Hier baselines (Sec. 5 "Comparison Points") dedicate NDP
*cores* to coordinate synchronization: clients send hardware messages, the
server core runs a software handler that updates waiting lists and
synchronization variables through its own memory hierarchy (private L1,
then DRAM).

We model a server core by reusing the SynCron protocol engine (the message
semantics are the same — that is the paper's point of comparison) with a
different cost model:

- per-message service time is the software handler's instruction count
  (``config.server_handler_instructions`` at 1 IPC) instead of the SE's
  12 SE-cycles;
- every handled message additionally performs
  ``config.server_handler_accesses`` loads/stores to the synchronization
  state through the server's private L1 (missing to DRAM), instead of
  hitting the 1-cycle ST;
- the table is effectively unbounded (state lives in cacheable memory), so
  the ST-overflow machinery never triggers.

For state the server does not own (a remote variable handled by the Central
server, or a local server's private bookkeeping for a remote variable), the
accessed address determines whether the L1 miss crosses the inter-unit link.
"""

from __future__ import annotations

from typing import Dict

from repro.core.engine import SyncEngine
from repro.sim.cache import L1Cache


class ServerEngine(SyncEngine):
    """A software synchronization server running on one NDP core."""

    #: effectively unlimited state capacity (regular memory, not an ST).
    UNBOUNDED_ENTRIES = 1 << 30

    def __init__(self, mech, se_id: int, unit: int):
        super().__init__(mech, se_id)
        self.unit = unit
        config = mech.config
        self.st.capacity = self.UNBOUNDED_ENTRIES
        self.service_cycles = config.server_handler_instructions
        self.l1 = L1Cache(
            config.l1_size_bytes,
            config.l1_ways,
            config.cache_line_bytes,
            mech.stats,
            hit_cycles=config.l1_hit_cycles,
        )
        self._shadow: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def dispatch(self, msg) -> None:
        self._charge_state_access(msg.var)
        super().dispatch(msg)

    def _state_address(self, var) -> int:
        """Where this server keeps its bookkeeping for ``var``.

        A server keeps the variable itself when it is the coordinator for
        it; a local (non-master) Hier server keeps a private shadow copy in
        its own unit's memory.
        """
        if self.is_master(var):
            return var.addr
        shadow = self._shadow.get(var.addr)
        if shadow is None:
            shadow = self.mech.system.addrmap.alloc(
                self.unit, self.config.cache_line_bytes,
                align=self.config.cache_line_bytes,
            )
            self._shadow[var.addr] = shadow
        return shadow

    def _charge_state_access(self, var) -> None:
        """The software handler's loads/stores to synchronization state."""
        addr = self._state_address(var)
        accesses = self.config.server_handler_accesses
        for i in range(accesses):
            now = self.sim.now + self._extra
            self._extra += self.mech.memsys.access(
                self.unit,
                self.l1,
                addr,
                is_write=(i == accesses - 1),
                cacheable=True,
                now=now,
                for_sync=True,
            )
