"""The Ideal baseline: zero-overhead synchronization (Sec. 5).

Synchronization operations cost no messages, no service time and no energy;
mutual exclusion, barrier and semaphore semantics are still enforced (via
:class:`~repro.sync.logic.SyncLogic`), so Ideal reflects exactly the main
kernel's own computation and memory behaviour.  The paper uses it as the
upper bound all mechanisms are measured against.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.sim.syncif import MechanismBase
from repro.sync.logic import SyncLogic


class IdealMechanism(MechanismBase):
    name = "ideal"

    def __init__(self, system):
        super().__init__(system)
        self.logic = SyncLogic()
        self._pending: Dict[int, Callable[[], None]] = {}

    # ------------------------------------------------------------------
    def request(self, core, op, var, info, callback) -> None:
        self._admit(core, op, var)
        self._pending[core.core_id] = callback
        self._wake_all(self.logic.apply(core.core_id, op, var, info))

    def request_async(self, core, op, var, info) -> int:
        self._admit(core, op, var)
        self._wake_all(self.logic.apply(core.core_id, op, var, info))
        return self.config.async_issue_cycles

    def _wake_all(self, core_ids) -> None:
        for core_id in core_ids:
            callback = self._pending.pop(core_id, None)
            if callback is not None:
                # Zero-latency grant; schedule(0) keeps event ordering sane.
                self.sim.schedule(0, callback)

    # ------------------------------------------------------------------
    def rmw(self, core, addr, op, operand, callback) -> None:
        """Zero-overhead atomic rmw: atomicity for free, like all of Ideal."""
        from repro.core.rmw import RMW_OPS

        fn = RMW_OPS.get(op)
        if fn is None:
            raise ValueError(f"unknown rmw op {op!r}")
        values = getattr(self, "_rmw_values", None)
        if values is None:
            values = self._rmw_values = {}
        old = values.get(addr, 0)
        values[addr] = fn(old, operand)
        self.stats.extra["rmw_ops"] += 1
        self.sim.schedule(0, callback, old)

    def rmw_value(self, addr: int) -> int:
        return getattr(self, "_rmw_values", {}).get(addr, 0)
