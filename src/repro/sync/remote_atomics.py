"""Remote-atomics spin-wait baseline (paper Sec. 2.2.1).

GPUs, MPPs, and the HMC-based NDP design of Gao et al. [43] support atomic
read-modify-write operations in hardware units at the memory controllers
(*remote atomics*).  Synchronization primitives built on them use a
spin-wait scheme: every retry is another rmw message to the variable's
*fixed* home location.  The paper argues this creates high global traffic
and hotspots in NDP systems — this module implements that baseline so the
claim can be measured (see ``benchmarks/bench_ablations.py``).

Implementation sketch (one honest spin algorithm per primitive):

- **Lock** — test-and-set: ``swap(1)``; acquired iff the old value was 0.
  Release is ``swap(0)``.  Failed attempts retry after a backoff.
- **Barrier** — sense-reversing counter packed with a generation word:
  ``packed = generation << 32 | count``.  Arrival is ``fetch_add(1)``; the
  last arriver's second ``fetch_add((1 << 32) - expected)`` resets the count
  and bumps the generation in one atomic.  Everyone else spin-loads until
  the generation advances.
- **Semaphore** — load + compare-and-swap loop decrementing a positive
  value (two messages per attempt under contention).
- **Condition variable** — a credits/generation word
  (``packed = generation << 32 | credits``): ``signal`` is
  ``fetch_add(1)`` (one credit, wakes one waiter), ``broadcast`` is
  ``fetch_add(1 << 32)`` (generation bump, wakes the current waiters).
  A waiter snapshots the generation, releases the associated lock, spins
  until the generation advances or it CAS-consumes a credit, then
  re-acquires the lock with the TAS loop.

Semantic notes (documented differences from the POSIX reference): signals
posted while nobody waits persist as credits (counting semantics) instead
of being lost — the standard behaviour of credit-based spin condvars.
Programs that signal under the lock with a predicate (all our workloads)
observe identical outcomes.

Every atomic visit and every spin-load travels to the home unit's
:class:`AtomicUnit` (crossbar, inter-unit link when remote, one DRAM bank
access, ALU cycle) — exactly the traffic pattern the paper's Sec. 2.2.1
criticizes.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.sim.program import (
    BARRIER_WAIT_ACROSS_UNITS,
    BARRIER_WAIT_WITHIN_UNIT,
    COND_BROADCAST,
    COND_SIGNAL,
    COND_WAIT,
    LOCK_ACQUIRE,
    LOCK_RELEASE,
    RW_READ_ACQUIRE,
    RW_READ_RELEASE,
    RW_WRITE_ACQUIRE,
    RW_WRITE_RELEASE,
    SEM_POST,
    SEM_WAIT,
)
from repro.sim.stats import charge_elided_transfer
from repro.sim.syncif import MechanismBase, SpinWaitMixin, SyncVar, _no_waiter

#: bytes of an rmw request / response message (address + opcode + operand).
RMW_REQUEST_BYTES = 18
RMW_RESPONSE_BYTES = 10

#: cycles the atomic unit's ALU adds on top of the DRAM bank access.
ALU_CYCLES = 1

#: generation field shift for the packed barrier / condvar words.
GEN_SHIFT = 32
COUNT_MASK = (1 << GEN_SHIFT) - 1

#: writer bit of the reader-writer lock word (low bits count readers).
WRITER_BIT = 1 << 62


def pack(generation: int, count: int) -> int:
    """Pack a (generation, count) pair into one 64-bit word."""
    if count < 0 or count > COUNT_MASK:
        raise ValueError(f"count {count} does not fit the packed word")
    return (generation << GEN_SHIFT) | count


def unpack(word: int) -> Tuple[int, int]:
    """Split a packed word into (generation, count)."""
    return word >> GEN_SHIFT, word & COUNT_MASK


class AtomicUnit:
    """The rmw unit at one NDP unit's memory controller.

    A single serially-reused resource: each visit performs one DRAM bank
    access (the atomic's read-modify-write at the controller) plus an ALU
    cycle.  Visits are serialized with a reservation cursor; queueing delay
    emerges under contention — the "hotspot" effect of Sec. 2.2.1.
    """

    def __init__(self, mech: "RemoteAtomicsMechanism", unit_id: int):
        self.mech = mech
        self.unit_id = unit_id
        self._next_free = 0
        self.visits = 0

    def visit(self, addr: int, is_write: bool, arrival: int) -> Tuple[int, int]:
        """Reserve the unit; returns ``(start, completion)`` times."""
        start = max(arrival, self._next_free)
        dram = self.mech.system.drams[self.unit_id]
        service = dram.access(addr, is_write=is_write, now=start) + ALU_CYCLES
        self._next_free = start + service
        self.visits += 1
        stats = self.mech.stats
        stats.sync_memory_accesses += 1
        tenant = stats.active
        if tenant is not None:
            tenant.sync_memory_accesses += 1
        return start, start + service


class RemoteAtomicsMechanism(SpinWaitMixin, MechanismBase):
    """Spin-wait synchronization over remote atomic units (``rmw_spin``).

    Waiting cores park on a per-``(addr, field)`` wait-channel instead of
    scheduling one event per poll; any rmw that actually changes the field
    signals the channel, and the kernel wakes each waiter at the exact
    cycle its next backoff-spaced poll would have landed.  The woken core
    issues one real rmw attempt (full traffic, hotspot queueing at the
    home :class:`AtomicUnit`); the elided polls in between are charged
    analytically by :meth:`_charge_elided_polls`.
    """

    name = "rmw_spin"

    def __init__(self, system):
        super().__init__(system)
        self.atomic_units = [
            AtomicUnit(self, u) for u in range(self.config.num_units)
        ]
        #: word values held at the controllers, keyed by (addr, field).
        self._fields: Dict[Tuple[int, str], int] = {}
        self._sem_initialized: Dict[int, bool] = {}
        #: per-core duration of the most recent rmw round trip — the
        #: physical length of one poll, folded into the virtual period.
        self._rtt: Dict[int, int] = {}
        self.spin_retries = 0
        self._init_spin_channels()

    # ------------------------------------------------------------------
    # Low-level: one rmw (or pure load) round trip to the home unit
    # ------------------------------------------------------------------
    def _rmw(
        self,
        core,
        var: SyncVar,
        field: str,
        fn: Optional[Callable[[int], int]],
        callback: Callable[[int], None],
    ) -> None:
        """Visit ``var``'s atomic unit; ``callback(old_value)`` fires when
        the response reaches the core.  ``fn=None`` is a pure load."""
        # Spin retries re-enter here from scheduled events, so re-establish
        # the requesting core's tenant as the attribution context.
        self.stats.active = getattr(core, "tstats", None)
        home = var.unit
        now = self.sim.now
        if core.unit_id == home:
            self.stats.sync_messages_local += 2  # request + response
        else:
            self.stats.sync_messages_global += 2
        latency = self.interconnect.transfer_latency(
            core.unit_id, home, now, RMW_REQUEST_BYTES
        )
        _, done = self.atomic_units[home].visit(
            var.addr, is_write=fn is not None, arrival=now + latency
        )
        key = (var.addr, field)
        old = self._fields.get(key, 0)
        if fn is not None:
            new = fn(old)
            if new != old:
                self._fields[key] = new
                # The field's observable value changed at this instant in
                # the legacy polling model too (words mutate at issue
                # time); wake anyone spin-waiting on it.
                self._spin_signal(var.addr, field)
        back = self.interconnect.transfer_latency(
            home, core.unit_id, done, RMW_RESPONSE_BYTES
        )
        self._rtt[core.core_id] = (done + back) - now
        self.sim.schedule_at(done + back, callback, old)

    def _retry(self, core, var: SyncVar, channel, attempt: Callable[[], None],
               seen: int) -> None:
        """Park until ``channel`` is signalled, then re-attempt.

        The virtual polls keep the legacy spin cadence: a retry starts one
        backoff after the previous attempt's *response arrived*, and its
        own decision point lands a full round trip later — so the poll
        period is backoff + the core's measured rmw round trip (pacing at
        the bare backoff would count polls faster than the core could
        physically issue them), with a small per-core phase offset
        breaking lockstep so no core can lose every race against an
        identically-timed rival forever.  ``seen`` is the caller's
        ``channel.signals`` snapshot from the attempt's issue frame (the
        lost-wakeup guard).
        """
        self.spin_retries += 1
        self.stats.extra["spin_retries"] += 1
        delay = (self.config.spin_backoff_cycles + (core.core_id % 7)
                 + self._rtt.get(core.core_id, 0))
        if delay < 1:
            delay = 1
        channel.wait(self._woken, delay, delay, core, var, attempt, seen=seen)

    def _woken(self, polls: int, core, var: SyncVar,
               attempt: Callable[[], None]) -> None:
        """Account the elided polls, then run one real attempt."""
        if polls:
            self.spin_retries += polls
            self.stats.extra["spin_retries"] += polls
            self._charge_elided_polls(core, var, polls)
        attempt()

    def _charge_elided_polls(self, core, var: SyncVar, count: int) -> None:
        """Analytic traffic/energy of ``count`` elided spin polls.

        Each virtual poll is what one legacy retry issued: an rmw request
        and response to the home unit plus one controller-side DRAM read
        (charged as a row hit — spin polls hammer one open row).  Counters
        and energy match the legacy charge; reservation state (banks,
        links, crossbar load) is deliberately untouched — see the model
        notes in EXPERIMENTS.md.
        """
        stats = self.stats
        stats.active = getattr(core, "tstats", None)
        tenant = stats.active
        home = var.unit
        local = core.unit_id == home
        if local:
            stats.sync_messages_local += 2 * count
            link_hops = 0
        else:
            stats.sync_messages_global += 2 * count
            link_hops = self.interconnect.remote_hops(core.unit_id, home)
        local_hops = self.config.local_hops
        charge_elided_transfer(stats, RMW_REQUEST_BYTES, count, local,
                               local_hops, link_hops)
        charge_elided_transfer(stats, RMW_RESPONSE_BYTES, count, local,
                               local_hops, link_hops)
        stats.dram_reads += count
        stats.dram_row_hits += count
        stats.sync_memory_accesses += count
        if tenant is not None:
            tenant.sync_memory_accesses += count

    # ------------------------------------------------------------------
    # Mechanism interface
    # ------------------------------------------------------------------
    def request(self, core, op, var, info, callback) -> None:
        self._admit(core, op, var)
        if op == LOCK_ACQUIRE:
            self._lock_acquire(core, var, callback)
        elif op == LOCK_RELEASE:
            self._lock_release(core, var, callback)
        elif op in (BARRIER_WAIT_WITHIN_UNIT, BARRIER_WAIT_ACROSS_UNITS):
            self._barrier_wait(core, var, info, callback)
        elif op == SEM_WAIT:
            self._sem_wait(core, var, info, callback)
        elif op == SEM_POST:
            self._sem_post(core, var, callback)
        elif op == COND_WAIT:
            self._cond_wait(core, var, info, callback)
        elif op == COND_SIGNAL:
            self._cond_signal(core, var, callback)
        elif op == COND_BROADCAST:
            self._cond_broadcast(core, var, callback)
        elif op == RW_READ_ACQUIRE:
            self._rw_read_acquire(core, var, callback)
        elif op == RW_READ_RELEASE:
            self._rmw(core, var, "rw", lambda w: w - 1, lambda _old: callback())
        elif op == RW_WRITE_ACQUIRE:
            self._rw_write_acquire(core, var, callback)
        elif op == RW_WRITE_RELEASE:
            self._rmw(
                core, var, "rw", lambda w: w & ~WRITER_BIT,
                lambda _old: callback(),
            )
        else:
            raise ValueError(f"unknown sync op {op!r}")

    def request_async(self, core, op, var, info) -> int:
        # Releases are fire-and-forget: the rmw travels, nobody waits.
        self.request(core, op, var, info, callback=_no_waiter)
        return self.config.async_issue_cycles

    # ------------------------------------------------------------------
    # Lock: test-and-set spin
    # ------------------------------------------------------------------
    def _lock_acquire(self, core, var, callback) -> None:
        channel = self._spin_channel(var.addr, "lock")
        seen = 0

        def attempt() -> None:
            nonlocal seen
            self._rmw(core, var, "lock", lambda _old: 1, on_old)
            # Snapshot after the issue frame's own mutations/signals so a
            # release landing before the response wakes us (seen guard),
            # but our own TAS write cannot.
            seen = channel.signals

        def on_old(old: int) -> None:
            if old == 0:
                callback()
            else:
                self._retry(core, var, channel, attempt, seen)

        attempt()

    def _lock_release(self, core, var, callback) -> None:
        self._rmw(core, var, "lock", lambda _old: 0, lambda _old: callback())

    # ------------------------------------------------------------------
    # Barrier: packed generation/count word
    # ------------------------------------------------------------------
    def _barrier_wait(self, core, var, expected: int, callback) -> None:
        if expected < 1:
            raise ValueError("barrier needs a positive participant count")

        def on_arrive(old: int) -> None:
            generation, count = unpack(old)
            if count + 1 >= expected:
                # Last arriver: reset the count, bump the generation.
                self._rmw(
                    core, var, "bar",
                    lambda w: w + (1 << GEN_SHIFT) - expected,
                    lambda _old: callback(),
                )
            else:
                spin(generation)

        def spin(my_generation: int) -> None:
            channel = self._spin_channel(var.addr, "bar")
            seen = 0

            def poll() -> None:
                nonlocal seen
                self._rmw(core, var, "bar", None, on_poll)
                seen = channel.signals

            def on_poll(word: int) -> None:
                generation, _count = unpack(word)
                if generation > my_generation:
                    callback()
                else:
                    self._retry(core, var, channel, poll, seen)

            poll()

        self._rmw(core, var, "bar", lambda w: w + 1, on_arrive)

    # ------------------------------------------------------------------
    # Semaphore: load + CAS loop
    # ------------------------------------------------------------------
    def _sem_wait(self, core, var, initial: int, callback) -> None:
        if not self._sem_initialized.get(var.addr):
            self._sem_initialized[var.addr] = True
            self._fields[(var.addr, "sem")] = initial

        channel = self._spin_channel(var.addr, "sem")
        seen = 0

        def attempt() -> None:
            nonlocal seen
            self._rmw(core, var, "sem", None, on_load)
            seen = channel.signals

        def on_load(value: int) -> None:
            if value <= 0:
                self._retry(core, var, channel, attempt, seen)
                return

            def on_cas(old: int) -> None:
                if old == value:
                    callback()
                else:
                    self._retry(core, var, channel, attempt, seen)

            # CAS(value -> value - 1); succeeds iff nobody raced us.  The
            # retry guard stays at the *load's* issue-frame snapshot: a
            # failed CAS means the word changed since that observation, and
            # any post landing in the load->CAS window must trip the guard
            # (re-snapshotting here once swallowed a final post and parked
            # the waiter forever beside a positive semaphore).
            self._rmw(
                core, var, "sem",
                lambda cur: cur - 1 if cur == value else cur,
                on_cas,
            )

        attempt()

    def _sem_post(self, core, var, callback) -> None:
        self._rmw(core, var, "sem", lambda v: v + 1, lambda _old: callback())

    # ------------------------------------------------------------------
    # Condition variable: credits + generation word, then lock re-acquire
    # ------------------------------------------------------------------
    def _cond_wait(self, core, var, lock_var, callback) -> None:
        def on_snapshot(word: int) -> None:
            my_generation, _credits = unpack(word)
            # Atomically-enough: release the lock, then start polling.  A
            # signal between snapshot and release is still observed because
            # credits are counting, not transient.
            self._rmw(
                core, lock_var, "lock", lambda _old: 0,
                lambda _old: spin(my_generation),
            )

        def spin(my_generation: int) -> None:
            channel = self._spin_channel(var.addr, "cond")
            seen = 0

            def poll() -> None:
                nonlocal seen
                self._rmw(core, var, "cond", None, on_poll)
                seen = channel.signals

            def on_poll(word: int) -> None:
                generation, credits = unpack(word)
                if generation > my_generation:
                    reacquire()
                elif credits > 0:
                    def on_cas(old: int) -> None:
                        if old == word:
                            reacquire()
                        else:
                            self._retry(core, var, channel, poll, seen)

                    # CAS-consume one credit.  As with the semaphore, the
                    # retry guard keeps the poll's issue-frame snapshot so a
                    # signal landing in the poll->CAS window wakes the loser
                    # immediately instead of being silently absorbed.
                    self._rmw(
                        core, var, "cond",
                        lambda cur: cur - 1 if cur == word else cur,
                        on_cas,
                    )
                else:
                    self._retry(core, var, channel, poll, seen)

            poll()

        def reacquire() -> None:
            self._lock_acquire(core, lock_var, callback)

        self._rmw(core, var, "cond", None, on_snapshot)

    def _cond_signal(self, core, var, callback) -> None:
        self._rmw(core, var, "cond", lambda w: w + 1, lambda _old: callback())

    def _cond_broadcast(self, core, var, callback) -> None:
        self._rmw(
            core, var, "cond", lambda w: w + (1 << GEN_SHIFT),
            lambda _old: callback(),
        )

    # ------------------------------------------------------------------
    # Reader-writer lock: writer bit + reader count in one word
    # ------------------------------------------------------------------
    # Reader-preference spin scheme (the natural remote-atomics
    # construction): readers fetch_add(1) and back off when the writer bit
    # was set; writers CAS 0 -> WRITER_BIT.  Unlike SynCron's fair FIFO,
    # writers can starve under a steady reader stream — one of the
    # qualitative deficiencies of spin-based synchronization the paper's
    # Table 4 alludes to.

    def _rw_read_acquire(self, core, var, callback) -> None:
        channel = self._spin_channel(var.addr, "rw")
        seen = 0

        def attempt() -> None:
            nonlocal seen
            self._rmw(core, var, "rw", lambda w: w + 1, on_old)
            seen = channel.signals

        def on_old(old: int) -> None:
            if old & WRITER_BIT:
                # Writer active: undo the optimistic increment and retry.
                # The retry decision is based on ``old``, observed at the
                # increment's issue frame — so the seen baseline is the
                # snapshot taken there (it already covers our own increment
                # signal), plus one for the undo below, whose decrement of a
                # positive count always changes the word and signals.  Any
                # other signal between the increment and the park — e.g. a
                # writer releasing while our response was in flight — then
                # trips the guard and wakes us immediately.
                expect = seen + 1
                self._rmw(
                    core, var, "rw", lambda w: w - 1,
                    lambda _old: self._retry(core, var, channel, attempt, expect),
                )
            else:
                callback()

        attempt()

    def _rw_write_acquire(self, core, var, callback) -> None:
        channel = self._spin_channel(var.addr, "rw")
        seen = 0

        def attempt() -> None:
            nonlocal seen
            self._rmw(
                core, var, "rw",
                lambda w: WRITER_BIT if w == 0 else w,
                on_old,
            )
            seen = channel.signals

        def on_old(old: int) -> None:
            if old == 0:
                callback()
            else:
                self._retry(core, var, channel, attempt, seen)

        attempt()

    # ------------------------------------------------------------------
    # User-level atomic rmw (Sec. 4.4.1): this baseline's native operation
    # ------------------------------------------------------------------
    def rmw(self, core, addr: int, op: str, operand: int, callback) -> None:
        from repro.core.rmw import RMW_OPS

        fn = RMW_OPS.get(op)
        if fn is None:
            raise ValueError(f"unknown rmw op {op!r}")
        home = self.system.addrmap.unit_of(addr)
        now = self.sim.now
        if core.unit_id == home:
            self.stats.sync_messages_local += 2
        else:
            self.stats.sync_messages_global += 2
        self.stats.extra["rmw_ops"] += 1
        latency = self.interconnect.transfer_latency(
            core.unit_id, home, now, RMW_REQUEST_BYTES
        )
        _, done = self.atomic_units[home].visit(
            addr, is_write=True, arrival=now + latency
        )
        key = (addr, "user")
        old = self._fields.get(key, 0)
        self._fields[key] = fn(old, operand)
        back = self.interconnect.transfer_latency(
            home, core.unit_id, done, RMW_RESPONSE_BYTES
        )
        self.sim.schedule_at(done + back, callback, old)

    def rmw_value(self, addr: int) -> int:
        return self._fields.get((addr, "user"), 0)

    # ------------------------------------------------------------------
    # Introspection (tests)
    # ------------------------------------------------------------------
    def field_value(self, var: SyncVar, field: str) -> int:
        return self._fields.get((var.addr, field), 0)

    def destroy_var(self, var: SyncVar) -> None:
        for field in ("lock", "bar", "sem", "cond", "rw"):
            self._fields.pop((var.addr, field), None)
        self._sem_initialized.pop(var.addr, None)
