"""SynCron's flat variant (Sec. 6.7.1 ablation).

Identical hardware to SynCron (SEs with STs and overflow management), but no
hierarchy: every core sends each request *directly* to the Master SE of the
variable, crossing the inter-unit link whenever the variable lives in
another unit.  Grants travel back the same way.  The paper uses this
variant to show that only a hierarchical design performs well under high
contention in non-uniform NDP systems.
"""

from __future__ import annotations

from repro.core.engine import SynCronMechanism
from repro.core.messages import REQUEST_BYTES


class FlatSynCronMechanism(SynCronMechanism):
    name = "syncron_flat"

    def _inject(self, core, msg) -> None:
        master = msg.var.unit
        if core.unit_id == master:
            self.stats.sync_messages_local += 1
        else:
            self.stats.sync_messages_global += 1
        latency = self.interconnect.transfer_latency(
            core.unit_id, master, self.sim.now, REQUEST_BYTES
        )
        self.ses[master].receive(
            msg, self.sim.now + latency, sender=core.sender_token
        )

    def inject_internal(self, se, msg) -> None:
        """Flat routing: the lock's Master SE owns the state, so condvar
        lock release / re-acquire must run there."""
        master = msg.var.unit
        target = self.ses[master]
        depart = self.sim.now + se._extra
        if target is se:
            se.sim.schedule_at(depart, se._enqueue, msg)
            return
        self.stats.sync_messages_global += 1
        latency = self.interconnect.transfer_latency(
            se.unit, master, depart, msg.bytes
        )
        target.receive(msg, depart + latency, sender=se.sender_token)
