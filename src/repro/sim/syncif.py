"""Interface between simulated cores and synchronization mechanisms.

Every mechanism (SynCron, its flat variant, Central, Hier, Ideal, the
MiSAR-style overflow alternatives) implements :class:`SyncMechanism`.  Cores
call :meth:`SyncMechanism.request` for blocking ``req_sync`` operations and
:meth:`SyncMechanism.request_async` for ``req_async`` releases; the mechanism
owns all message-travel and service timing and invokes the given callback
when the core may proceed.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Callable, Dict, Optional, Protocol, Tuple, runtime_checkable

from repro.sim.program import OP_KINDS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import WaitChannel


class SyncUsageError(RuntimeError):
    """A mechanism-agnostic misuse of the synchronization API.

    Raised by the shared admission check every mechanism funnels through
    (:meth:`MechanismBase._admit`) — most importantly for the single-use
    rule: one variable used as two different primitive kinds.
    """


def _no_waiter() -> None:
    """Shared no-op grant callback for fire-and-forget ``req_async``.

    Module-level so release-heavy hot paths don't allocate a fresh
    ``lambda: None`` per request.
    """


_var_ids = itertools.count()


class SyncVar:
    """A synchronization variable: an address plus primitive bookkeeping.

    ``create_syncvar()`` (Table 2) allocates one cache line in some unit's
    memory; the owning unit determines the *Master SE*.  The ``kind`` is set
    on first use and checked afterwards — using one variable as both a lock
    and a barrier is a programming error the real API also cannot express.
    ``owner`` ties the variable to a tenant's
    :class:`~repro.sim.stats.TenantStats` in co-run scenarios (None outside
    them) so SE-side service can be attributed.
    """

    __slots__ = ("addr", "unit", "kind", "uid", "name", "owner")

    def __init__(self, addr: int, unit: int, name: str = "", owner=None):
        self.addr = addr
        self.unit = unit
        self.kind: Optional[str] = None
        self.uid = next(_var_ids)
        self.name = name or f"svar{self.uid}"
        self.owner = owner

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SyncVar({self.name}, addr={self.addr:#x}, unit={self.unit})"


@runtime_checkable
class SyncMechanism(Protocol):
    """What a synchronization mechanism must provide to cores."""

    def request(
        self,
        core: "object",
        op: str,
        var: SyncVar,
        info: int,
        callback: Callable[[], None],
    ) -> None:
        """Blocking request; ``callback`` fires when the core may continue."""
        ...

    def request_async(self, core: "object", op: str, var: SyncVar, info: int) -> int:
        """Non-blocking request; returns the core-side issue cost in cycles."""
        ...


class MechanismBase:
    """Shared bookkeeping for mechanism implementations."""

    name = "base"

    def __init__(self, system: "object"):
        self.system = system
        self.sim = system.sim
        self.config = system.config
        self.stats = system.stats
        self.interconnect = system.interconnect

    def _admit(self, core, op: str, var: SyncVar) -> None:
        """Shared per-request admission: every mechanism calls this first.

        Enforces the :class:`SyncVar` single-use rule (the ``kind`` pinned
        by the first operation must match all later ones — previously only
        the SynCron engine and the reference semantics checked it, so the
        software baselines silently accepted broken programs) and counts
        the request globally and against the requesting tenant.
        """
        kind = OP_KINDS[op]
        if var.kind is None:
            var.kind = kind
        elif var.kind != kind:
            raise SyncUsageError(
                f"variable {var.name} used as {var.kind} and now as {kind}"
            )
        stats = self.stats
        stats.sync_requests_total += 1
        tenant = getattr(core, "tstats", None) or var.owner
        if tenant is not None:
            tenant.sync_requests += 1

    # Subclasses override these two.
    def request(self, core, op, var, info, callback) -> None:  # pragma: no cover
        raise NotImplementedError

    def request_async(self, core, op, var, info) -> int:
        """Default: model req_async as a request whose ACK nobody waits for."""
        self.request(core, op, var, info, callback=_no_waiter)
        return self.config.async_issue_cycles

    def rmw(self, core, addr: int, op: str, operand: int,
            callback: Callable[[int], None]) -> None:
        """Atomic read-modify-write at ``addr`` (Sec. 4.4.1 extension).

        ``callback(old_value)`` fires when the response reaches the core.
        Mechanisms without rmw hardware (the bakery software baseline)
        keep this default and reject the operation.
        """
        raise NotImplementedError(
            f"mechanism {self.name!r} has no atomic rmw support"
        )


class SpinWaitMixin:
    """Wait-channel plumbing shared by the spin baselines (rmw_spin, bakery).

    Both baselines used to model waiting as explicit poll -> fail ->
    reschedule event chains.  They now park on kernel
    :class:`~repro.sim.engine.WaitChannel` objects instead: one channel per
    ``(variable address, tag)`` pair, signalled whenever the guarded state
    the tag stands for actually changes.  A woken core re-checks its
    condition with one *real*, fully-charged attempt and re-parks if it
    lost the race, so contention behaviour (thundering herds, hotspot
    queueing at the home unit) is still resolved by real messages — only
    the provably-futile polls in between are elided, with their traffic
    and energy charged analytically by the owning mechanism.

    Signalling is conservative: a state change may wake waiters it cannot
    satisfy (spurious wakeups, resolved by the real re-check).  The rule
    that matters for liveness is the converse — any change a waiter could
    be waiting for *must* signal its channel — plus the ``seen`` snapshot
    protocol (see :meth:`WaitChannel.wait`) for the window between a failed
    attempt's observation and its wait registration.
    """

    def _init_spin_channels(self) -> None:
        self._spin_channels: Dict[Tuple[int, str], "WaitChannel"] = {}

    def _spin_channel(self, addr: int, tag: str) -> "WaitChannel":
        """The (lazily-created) wait-channel for ``(addr, tag)``.

        Signallers get-or-create too: the channel's ``signals`` counter
        must advance even when nobody is parked yet, or the ``seen``
        lost-wakeup guard could not see the miss.
        """
        key = (addr, tag)
        channel = self._spin_channels.get(key)
        if channel is None:
            channel = self.sim.channel(f"{self.name}:{addr:#x}:{tag}")
            self._spin_channels[key] = channel
        return channel

    def _spin_signal(self, addr: int, tag: str) -> None:
        self._spin_channel(addr, tag).signal()
