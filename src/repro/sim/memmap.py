"""Physical address space and per-unit allocation.

The NDP units share one physical address space, statically striped at unit
granularity: unit ``u`` owns ``[u * unit_memory_bytes, (u+1) * ...)``.
Workloads place data explicitly (the paper statically partitions data
structures and graph property arrays across units), so the address map also
provides a bump allocator per unit.
"""

from __future__ import annotations

from typing import List, Optional


class AddressMap:
    """Maps physical addresses to owning NDP units and allocates memory."""

    def __init__(self, num_units: int, unit_memory_bytes: int, line_bytes: int = 64):
        if num_units < 1:
            raise ValueError("num_units must be positive")
        self.num_units = num_units
        self.unit_memory_bytes = unit_memory_bytes
        self.line_bytes = line_bytes
        self._next_free: List[int] = [0] * num_units

    # ------------------------------------------------------------------
    # Address geometry
    # ------------------------------------------------------------------
    def unit_of(self, addr: int) -> int:
        """NDP unit owning ``addr``."""
        unit = addr // self.unit_memory_bytes
        if not 0 <= unit < self.num_units:
            raise ValueError(f"address {addr:#x} outside the memory map")
        return unit

    def line_of(self, addr: int) -> int:
        return addr // self.line_bytes

    def base_of(self, unit: int) -> int:
        return unit * self.unit_memory_bytes

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def alloc(self, unit: int, nbytes: int, align: int = 8) -> int:
        """Allocate ``nbytes`` in ``unit``'s memory; returns base address."""
        if not 0 <= unit < self.num_units:
            raise ValueError(f"no such unit: {unit}")
        if nbytes <= 0:
            raise ValueError("allocation size must be positive")
        offset = self._next_free[unit]
        if offset % align:
            offset += align - (offset % align)
        if offset + nbytes > self.unit_memory_bytes:
            raise MemoryError(f"unit {unit} memory exhausted")
        self._next_free[unit] = offset + nbytes
        return self.base_of(unit) + offset

    def alloc_line(self, unit: int) -> int:
        """Allocate one cache line (the natural grain for sync variables)."""
        return self.alloc(unit, self.line_bytes, align=self.line_bytes)

    def alloc_array(self, unit: int, count: int, elem_bytes: int = 8) -> int:
        """Allocate a contiguous array; returns base address."""
        return self.alloc(unit, count * elem_bytes, align=self.line_bytes)

    def alloc_striped_array(self, count: int, elem_bytes: int = 8) -> List[int]:
        """Allocate ``count`` elements round-robin across units.

        Returns per-element addresses.  Used for data the paper partitions
        across units (e.g., vertex property arrays).  Each unit allocates
        exactly the slots it owns — ``count // num_units`` plus one for the
        first ``count % num_units`` units — not a uniform
        ``ceil(count / num_units)``, which wasted a tail slot in every
        trailing unit (a whole line per unit for small arrays).
        """
        if count <= 0:
            raise ValueError("striped array needs a positive element count")
        base_slots, extra = divmod(count, self.num_units)
        bases: List[Optional[int]] = []
        for u in range(self.num_units):
            slots = base_slots + (1 if u < extra else 0)
            bases.append(self.alloc_array(u, slots, elem_bytes) if slots else None)
        addrs = []
        for i in range(count):
            unit = i % self.num_units
            slot = i // self.num_units
            addrs.append(bases[unit] + slot * elem_bytes)
        return addrs

    def bytes_used(self, unit: int) -> int:
        return self._next_free[unit]
