"""Clock-domain conversions.

All simulator timestamps are in *core cycles*.  The paper's system (Table 5)
clocks NDP cores at 2.5 GHz and the Synchronization Engine's SPU at 1 GHz;
DRAM/interconnect parameters are given in nanoseconds.  This module owns the
conversions so components never hand-roll them.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Clock:
    """A clock domain defined by its frequency in GHz."""

    ghz: float

    @property
    def period_ns(self) -> float:
        return 1.0 / self.ghz

    def cycles_from_ns(self, ns: float) -> int:
        """Convert nanoseconds to a whole number of cycles (round up).

        Rounding up is the conservative choice for latencies: hardware cannot
        finish mid-cycle.
        """
        cycles = ns * self.ghz
        whole = int(cycles)
        return whole if cycles == whole else whole + 1

    def ns_from_cycles(self, cycles: int) -> float:
        return cycles / self.ghz


#: NDP core clock (Table 5: "16 in-order cores @2.5 GHz per NDP unit").
CORE_CLOCK = Clock(ghz=2.5)

#: Synchronization Engine SPU clock (Table 5: "SPU @1GHz clock frequency").
SE_CLOCK = Clock(ghz=1.0)


def core_cycles_from_ns(ns: float) -> int:
    """Nanoseconds to core cycles (the simulator's global time unit)."""
    return CORE_CLOCK.cycles_from_ns(ns)


def core_cycles_from_se_cycles(se_cycles: int) -> int:
    """SE cycles (1 GHz) to core cycles (2.5 GHz)."""
    return core_cycles_from_ns(se_cycles * SE_CLOCK.period_ns)


def seconds_from_core_cycles(cycles: int) -> float:
    return cycles / (CORE_CLOCK.ghz * 1e9)
