"""System-wide statistics counters.

A single :class:`SystemStats` instance is shared by every component of a
simulated system.  Components only *increment* counters; the harness reads
them to build the paper's energy (Fig. 14), data-movement (Fig. 15) and
occupancy (Table 7, Fig. 19/22) results.

Counters are plain attributes on a slotted dataclass: the hot paths
(interconnect, DRAM, caches, SEs) bump them millions of times per run, and an
attribute store on a slotted instance is the cheapest mutation Python offers.
Per-SE occupancy accounting uses flat lists indexed by SE id instead of the
three dict lookups per message the seed paid.

Multi-tenant attribution
------------------------

Co-run scenarios (:mod:`repro.workloads.corun`) host several independent
*tenants* on one system, so shared-resource counters additionally need a
per-tenant split.  Attribution works through an explicit context:
components that begin servicing on behalf of a tenant (a core resuming its
program, an SE dispatching a message for a tenant-owned variable, a spin
baseline charging a retry) point :attr:`SystemStats.active` at that tenant's
:class:`TenantStats`; the byte/ST/sync chokepoints then charge the active
tenant alongside the global counter.  In single-workload runs no tenant is
ever registered, ``active`` stays ``None``, and every global counter is
bit-identical to the pre-tenancy simulator.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

#: Declared inventory of ``SystemStats.extra`` counter keys.  ``extra`` is a
#: Counter, so a typo'd key at a bump site silently creates a parallel
#: counter that every report reads as zero; the RP006 lint rule requires
#: each ``stats.extra[...]`` store to use a string literal from this set.
EXTRA_COUNTERS: FrozenSet[str] = frozenset({
    #: bakery-mutex waitlist scans performed by server cores.
    "bakery_scans",
    #: bakery-mutex ticket re-polls (spin iterations at the SE).
    "bakery_polls",
    #: failed lock/CAS attempts retried by spinning baselines.
    "spin_retries",
    #: read-modify-write operations executed by remote-atomics baselines.
    "rmw_ops",
    #: shared-LLC accesses made on behalf of synchronization.
    "llc_sync_accesses",
})


@dataclass(slots=True)
class TenantStats:
    """Per-tenant share of the shared-resource counters.

    ``cycles``/``operations`` are filled in after the run (the tenant's own
    makespan and application operation count); everything else accumulates
    during simulation via the :attr:`SystemStats.active` context.
    """

    name: str
    index: int
    #: makespan of this tenant's cores (max finish time), set post-run.
    cycles: int = 0
    #: application-level operations performed by this tenant, set post-run.
    operations: int = 0
    sync_requests: int = 0
    bytes_inside_units: int = 0
    bytes_across_units: int = 0
    sync_memory_accesses: int = 0
    st_allocations: int = 0
    st_released: int = 0
    #: ST entries currently held by this tenant's variables / peak held.
    st_held: int = 0
    st_held_max: int = 0
    #: bytes this tenant's arena allocated (memory footprint, not traffic).
    bytes_allocated: int = 0

    @property
    def total_bytes(self) -> int:
        return self.bytes_inside_units + self.bytes_across_units

    def as_dict(self) -> Dict[str, float]:
        return {
            "cycles": self.cycles,
            "operations": self.operations,
            "sync_requests": self.sync_requests,
            "bytes_inside_units": self.bytes_inside_units,
            "bytes_across_units": self.bytes_across_units,
            "sync_memory_accesses": self.sync_memory_accesses,
            "st_allocations": self.st_allocations,
            "st_held_max": self.st_held_max,
            "bytes_allocated": self.bytes_allocated,
        }


@dataclass(slots=True)
class SystemStats:
    """Mutable counters, all starting at zero."""

    # Cache events (all private L1s).
    cache_hits: int = 0
    cache_misses: int = 0

    # Memory events.
    dram_reads: int = 0
    dram_writes: int = 0
    dram_row_hits: int = 0
    dram_row_misses: int = 0
    #: reads/writes issued purely for synchronization (sync variables,
    #: syncronVar overflow structures, server-core waitlist bookkeeping).
    sync_memory_accesses: int = 0

    # Traffic in bytes (the Fig. 15 metric).
    bytes_inside_units: int = 0
    #: payload bytes injected into the inter-unit fabric — counted once per
    #: remote transfer regardless of how many physical links the route
    #: crosses, so the metric is conserved across topologies.
    bytes_across_units: int = 0
    #: bit-hops over local crossbars (for local-network energy).
    local_bit_hops: int = 0
    #: bits x physical inter-unit links traversed (for link energy).  On the
    #: all-to-all fabric every route is one link, so this equals
    #: ``bytes_across_units * 8``; routed fabrics charge every hop.
    link_bit_hops: int = 0

    # Degraded-fabric accounting (all zero on a healthy fabric).
    #: route resolutions that found the pristine path severed by a fault
    #: and switched to a surviving detour (once per pair per fault epoch).
    reroutes: int = 0
    #: cycles x links of downtime: every failed link's unavailable time,
    #: charged on repair (transients) or at end of run (permanent faults).
    failed_link_cycles: int = 0
    #: the share of ``link_bit_hops`` that exists only because transfers
    #: detoured around faults (bits x extra links vs. the pristine route).
    detour_bit_hops: int = 0

    # Message counts.
    sync_messages_local: int = 0
    sync_messages_global: int = 0
    sync_messages_overflow: int = 0

    # SE bookkeeping.
    st_allocations: int = 0
    st_releases: int = 0
    st_overflow_requests: int = 0
    sync_requests_total: int = 0

    # Per-category extras (extensible without schema churn).
    extra: Counter = field(default_factory=Counter)

    # Multi-tenant attribution (empty / None outside co-run scenarios).
    tenants: List[TenantStats] = field(default_factory=list)
    #: the tenant currently being serviced; chokepoints charge it alongside
    #: the global counter.  Components set it, they never clear it — the
    #: next service context overwrites it.
    active: Optional[TenantStats] = None

    # Occupancy integrals, indexed by SE id: running max, sum over sampling
    # points of occupied entries, and sample counts.
    _occ_max: List[int] = field(default_factory=list)
    _occ_sum: List[int] = field(default_factory=list)
    _occ_samples: List[int] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Tenants
    # ------------------------------------------------------------------
    def add_tenant(self, name: str) -> TenantStats:
        """Register one tenant; names must be unique within a run."""
        if any(t.name == name for t in self.tenants):
            raise ValueError(f"duplicate tenant name {name!r}")
        tenant = TenantStats(name=name, index=len(self.tenants))
        self.tenants.append(tenant)
        return tenant

    def count_st_allocation(self) -> None:
        """One ST entry allocated (charged to the active tenant, if any)."""
        self.st_allocations += 1
        tenant = self.active
        if tenant is not None:
            tenant.st_allocations += 1
            tenant.st_held += 1
            if tenant.st_held > tenant.st_held_max:
                tenant.st_held_max = tenant.st_held

    def count_st_release(self) -> None:
        """One ST entry released back to the table."""
        self.st_releases += 1
        tenant = self.active
        if tenant is not None:
            tenant.st_released += 1
            if tenant.st_held > 0:
                tenant.st_held -= 1

    def tenant_summary(self) -> Dict[str, float]:
        """Makespan/fairness across tenants (empty outside co-runs).

        ``fairness`` is min/max of the per-tenant makespans: 1.0 means all
        tenants finished together, values near 0 mean one tenant was starved.
        """
        if not self.tenants:
            return {}
        cycles = [t.cycles for t in self.tenants]
        makespan = max(cycles)
        return {
            "tenants": len(self.tenants),
            "makespan": makespan,
            "fairness": (min(cycles) / makespan) if makespan else 1.0,
        }

    # ------------------------------------------------------------------
    def record_st_occupancy(self, se_id: int, occupied: int) -> None:
        """Sample an ST's occupancy (called by the SE on every message)."""
        maxes = self._occ_max
        if se_id >= len(maxes):
            grow = se_id + 1 - len(maxes)
            maxes.extend([0] * grow)
            self._occ_sum.extend([0] * grow)
            self._occ_samples.extend([0] * grow)
        if occupied > maxes[se_id]:
            maxes[se_id] = occupied
        self._occ_sum[se_id] += occupied
        self._occ_samples[se_id] += 1

    @property
    def st_occupancy_max(self) -> Dict[int, int]:
        """Max occupancy per SE id (dict view; only SEs that peaked above 0)."""
        return {se_id: occ for se_id, occ in enumerate(self._occ_max) if occ > 0}

    def st_occupancy_avg(self, se_id: int) -> float:
        if se_id >= len(self._occ_samples):
            return 0.0
        samples = self._occ_samples[se_id]
        if samples == 0:
            return 0.0
        return self._occ_sum[se_id] / samples

    def st_occupancy_summary(self, st_entries: int) -> Dict[str, float]:
        """Max/avg occupancy as percentages across all SEs (Table 7 rows)."""
        total_samples = sum(self._occ_samples)
        if total_samples == 0:
            return {"max_pct": 0.0, "avg_pct": 0.0}
        max_occ = max(self._occ_max, default=0)
        total_sum = sum(self._occ_sum)
        return {
            "max_pct": 100.0 * max_occ / st_entries,
            "avg_pct": 100.0 * (total_sum / total_samples) / st_entries,
        }

    # ------------------------------------------------------------------
    @property
    def overflow_request_pct(self) -> float:
        """Percentage of sync requests serviced via main memory (Fig. 22/23)."""
        if self.sync_requests_total == 0:
            return 0.0
        return 100.0 * self.st_overflow_requests / self.sync_requests_total

    @property
    def total_bytes(self) -> int:
        return self.bytes_inside_units + self.bytes_across_units

    def as_dict(self) -> Dict[str, float]:
        """Flat snapshot for reporting.

        Per-tenant counters appear as ``tenant.<name>.<counter>`` keys so
        they survive the sweep runner's JSON result cache unchanged;
        single-workload runs emit exactly the pre-tenancy key set.
        """
        result = self._global_dict()
        if self.tenants:
            for tenant in self.tenants:
                for key, value in tenant.as_dict().items():
                    result[f"tenant.{tenant.name}.{key}"] = value
            for key, value in self.tenant_summary().items():
                result[f"tenant_summary.{key}"] = value
        return result

    def _global_dict(self) -> Dict[str, float]:
        return {
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "dram_reads": self.dram_reads,
            "dram_writes": self.dram_writes,
            "dram_row_hits": self.dram_row_hits,
            "dram_row_misses": self.dram_row_misses,
            "sync_memory_accesses": self.sync_memory_accesses,
            "bytes_inside_units": self.bytes_inside_units,
            "bytes_across_units": self.bytes_across_units,
            "link_bit_hops": self.link_bit_hops,
            "reroutes": self.reroutes,
            "failed_link_cycles": self.failed_link_cycles,
            "detour_bit_hops": self.detour_bit_hops,
            "sync_messages_local": self.sync_messages_local,
            "sync_messages_global": self.sync_messages_global,
            "sync_messages_overflow": self.sync_messages_overflow,
            "st_overflow_requests": self.st_overflow_requests,
            "sync_requests_total": self.sync_requests_total,
        }


def charge_elided_transfer(stats: SystemStats, nbytes: int, count: int,
                           local: bool, local_hops: int, link_hops: int) -> None:
    """Traffic counters of ``count`` elided transfers of ``nbytes`` each.

    Mirrors what one :meth:`~repro.sim.network.Interconnect.transfer_latency`
    call charges — source crossbar (+ fabric links + destination crossbar
    when remote) — without touching any reservation/queueing state: elided
    spin polls account their traffic and energy analytically but do not
    contend for banks, links, or crossbar slots (see the wait-channel model
    notes in EXPERIMENTS.md).
    """
    tenant = stats.active
    payload = nbytes * count
    if local:
        stats.bytes_inside_units += payload
        stats.local_bit_hops += payload * 8 * local_hops
        if tenant is not None:
            tenant.bytes_inside_units += payload
    else:
        # Both endpoint crossbars see the packet; links carry it once.
        stats.bytes_inside_units += 2 * payload
        stats.local_bit_hops += 2 * payload * 8 * local_hops
        stats.bytes_across_units += payload
        stats.link_bit_hops += payload * 8 * link_hops
        if tenant is not None:
            tenant.bytes_inside_units += 2 * payload
            tenant.bytes_across_units += payload
