"""In-order NDP core model.

The paper's cores (Sec. 5) are simple in-order cores: one memory operation
outstanding, the next instruction issues only when the previous completes.
We model a core as a driver for one program generator (see
:mod:`repro.sim.program`): each yielded operation is resolved to a latency
and the generator resumes when it elapses.

Synchronization operations are delegated to the system's
:class:`~repro.sim.syncif.SyncMechanism`; the core simply parks until the
mechanism's grant callback fires (``req_sync``), or continues after the issue
cost (``req_async``).
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from repro.sim.cache import L1Cache
from repro.sim.engine import Process, Simulator
from repro.sim.program import (
    Batch,
    Compute,
    Load,
    RmwOp,
    Store,
    SyncAsyncOp,
    SyncOp,
)


class NDPCore:
    """One in-order NDP core executing a single program."""

    __slots__ = ("sim", "core_id", "unit_id", "local_id", "l1", "memsys",
                 "mechanism", "config", "port", "process", "finished",
                 "finish_time", "instructions_retired", "sync_requests_issued",
                 "_waiting_since", "cycles_waiting_sync", "sender_token",
                 "tstats")

    def __init__(
        self,
        sim: Simulator,
        core_id: int,
        unit_id: int,
        local_id: int,
        l1: L1Cache,
        memsys,
        mechanism,
        config,
        port=None,
    ):
        self.sim = sim
        self.core_id = core_id        # globally unique (= hw context id)
        #: interned FIFO-clamp key for SE receive paths (one tuple per core,
        #: not one per message).
        self.sender_token = ("core", core_id)
        self.unit_id = unit_id
        self.local_id = local_id      # unique within the unit
        self.l1 = l1
        self.memsys = memsys
        self.mechanism = mechanism
        self.config = config
        #: shared in-order pipeline when several hardware thread contexts
        #: live on one physical core (Sec. 4 SMT note); None = sole owner.
        self.port = port

        #: the tenant this core is bound to in co-run scenarios (None when
        #: the whole machine runs one workload).
        self.tstats = None

        self.process: Optional[Process] = None
        self.finished = False
        self.finish_time: Optional[int] = None
        self.instructions_retired = 0
        self.sync_requests_issued = 0
        self._waiting_since: Optional[int] = None
        self.cycles_waiting_sync = 0

    # ------------------------------------------------------------------
    def run_program(self, program: Iterator, on_finish: Optional[Callable[[], None]] = None) -> None:
        """Attach and start a program at the current simulation time."""
        if self.process is not None and not self.finished:
            raise RuntimeError(f"core {self.core_id} is already running a program")
        self.finished = False
        self.finish_time = None
        self.process = Process(program, on_finish=self._make_finish_hook(on_finish))
        self.sim.schedule(0, self._advance)

    def _make_finish_hook(self, user_hook):
        def hook():
            self.finished = True
            self.finish_time = self.sim.now
            if user_hook is not None:
                user_hook()
        return hook

    # ------------------------------------------------------------------
    def _advance(self, value=None) -> None:
        """Resume the program and dispatch its next operation."""
        tstats = self.tstats
        if tstats is not None:
            # Everything this micro-step does inline (memory accesses,
            # mechanism request injection) is on this tenant's behalf.
            self.memsys.stats.active = tstats
        op = self.process.resume(value)
        if op is None:
            return
        # Exact-type dispatch (one dict hit) with an isinstance fallback for
        # subclassed operations; this runs once per core micro-step.
        handler = _OP_DISPATCH.get(op.__class__)
        if handler is not None:
            handler(self, op)
        else:
            self._advance_slow(op)

    def _advance_slow(self, op) -> None:
        """isinstance-based dispatch for subclassed operation types."""
        if isinstance(op, Compute):
            self._compute_op(op)
        elif isinstance(op, Load):
            self._load_op(op)
        elif isinstance(op, Store):
            self._store_op(op)
        elif isinstance(op, Batch):
            self._batch_op(op)
        elif isinstance(op, SyncOp):
            self._sync_op(op)
        elif isinstance(op, SyncAsyncOp):
            self._sync_async_op(op)
        elif isinstance(op, RmwOp):
            self._rmw_op(op)
        else:
            raise TypeError(f"program yielded unknown operation {op!r}")

    def _compute_op(self, op: Compute) -> None:
        instructions = op.instructions
        self.instructions_retired += instructions
        # 1 IPC in-order pipeline; zero-instruction compute still takes
        # no time (pure marker).  A shared pipeline (SMT) must first be
        # claimed for the whole sequence.
        delay = instructions
        if self.port is not None and instructions > 0:
            start = self.port.reserve(self.sim.now, instructions)
            delay = (start - self.sim.now) + instructions
        self.sim.schedule(delay, self._advance)

    def _load_op(self, op: Load) -> None:
        self._memory_op(op.addr, is_write=False, cacheable=op.cacheable, size=op.size)

    def _store_op(self, op: Store) -> None:
        self._memory_op(op.addr, is_write=True, cacheable=op.cacheable, size=op.size)

    def _batch_op(self, op: Batch) -> None:
        """Resolve a whole Compute/Load/Store sequence in one event."""
        cursor = self.sim.now
        if self.port is not None and op.ops:
            # Claim one issue slot per operation; the memory time of each
            # access still runs on this context's own clock.
            cursor = self.port.reserve(cursor, len(op.ops))
        for sub in op.ops:
            if isinstance(sub, Compute):
                self.instructions_retired += sub.instructions
                cursor += sub.instructions
            else:
                self.instructions_retired += 1
                is_write = isinstance(sub, Store)
                cursor += max(
                    self.memsys.access(
                        self.unit_id, self.l1, sub.addr, is_write,
                        sub.cacheable, cursor, size=sub.size,
                    ),
                    1,
                )
        self.sim.schedule(max(cursor - self.sim.now, 1), self._advance)

    def _memory_op(self, addr: int, is_write: bool, cacheable: bool, size: int) -> None:
        self.instructions_retired += 1
        issue_stall = 0
        now = self.sim.now
        if self.port is not None:
            start = self.port.reserve(now, 1)
            issue_stall = start - now
            now = start
        latency = self.memsys.access(
            self.unit_id, self.l1, addr, is_write, cacheable, now, size=size
        )
        self.sim.schedule(issue_stall + max(latency, 1), self._advance)

    def _issue_then(self, action, *args) -> None:
        """Run ``action(*args)`` once the (possibly shared) pipeline issues
        it.  On single-context cores (no port) this is a plain call — no
        closure, no event."""
        if self.port is None:
            action(*args)
            return
        start = self.port.reserve(self.sim.now, 1)
        if start == self.sim.now:
            action(*args)
        else:
            self.sim.schedule_at(start, action, *args)

    def _sync_op(self, op: SyncOp) -> None:
        self.instructions_retired += 1
        self.sync_requests_issued += 1
        self._waiting_since = self.sim.now
        self._issue_then(
            self.mechanism.request, self, op.op, op.var, op.info,
            self._sync_granted,
        )

    def _sync_granted(self) -> None:
        if self._waiting_since is not None:
            self.cycles_waiting_sync += self.sim.now - self._waiting_since
            self._waiting_since = None
        self._advance()

    def _sync_async_op(self, op: SyncAsyncOp) -> None:
        self.instructions_retired += 1
        self.sync_requests_issued += 1
        self._issue_then(self._issue_async, op)

    def _issue_async(self, op: SyncAsyncOp) -> None:
        issue_cost = self.mechanism.request_async(self, op.op, op.var, op.info)
        self.sim.schedule(max(issue_cost, 1), self._advance)

    def _rmw_op(self, op: RmwOp) -> None:
        """Atomic rmw at the address's Master SE (Sec. 4.4.1); the program
        resumes with the old value."""
        self.instructions_retired += 1
        self._waiting_since = self.sim.now
        self._issue_then(
            self.mechanism.rmw, self, op.addr, op.op, op.operand,
            self._rmw_granted,
        )

    def _rmw_granted(self, old_value: int) -> None:
        if self._waiting_since is not None:
            self.cycles_waiting_sync += self.sim.now - self._waiting_since
            self._waiting_since = None
        self._advance(old_value)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NDPCore(id={self.core_id}, unit={self.unit_id}, local={self.local_id})"


#: exact operation type -> unbound handler, resolved once at import.
_OP_DISPATCH = {
    Compute: NDPCore._compute_op,
    Load: NDPCore._load_op,
    Store: NDPCore._store_op,
    Batch: NDPCore._batch_op,
    SyncOp: NDPCore._sync_op,
    SyncAsyncOp: NDPCore._sync_async_op,
    RmwOp: NDPCore._rmw_op,
}
