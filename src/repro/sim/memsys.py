"""Memory-system facade: L1 -> local crossbar -> (link ->) DRAM.

Resolves the full latency of a core's load/store following the paper's
baseline architecture (Sec. 2.1):

- cacheable data (thread-private / shared read-only) goes through the
  core's private L1; misses fetch a 64 B line from the home unit's DRAM;
- shared read-write data is **uncacheable** and always performs a word-sized
  access at the home unit's DRAM;
- accesses to another unit's memory additionally cross the inter-unit link
  in both directions (the non-uniformity that motivates SynCron).

Dirty-victim writebacks are accounted for in traffic/energy but overlap with
execution (they do not add to the requesting core's latency), matching the
usual write-back buffer assumption.
"""

from __future__ import annotations

from repro.sim.cache import L1Cache
from repro.sim.config import SystemConfig
from repro.sim.dram import DramDevice
from repro.sim.memmap import AddressMap
from repro.sim.network import Interconnect
from repro.sim.stats import SystemStats

#: bytes of a request header / word-grain payload message.
REQUEST_BYTES = 16


class MemorySystem:
    """Timing oracle for all data accesses in the system."""

    __slots__ = ("config", "stats", "interconnect", "drams", "addrmap",
                 "_line_bytes")

    def __init__(
        self,
        config: SystemConfig,
        stats: SystemStats,
        interconnect: Interconnect,
        drams: list,
        addrmap: AddressMap,
    ):
        self.config = config
        self.stats = stats
        self.interconnect = interconnect
        self.drams = drams
        self.addrmap = addrmap
        self._line_bytes = config.cache_line_bytes

    # ------------------------------------------------------------------
    def access(
        self,
        src_unit: int,
        l1: L1Cache,
        addr: int,
        is_write: bool,
        cacheable: bool,
        now: int,
        size: int = 8,
        for_sync: bool = False,
    ) -> int:
        """Full latency in cycles of one core access issued at ``now``."""
        if for_sync:
            self.stats.sync_memory_accesses += 1
            tenant = self.stats.active
            if tenant is not None:
                tenant.sync_memory_accesses += 1
        if cacheable and l1 is not None:
            return self._cacheable_access(src_unit, l1, addr, is_write, now)
        return self._uncacheable_access(src_unit, addr, is_write, now, size)

    # ------------------------------------------------------------------
    def _cacheable_access(self, src_unit, l1, addr, is_write, now) -> int:
        result = l1.access(addr, is_write)
        if result.hit:
            return l1.hit_cycles

        latency = l1.hit_cycles  # tag check before the miss goes out
        latency += self._line_fill(src_unit, addr, now + latency)
        if result.writeback_line is not None:
            self._background_writeback(src_unit, result.writeback_line, now)
        return latency

    def _line_fill(self, src_unit: int, addr: int, now: int) -> int:
        """Request to home DRAM and 64 B line back."""
        interconnect = self.interconnect
        home = self.addrmap.unit_of(addr)
        latency = interconnect.transfer_latency(src_unit, home, now, REQUEST_BYTES)
        latency += self.drams[home].access(addr, is_write=False, now=now + latency)
        latency += interconnect.transfer_latency(
            home, src_unit, now + latency, self._line_bytes
        )
        return latency

    def _background_writeback(self, src_unit: int, victim_line: int, now: int) -> None:
        """Account a dirty eviction's traffic and DRAM write, off the
        critical path."""
        addr = victim_line * self._line_bytes
        home = self.addrmap.unit_of(addr)
        self.interconnect.transfer_latency(src_unit, home, now, self._line_bytes)
        self.drams[home].access(addr, is_write=True, now=now)

    def _uncacheable_access(self, src_unit, addr, is_write, now, size) -> int:
        interconnect = self.interconnect
        home = self.addrmap.unit_of(addr)
        payload = size if size > 8 else 8
        request = REQUEST_BYTES + (payload if is_write else 0)
        response = REQUEST_BYTES + (0 if is_write else payload)
        latency = interconnect.transfer_latency(src_unit, home, now, request)
        latency += self.drams[home].access(addr, is_write=is_write, now=now + latency)
        latency += interconnect.transfer_latency(home, src_unit, now + latency, response)
        return latency

    # ------------------------------------------------------------------
    def device_access(self, unit: int, addr: int, is_write: bool, now: int,
                      for_sync: bool = False) -> int:
        """An access issued by a device in the memory's own unit (e.g. the
        Master SE reading a ``syncronVar`` from its local memory arrays)."""
        if for_sync:
            self.stats.sync_memory_accesses += 1
            tenant = self.stats.active
            if tenant is not None:
                tenant.sync_memory_accesses += 1
        home = self.addrmap.unit_of(addr)
        if home != unit:
            raise ValueError("device_access must target the device's own unit")
        latency = self.interconnect.local_latency(unit, now, REQUEST_BYTES)
        latency += self.drams[home].access(addr, is_write=is_write, now=now + latency)
        return latency
