"""Message tracing: observe every SE message in a simulated system.

Debugging distributed protocols from aggregate counters alone is painful;
:class:`MessageTracer` hooks a mechanism's engines and records every
dispatched message with its timestamp, handler engine, opcode, variable and
originator — the simulated equivalent of a protocol analyzer on the SE
fabric.

Usage::

    system = NDPSystem(ndp_2_5d(), mechanism="syncron")
    tracer = MessageTracer(system)          # hooks installed
    ... run programs ...
    tracer.summary()                        # opcode histogram
    tracer.for_variable(lock)               # one variable's full history

Tracing is read-only: timing and behaviour are unchanged.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One dispatched message."""

    time: int
    engine: str          # e.g. "SE0", "server2", "fallback4"
    opcode: str
    variable: str
    core: Optional[int]
    src_se: Optional[int]

    def __str__(self) -> str:
        who = f"core{self.core}" if self.core is not None else f"SE{self.src_se}"
        return (f"[{self.time:>10}] {self.engine:<10} {self.opcode:<32} "
                f"{self.variable:<12} from {who}")


def _engine_label(engine) -> str:
    name = type(engine).__name__
    if name == "SyncEngine":
        return f"SE{engine.se_id}"
    return f"{name.strip('_').lower()}{engine.se_id}"


class MessageTracer:
    """Records every message dispatched by a mechanism's engines."""

    def __init__(self, system, filter_fn: Callable[[TraceRecord], bool] = None):
        self.system = system
        self.records: List[TraceRecord] = []
        self.filter_fn = filter_fn
        # Also log WaitChannel signal wakes: the chrome-trace exporter
        # turns them into kernel counter tracks + instant events so elided
        # poll storms stay visible.  Observational only (timing unchanged).
        self.wake_log = system.sim.record_wakes()
        self._install()

    def _install(self) -> None:
        engines = list(getattr(self.system.mechanism, "ses", []))
        engines.extend(getattr(self.system.mechanism, "_fallbacks", []))
        hooked: List[object] = []
        for engine in engines:
            if any(e is engine for e in hooked):  # Central aliases one
                continue                          # server N times
            hooked.append(engine)
            self._hook(engine)

    def _hook(self, engine) -> None:
        original = engine.dispatch
        label = _engine_label(engine)

        def traced_dispatch(msg, _original=original, _label=label):
            record = TraceRecord(
                time=self.system.sim.now,
                engine=_label,
                opcode=msg.opcode.name,
                variable=msg.var.name,
                core=msg.core,
                src_se=msg.src_se,
            )
            if self.filter_fn is None or self.filter_fn(record):
                self.records.append(record)
            _original(msg)

        engine.dispatch = traced_dispatch

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def summary(self) -> Counter:
        """Opcode histogram."""
        return Counter(record.opcode for record in self.records)

    def for_variable(self, var) -> List[TraceRecord]:
        name = getattr(var, "name", var)
        return [r for r in self.records if r.variable == name]

    def for_core(self, core_id: int) -> List[TraceRecord]:
        return [r for r in self.records if r.core == core_id]

    def between(self, start: int, end: int) -> List[TraceRecord]:
        return [r for r in self.records if start <= r.time <= end]

    def format(self, records: Optional[List[TraceRecord]] = None,
               limit: int = 50) -> str:
        records = self.records if records is None else records
        lines = [str(r) for r in records[:limit]]
        if len(records) > limit:
            lines.append(f"... ({len(records) - limit} more)")
        return "\n".join(lines)
