"""System configuration (the paper's Table 5) and named presets.

Everything an experiment can vary lives in :class:`SystemConfig`:
topology (units, cores), memory technology, network/link parameters,
SE parameters (ST size, service cycles, indexing counters), server-core cost
model for the Central/Hier baselines, and energy constants.

Presets:

- :func:`ndp_2_5d`  — HBM-based 2.5D NDP (the paper's default evaluation).
- :func:`ndp_3d`    — HMC-based 3D NDP.
- :func:`ndp_2d`    — DDR4-based 2D NDP.
- :func:`cpu_numa`  — 2-socket CPU used for the Table 1 substitution.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Callable, Dict, Optional, Tuple

from repro.sim.clock import core_cycles_from_ns


def _float_or_none(value) -> Optional[float]:
    return None if value is None else float(value)


def _norm_link_profile(entries) -> Tuple:
    """Canonical ``(src, dst, gbps|None, latency_ns|None)`` tuples."""
    out = []
    for entry in entries:
        entry = tuple(entry)
        if len(entry) != 4:
            raise ValueError(
                "link_profile entries must be (src, dst, bandwidth_gbps, "
                f"latency_ns), got {entry!r}"
            )
        src, dst, gbps, lat = entry
        out.append((int(src), int(dst), _float_or_none(gbps), _float_or_none(lat)))
    return tuple(out)


def _norm_fault_links(entries) -> Tuple:
    """Canonical ``(src, dst, at_cycle, down_cycles)``; 3-tuples mean permanent."""
    out = []
    for entry in entries:
        entry = tuple(entry)
        if len(entry) == 3:
            entry = entry + (0,)
        if len(entry) != 4:
            raise ValueError(
                "fault_links entries must be (src, dst, at_cycle[, "
                f"down_cycles]), got {entry!r}"
            )
        out.append(tuple(int(v) for v in entry))
    return tuple(out)


def _norm_fault_units(entries) -> Tuple:
    """Canonical ``(unit, at_cycle, down_cycles)``; 2-tuples mean permanent."""
    out = []
    for entry in entries:
        entry = tuple(entry)
        if len(entry) == 2:
            entry = entry + (0,)
        if len(entry) != 3:
            raise ValueError(
                "fault_units entries must be (unit, at_cycle[, down_cycles]), "
                f"got {entry!r}"
            )
        out.append(tuple(int(v) for v in entry))
    return tuple(out)


@dataclass(frozen=True)
class DramTiming:
    """First-order DRAM timing (per Table 5, in nanoseconds).

    ``act_ns`` models the activation (row open, tRCD), ``restore_ns`` the
    row-cycle residual (tRAS), ``write_recovery_ns`` tWR, and ``cas_ns`` the
    column access.  A row-buffer hit pays only ``cas_ns``.
    """

    name: str
    act_ns: float
    restore_ns: float
    write_recovery_ns: float
    cas_ns: float
    channels: int
    banks_per_channel: int
    row_size_bytes: int = 2048
    energy_pj_per_bit: float = 7.0

    @property
    def row_hit_cycles(self) -> int:
        return core_cycles_from_ns(self.cas_ns)

    @property
    def row_miss_cycles(self) -> int:
        return core_cycles_from_ns(self.act_ns + self.cas_ns)

    @property
    def row_conflict_cycles(self) -> int:
        return core_cycles_from_ns(self.restore_ns + self.act_ns + self.cas_ns)


# Table 5 memory technologies.  HBM: nRCDR/nRCDW/nRAS/nWR 7/6/17/8 ns.
HBM = DramTiming(
    name="HBM", act_ns=7.0, restore_ns=17.0, write_recovery_ns=8.0, cas_ns=7.0,
    channels=8, banks_per_channel=16, energy_pj_per_bit=7.0,
)
# HMC: nRCD/nRAS/nWR 17/34/19 ns; 32 vaults per stack.
HMC = DramTiming(
    name="HMC", act_ns=17.0, restore_ns=34.0, write_recovery_ns=19.0, cas_ns=8.0,
    channels=32, banks_per_channel=8, energy_pj_per_bit=7.0,
)
# DDR4: nRCD/nRAS/nWR 16/39/18 ns; 4 DIMMs → model as fewer channels.
DDR4 = DramTiming(
    name="DDR4", act_ns=16.0, restore_ns=39.0, write_recovery_ns=18.0, cas_ns=14.0,
    channels=2, banks_per_channel=16, energy_pj_per_bit=12.0,
)

MEMORY_TECHNOLOGIES: Dict[str, DramTiming] = {"HBM": HBM, "HMC": HMC, "DDR4": DDR4}


@dataclass(frozen=True)
class EnergyParams:
    """Energy constants from Table 5 (picojoules)."""

    cache_hit_pj: float = 23.0
    cache_miss_pj: float = 47.0
    local_network_pj_per_bit_hop: float = 0.4
    link_pj_per_bit: float = 4.0


@dataclass(frozen=True)
class SystemConfig:
    """Full simulated-system configuration.

    The defaults reproduce the paper's evaluated configuration: 4 NDP units,
    16 cores each (15 clients + 1 server/SE slot), HBM, 40 ns inter-unit
    links, 64-entry ST.
    """

    # --- topology -----------------------------------------------------
    num_units: int = 4
    cores_per_unit: int = 16
    #: cores per unit that run application code; the paper keeps 15 clients
    #: and dedicates the 16th slot to the server core (Central/Hier) or
    #: disables it (SynCron) for fair comparison.
    client_cores_per_unit: int = 15
    #: hardware thread contexts per physical core (Sec. 4: waiting lists
    #: grow to 1 bit per context; contexts share the core's pipeline + L1).
    threads_per_core: int = 1

    # --- memory -------------------------------------------------------
    memory: DramTiming = HBM
    #: bytes per NDP unit of address space (only used for placement math).
    unit_memory_bytes: int = 1 << 30
    cache_line_bytes: int = 64

    # --- L1 cache (private, per core) ----------------------------------
    l1_size_bytes: int = 16 * 1024
    l1_ways: int = 2
    l1_hit_cycles: int = 4

    # --- local network (per-unit buffered crossbar) ---------------------
    hop_cycles: int = 1
    arbiter_cycles: int = 1
    local_hops: int = 2  # core <-> memory/SE inside a unit
    #: per-unit crossbar service bandwidth in bytes/cycle used by the M/D/1
    #: queueing model of Table 5.
    crossbar_bytes_per_cycle: float = 32.0

    # --- inter-unit links ----------------------------------------------
    link_latency_ns: float = 40.0
    link_bandwidth_gbps: float = 12.8  # GB/s per direction (Table 5)
    #: physical fabric between NDP units (see :mod:`repro.sim.topo`):
    #: ``"all_to_all"`` (a dedicated channel per ordered unit pair — the
    #: paper's implicit ideal fabric and the default), ``"ring"``,
    #: ``"mesh2d"``, or ``"torus2d"``.  Non-default fabrics route packets
    #: over shared multi-hop channels, so contention and distance emerge.
    topology: str = "all_to_all"
    #: grid rows for ``mesh2d``/``torus2d``; 0 picks the squarest
    #: factorization of ``num_units`` (16 -> 4x4, 12 -> 3x4).  Non-grid
    #: fabrics ignore rows, so ``__post_init__`` normalizes them to 0 there
    #: — otherwise two configs describing the same machine would hash (and
    #: therefore cache) differently.
    topo_rows: int = 0
    #: per-channel overrides for heterogeneous fabrics: a tuple of
    #: ``(src, dst, bandwidth_gbps, latency_ns)`` entries, one per directed
    #: channel.  ``None`` in either slot keeps the global value
    #: (``link_bandwidth_gbps`` / ``link_latency_ns``).  Channels not listed
    #: use the globals, so ``()`` — the default — is the uniform fabric.
    link_profile: Tuple = ()
    #: route selection over the fabric (see :mod:`repro.sim.topo.policies`):
    #: ``"static"`` (pristine table; BFS fallback only when a fault severs
    #: the path), ``"degraded"`` (least-cost over surviving channels by
    #: per-link latency + serialization), or ``"load_aware"`` (per-transfer
    #: choice among minimal routes by live link queue depth).
    routing_policy: str = "static"

    # --- fault injection (see :mod:`repro.sim.topo.faults`) -------------
    #: seed for the rate-derived part of the fault plan.
    fault_seed: int = 0
    #: explicit link faults: ``(src, dst, at_cycle, down_cycles)`` with
    #: ``down_cycles == 0`` meaning permanent (3-tuples are normalized).
    fault_links: Tuple = ()
    #: explicit unit faults: ``(unit, at_cycle, down_cycles)``.  A failed
    #: unit stops *forwarding* transit traffic but remains reachable as an
    #: endpoint (its cores and memory still operate).
    fault_units: Tuple = ()
    #: fraction of physical channels that fail permanently at a
    #: seed-derived time within ``fault_window_cycles``.
    fault_link_rate: float = 0.0
    #: fraction of physical channels that fail transiently (down for
    #: ``fault_repair_cycles``) at a seed-derived time.
    fault_transient_rate: float = 0.0
    #: rate-derived fault times are drawn uniformly from [0, window).
    fault_window_cycles: int = 20_000
    #: downtime of one rate-derived transient fault.
    fault_repair_cycles: int = 4_000

    # --- Synchronization Engine ------------------------------------------
    st_entries: int = 64
    indexing_counters: int = 256
    #: SE service occupancy per message, in SE cycles @1GHz (Sec. 5: "each
    #: message is served in 12 cycles").
    se_service_se_cycles: int = 12
    #: lock fairness threshold (Sec. 4.4.2); 0 disables the fairness counter.
    fairness_threshold: int = 0
    #: core-side cycles to issue a fire-and-forget ``req_async`` before the
    #: program continues (Sec. 4.1: the request commits once issued).
    async_issue_cycles: int = 1
    #: where ST-overflow state lives (Sec. 4.6): ``"memory"`` is the paper's
    #: NDP design (syncronVar in the Master SE's DRAM); ``"shared_cache"``
    #: models the conventional-NUMA adaptation that falls back to a
    #: low-latency shared cache instead.
    overflow_target: str = "memory"
    #: shared-cache access latency used by the ``"shared_cache"`` target.
    shared_cache_hit_cycles: int = 30

    # --- spin-wait baselines (remote atomics / bakery, Sec. 2.2.1) ------
    #: cycles a spinning core waits between failed retries.
    spin_backoff_cycles: int = 32
    #: elide spin-wait poll chains and tagged periodic timers in the event
    #: kernel (wake times computed arithmetically; bit-identical simulated
    #: cycles/energy/traffic to ``False``, which materializes every poll as
    #: an event — kept as a switch for the determinism diff and debugging).
    elide_waits: bool = True

    # --- server-core cost model (Central/Hier baselines) ----------------
    #: instructions a server core spends decoding/handling one message.
    server_handler_instructions: int = 24
    #: memory accesses (through the server's L1) per handled message.
    server_handler_accesses: int = 2

    # --- energy ---------------------------------------------------------
    energy: EnergyParams = field(default_factory=EnergyParams)

    # --- misc -------------------------------------------------------------
    seed: int = 0

    def __post_init__(self) -> None:
        # Canonicalize before anything hashes us (frozen dataclass:
        # object.__setattr__ is the sanctioned idiom).  JSON round-trips
        # deliver lists where the canonical form is tuples, and rows set on
        # a non-grid fabric describe the same machine as rows unset; both
        # must serialize identically or cache keys split on phantom state.
        # Unconditional: an empty list from JSON must become () too, or
        # the restored config compares unequal to the one that was cached.
        object.__setattr__(self, "link_profile",
                           _norm_link_profile(self.link_profile))
        object.__setattr__(self, "fault_links",
                           _norm_fault_links(self.fault_links))
        object.__setattr__(self, "fault_units",
                           _norm_fault_units(self.fault_units))
        if self.topo_rows > 0:
            # negative rows stay as-is for validate() to reject.
            from repro.sim.topo.regular import TOPOLOGIES

            cls = TOPOLOGIES.get(self.topology)
            if cls is not None and not cls.GRID:
                object.__setattr__(self, "topo_rows", 0)

    # ------------------------------------------------------------------
    # Derived values
    # ------------------------------------------------------------------
    @property
    def total_cores(self) -> int:
        return self.num_units * self.cores_per_unit

    @property
    def client_contexts_per_unit(self) -> int:
        """Client hardware thread contexts per unit (what SEs see)."""
        return self.client_cores_per_unit * self.threads_per_core

    @property
    def total_clients(self) -> int:
        return self.num_units * self.client_contexts_per_unit

    @property
    def link_latency_cycles(self) -> int:
        return core_cycles_from_ns(self.link_latency_ns)

    @property
    def link_bytes_per_cycle(self) -> float:
        # GB/s -> bytes/ns -> bytes/core-cycle (2.5 cycles per ns).
        return self.link_bandwidth_gbps / 2.5

    def with_(self, **changes) -> "SystemConfig":
        """Functional update, e.g. ``cfg.with_(num_units=2)``."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    # Stable serialization (the sweep runner's cache key depends on it)
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict:
        """Plain-data dict of every field, nested dataclasses included.

        The output is JSON-serializable and covers *all* configuration
        state, so two configs with any differing field (including nested
        ``memory``/``energy`` parameters) serialize differently.
        """
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "SystemConfig":
        """Inverse of :meth:`as_dict`."""
        payload = dict(data)
        if isinstance(payload.get("memory"), dict):
            payload["memory"] = DramTiming(**payload["memory"])
        if isinstance(payload.get("energy"), dict):
            payload["energy"] = EnergyParams(**payload["energy"])
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown SystemConfig fields: {sorted(unknown)}")
        return cls(**payload)

    def stable_hash(self) -> str:
        """Hex digest stable across processes and interpreter launches."""
        canonical = json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def validate(self) -> None:
        # imported here: repro.sim.topo has no module-level config import,
        # but keeping this lazy makes the layering obvious and cycle-proof.
        from repro.sim.topo import build_topology
        from repro.sim.topo.policies import POLICIES

        if self.num_units < 1:
            raise ValueError("need at least one NDP unit")
        if self.topo_rows < 0:
            raise ValueError("topo_rows must be non-negative")
        # raises for unknown topology names (and, for grid fabrics, rows
        # that don't divide num_units).  Non-grid fabrics can't reach here
        # with rows set: __post_init__ normalized them to 0.
        build_topology(self)
        if self.routing_policy not in POLICIES:
            raise ValueError(
                f"unknown routing_policy {self.routing_policy!r}; choose "
                f"from {sorted(POLICIES)}"
            )
        self._validate_fabric_overrides()
        if not 0 < self.client_cores_per_unit <= self.cores_per_unit:
            raise ValueError("client cores must be in (0, cores_per_unit]")
        if self.threads_per_core < 1:
            raise ValueError("need at least one hardware thread context")
        if self.st_entries < 1:
            raise ValueError("ST needs at least one entry")
        if self.indexing_counters < 1:
            raise ValueError("need at least one indexing counter")
        if self.overflow_target not in ("memory", "shared_cache"):
            raise ValueError(
                "overflow_target must be 'memory' or 'shared_cache', "
                f"got {self.overflow_target!r}"
            )
        if self.shared_cache_hit_cycles < 1:
            raise ValueError("shared-cache latency must be positive")
        if self.async_issue_cycles < 1:
            raise ValueError("async issue cost must be at least one cycle")
        if self.l1_size_bytes % (self.l1_ways * self.cache_line_bytes):
            raise ValueError("L1 size must be a multiple of ways*line")
        self._validate_timing_and_seeds()

    def _validate_timing_and_seeds(self) -> None:
        """Range/type checks for the remaining knobs (RP003 coverage).

        Every field gets at least a sanity check here so a typo'd override
        (negative latency, float seed) fails at construction instead of
        producing a silently wrong simulation.
        """
        if not isinstance(self.memory, DramTiming):
            raise ValueError("memory must be a DramTiming instance")
        if not isinstance(self.energy, EnergyParams):
            raise ValueError("energy must be an EnergyParams instance")
        if self.unit_memory_bytes < self.cache_line_bytes:
            raise ValueError("unit memory must hold at least one cache line")
        if self.l1_hit_cycles < 1:
            raise ValueError("L1 hit latency must be at least one cycle")
        if self.hop_cycles < 0 or self.arbiter_cycles < 0:
            raise ValueError("hop/arbiter cycle costs must be non-negative")
        if self.local_hops < 0:
            raise ValueError("local_hops must be non-negative")
        if self.crossbar_bytes_per_cycle <= 0:
            raise ValueError("crossbar bandwidth must be positive")
        if self.link_latency_ns < 0:
            raise ValueError("link_latency_ns must be non-negative")
        if self.link_bandwidth_gbps <= 0:
            raise ValueError("link_bandwidth_gbps must be positive")
        if self.se_service_se_cycles < 0:
            raise ValueError("se_service_se_cycles must be non-negative")
        if self.fairness_threshold < 0:
            raise ValueError("fairness_threshold must be >= 0 (0 disables)")
        if self.spin_backoff_cycles < 0:
            raise ValueError("spin_backoff_cycles must be non-negative")
        if self.server_handler_instructions < 0:
            raise ValueError("server handler instruction count must be >= 0")
        if self.server_handler_accesses < 0:
            raise ValueError("server handler access count must be >= 0")
        if not isinstance(self.elide_waits, bool):
            raise ValueError("elide_waits must be a bool")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ValueError("seed must be an int")
        if not isinstance(self.fault_seed, int) \
                or isinstance(self.fault_seed, bool):
            raise ValueError("fault_seed must be an int")

    def _validate_fabric_overrides(self) -> None:
        """Shape/range checks for link_profile and the fault fields.

        Whether a profiled or faulted channel physically exists in the
        chosen fabric is checked where the channel set is known — by the
        :class:`~repro.sim.network.Interconnect` (profiles) and
        :class:`~repro.sim.topo.faults.FaultPlan` (faults).
        """
        n = self.num_units
        if not 0.0 <= self.fault_link_rate <= 1.0:
            raise ValueError(
                f"fault_link_rate must be in [0, 1], got {self.fault_link_rate}"
            )
        if not 0.0 <= self.fault_transient_rate <= 1.0:
            raise ValueError(
                "fault_transient_rate must be in [0, 1], got "
                f"{self.fault_transient_rate}"
            )
        if self.fault_window_cycles < 1:
            raise ValueError("fault_window_cycles must be positive")
        if self.fault_repair_cycles < 1:
            raise ValueError("fault_repair_cycles must be positive")
        seen = set()
        for src, dst, gbps, lat in self.link_profile:
            if src == dst or not (0 <= src < n and 0 <= dst < n):
                raise ValueError(
                    f"link_profile channel ({src}, {dst}) is not an ordered "
                    f"pair of distinct units in [0, {n})"
                )
            if (src, dst) in seen:
                raise ValueError(
                    f"duplicate link_profile entry for channel ({src}, {dst})"
                )
            seen.add((src, dst))
            if gbps is None and lat is None:
                raise ValueError(
                    f"link_profile entry for ({src}, {dst}) overrides nothing"
                )
            if gbps is not None and gbps <= 0:
                raise ValueError("link_profile bandwidth must be positive")
            if lat is not None and lat < 0:
                raise ValueError("link_profile latency must be non-negative")
        for src, dst, at, down in self.fault_links:
            if src == dst or not (0 <= src < n and 0 <= dst < n):
                raise ValueError(
                    f"fault_links channel ({src}, {dst}) is not an ordered "
                    f"pair of distinct units in [0, {n})"
                )
            if at < 0 or down < 0:
                raise ValueError("fault times and durations must be >= 0")
        for unit, at, down in self.fault_units:
            if not 0 <= unit < n:
                raise ValueError(f"fault_units unit {unit} not in [0, {n})")
            if at < 0 or down < 0:
                raise ValueError("fault times and durations must be >= 0")


def ndp_2_5d(**overrides) -> SystemConfig:
    """The paper's default 2.5D NDP configuration (HBM)."""
    return SystemConfig(memory=HBM).with_(**overrides) if overrides else SystemConfig(memory=HBM)


def ndp_3d(**overrides) -> SystemConfig:
    """3D NDP configuration (HMC logic layer)."""
    return SystemConfig(memory=HMC).with_(**overrides)


def ndp_2d(**overrides) -> SystemConfig:
    """2D NDP configuration (DDR4 DIMMs)."""
    return SystemConfig(memory=DDR4).with_(**overrides)


def ndp_mesh(**overrides) -> SystemConfig:
    """16-unit HBM NDP with a 4x4 mesh fabric (topology-subsystem showcase).

    Same per-unit parameters as :func:`ndp_2_5d`, but the inter-unit
    traffic crosses a routed mesh instead of dedicated pairwise channels,
    so cross-unit latency depends on placement and load.

    Shape caveat: with ``topo_rows`` unset the grid is the squarest
    factorization of ``num_units`` (16 -> 4x4).  A *prime* ``num_units``
    has no non-trivial factorization, so
    :func:`~repro.sim.topo.mesh_shape` degenerates to a 1xN line — twice
    the diameter of a near-square grid — and emits a ``RuntimeWarning``
    rather than failing.  Pick a composite unit count (or pass
    ``topo_rows``) when the mesh geometry matters.
    """
    cfg = SystemConfig(memory=HBM, num_units=16, topology="mesh2d")
    return cfg.with_(**overrides) if overrides else cfg


def cpu_numa(**overrides) -> SystemConfig:
    """Two-socket CPU stand-in used for the Table 1 substitution.

    A "unit" models a socket of 14 cores; inter-unit link latency models the
    QPI/UPI socket crossing.  Caches are bigger and coherent (the coherence
    substrate runs on top).
    """
    cfg = SystemConfig(
        num_units=2,
        cores_per_unit=14,
        client_cores_per_unit=14,
        memory=DDR4,
        l1_size_bytes=32 * 1024,
        l1_ways=8,
        link_latency_ns=80.0,
        link_bandwidth_gbps=38.4,
    )
    return cfg.with_(**overrides) if overrides else cfg


#: named base configurations a :class:`~repro.harness.specs.RunSpec` can
#: reference by string (keeps specs picklable and hash-stable).
PRESETS: Dict[str, Callable[..., SystemConfig]] = {
    "ndp_2_5d": ndp_2_5d,
    "ndp_3d": ndp_3d,
    "ndp_2d": ndp_2d,
    "ndp_mesh": ndp_mesh,
    "cpu_numa": cpu_numa,
}
