"""Hardware thread contexts sharing one NDP core (paper Sec. 4).

The paper notes that supporting multiple hardware thread contexts per NDP
core only requires widening SynCron's waiting lists to one bit per context
— each context already has a unique ID.  This module supplies the core-side
half of that statement: an :class:`IssuePort` modelling the single in-order
pipeline the contexts share.

Model — coarse-grained (switch-on-stall) multithreading, the realistic
choice for simple in-order NDP cores: every instruction must *issue*
through the port in arrival order; memory latency and synchronization
waits then run **off-port**, so while context A waits for DRAM or a lock
grant, context B issues its own instructions.  Compute sequences hold the
port for their full duration (a 1-IPC in-order pipeline has no spare
slots to interleave), so compute-bound siblings serialize — latency
hiding comes from overlapping *stalls*, not from sharing ALU cycles.

With one context per core the port never has a second client, arrival
order equals program order, and timing reduces to the single-threaded
model exactly (a property the test suite checks).
"""

from __future__ import annotations


class IssuePort:
    """The shared in-order pipeline of one physical NDP core."""

    __slots__ = ("next_free", "issues")

    def __init__(self) -> None:
        self.next_free = 0
        self.issues = 0

    def reserve(self, now: int, cycles: int) -> int:
        """Claim the pipeline for ``cycles`` starting no earlier than
        ``now``; returns the actual start time."""
        start = max(now, self.next_free)
        self.next_free = start + cycles
        self.issues += 1
        return start

    def wait_time(self, now: int) -> int:
        """Cycles a request arriving at ``now`` would stall before issuing."""
        return max(self.next_free - now, 0)
