"""Set-associative write-back L1 cache model.

Each NDP core has small private L1 I/D caches (Table 5: 16 KB, 2-way,
4-cycle, 64 B lines).  The paper assumes software-assisted coherence:
thread-private and shared read-only data are cacheable; shared read-write
data is *uncacheable* and always goes to memory.  Cacheability is therefore a
property of the access, decided by the workload, not the cache.

The model tracks tags with true LRU per set and returns hit/miss plus the
victim (for write-back accounting).  Data values are not stored — the
functional state of workloads lives in plain Python objects; the cache only
models *timing and traffic*.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional

from repro.sim.stats import SystemStats


@dataclass(slots=True)
class AccessResult:
    hit: bool
    #: line address of a dirty victim that must be written back, if any.
    writeback_line: Optional[int] = None


#: shared hit result: hits dominate and carry no victim, so one immutable
#: instance serves them all (callers only ever read the two fields).
_HIT = AccessResult(hit=True)


class L1Cache:
    """A private, set-associative, write-back, write-allocate cache."""

    __slots__ = ("line_bytes", "ways", "num_sets", "hit_cycles", "stats",
                 "_sets")

    def __init__(
        self,
        size_bytes: int,
        ways: int,
        line_bytes: int,
        stats: SystemStats,
        hit_cycles: int = 4,
    ):
        if size_bytes % (ways * line_bytes):
            raise ValueError("cache size must divide into ways * line size")
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = size_bytes // (ways * line_bytes)
        self.hit_cycles = hit_cycles
        self.stats = stats
        # set index -> OrderedDict(line_addr -> dirty flag); LRU at front.
        self._sets: Dict[int, OrderedDict] = {}

    # ------------------------------------------------------------------
    def _set_index(self, line: int) -> int:
        return line % self.num_sets

    def access(self, addr: int, is_write: bool) -> AccessResult:
        """Look up ``addr``; allocate on miss; return hit/miss + victim."""
        line = addr // self.line_bytes
        idx = self._set_index(line)
        cset = self._sets.setdefault(idx, OrderedDict())

        if line in cset:
            cset.move_to_end(line)
            if is_write:
                cset[line] = True
            self.stats.cache_hits += 1
            return _HIT

        self.stats.cache_misses += 1
        writeback = None
        if len(cset) >= self.ways:
            victim, dirty = cset.popitem(last=False)
            if dirty:
                writeback = victim
        cset[line] = is_write
        return AccessResult(hit=False, writeback_line=writeback)

    def contains(self, addr: int) -> bool:
        line = addr // self.line_bytes
        return line in self._sets.get(self._set_index(line), ())

    def invalidate(self, addr: int) -> bool:
        """Drop a line (software coherence / flush); returns True if present."""
        line = addr // self.line_bytes
        cset = self._sets.get(self._set_index(line))
        if cset and line in cset:
            del cset[line]
            return True
        return False

    def flush_all(self) -> int:
        """Invalidate everything; returns the number of lines dropped."""
        dropped = sum(len(s) for s in self._sets.values())
        self._sets.clear()
        return dropped

    @property
    def lines_resident(self) -> int:
        return sum(len(s) for s in self._sets.values())
