"""Tenant partitioning layer: the machine slice one co-running workload sees.

Multi-programmed execution (:mod:`repro.workloads.corun`) hosts several
independent *tenants* on one :class:`~repro.sim.system.NDPSystem`.  Each
tenant's workload is built unchanged against a :class:`TenantView` instead
of the full system: the view exposes the same surface workloads already use
(``cores``, ``config``, ``addrmap``, ``create_syncvar``) but restricted to
the tenant's core slice and unit set, with unit indices *remapped to a
logical 0..k-1 space* so per-unit placement logic (graph partitioning,
striped arrays, per-unit sync variables) works untouched on a slice of the
machine.

The interconnect, memory system, and synchronization mechanism stay shared —
that sharing is the whole point of co-run interference studies.  Allocation
goes through a :class:`TenantArena` facade that forwards to the system
:class:`~repro.sim.memmap.AddressMap` (so tenant arenas interleave in the
single physical address space) while tagging footprint per tenant, and every
synchronization variable a view creates is tagged with the tenant's
:class:`~repro.sim.stats.TenantStats` so SE-side service is attributable.

A view over *all* units with *all* cores is an identity mapping: it produces
bit-identical allocations, placements, and programs to building against the
system directly — the isolation property the co-run tests pin down.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.sim.stats import TenantStats
from repro.sim.syncif import SyncVar


class TenantCoreHandle:
    """A client core as seen from inside a tenant: logical unit id.

    Workload ``build`` methods only read identity attributes; anything else
    falls through to the physical core.
    """

    __slots__ = ("physical", "core_id", "unit_id", "local_id")

    def __init__(self, physical, logical_unit: int):
        self.physical = physical
        self.core_id = physical.core_id  # globally unique — program dict key
        self.unit_id = logical_unit
        self.local_id = physical.local_id

    def __getattr__(self, name):
        return getattr(self.physical, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TenantCoreHandle(core={self.core_id}, "
                f"logical_unit={self.unit_id})")


class TenantArena:
    """Tenant-tagged allocation facade over the system address map.

    Logical unit indices (0..k-1) map onto the tenant's physical units;
    allocations land in the shared bump allocator, so tenants interleave in
    physical memory exactly like co-located applications would.
    """

    def __init__(self, addrmap, units: Sequence[int], tstats: TenantStats):
        self._map = addrmap
        self.units = tuple(units)
        self.tstats = tstats
        self.num_units = len(self.units)
        self.unit_memory_bytes = addrmap.unit_memory_bytes
        self.line_bytes = addrmap.line_bytes
        self._unit_index = {u: i for i, u in enumerate(self.units)}

    # ------------------------------------------------------------------
    def physical_unit(self, unit: int) -> int:
        if not 0 <= unit < self.num_units:
            raise ValueError(
                f"no such tenant unit: {unit} (tenant owns {self.num_units})"
            )
        return self.units[unit]

    def unit_of(self, addr: int) -> int:
        """Logical unit owning ``addr`` (must lie in this tenant's units)."""
        physical = self._map.unit_of(addr)
        logical = self._unit_index.get(physical)
        if logical is None:
            raise ValueError(
                f"address {addr:#x} lives in unit {physical}, outside this "
                f"tenant's units {self.units}"
            )
        return logical

    def line_of(self, addr: int) -> int:
        return self._map.line_of(addr)

    def base_of(self, unit: int) -> int:
        return self._map.base_of(self.physical_unit(unit))

    # ------------------------------------------------------------------
    def alloc(self, unit: int, nbytes: int, align: int = 8) -> int:
        addr = self._map.alloc(self.physical_unit(unit), nbytes, align=align)
        self.tstats.bytes_allocated += nbytes
        return addr

    def alloc_line(self, unit: int) -> int:
        return self.alloc(unit, self.line_bytes, align=self.line_bytes)

    def alloc_array(self, unit: int, count: int, elem_bytes: int = 8) -> int:
        return self.alloc(unit, count * elem_bytes, align=self.line_bytes)

    def alloc_striped_array(self, count: int, elem_bytes: int = 8) -> List[int]:
        """Stripe across the *tenant's* units (same owned-slot sizing as
        :meth:`repro.sim.memmap.AddressMap.alloc_striped_array`)."""
        if count <= 0:
            raise ValueError("striped array needs a positive element count")
        base_slots, extra = divmod(count, self.num_units)
        bases: List[Optional[int]] = []
        for u in range(self.num_units):
            slots = base_slots + (1 if u < extra else 0)
            bases.append(self.alloc_array(u, slots, elem_bytes) if slots else None)
        return [
            bases[i % self.num_units] + (i // self.num_units) * elem_bytes
            for i in range(count)
        ]

    def bytes_used(self, unit: int) -> int:
        return self._map.bytes_used(self.physical_unit(unit))


class TenantView:
    """What one tenant's workload builds against: a slice of the machine.

    ``cores`` are handles over the tenant's physical cores with logical unit
    ids; ``config`` mirrors the system configuration with ``num_units``
    narrowed to the tenant's unit count (identical object when the tenant
    spans the whole machine, so the single-tenant path is bit-identical);
    ``create_syncvar`` round-robins over the tenant's units and tags every
    variable with the tenant for attribution.
    """

    def __init__(self, system, tstats: TenantStats, cores: Sequence,
                 units: Sequence[int]):
        self.system = system
        self.tstats = tstats
        self.units = tuple(units)
        if len(set(self.units)) != len(self.units):
            raise ValueError(f"duplicate units in tenant slice: {self.units}")
        self.physical_cores = list(cores)
        if not self.physical_cores:
            raise ValueError(f"tenant {tstats.name!r} has no cores")
        self._unit_index = {u: i for i, u in enumerate(self.units)}
        uncovered = {c.unit_id for c in self.physical_cores} - set(self.units)
        if uncovered:
            raise ValueError(
                f"tenant {tstats.name!r} has cores in units {sorted(uncovered)} "
                f"outside its unit slice {self.units}"
            )
        identity = self.units == tuple(range(system.config.num_units))
        self.config = (
            system.config if identity
            else system.config.with_(num_units=len(self.units))
        )
        self.addrmap = TenantArena(system.addrmap, self.units, tstats)
        self.cores = [
            TenantCoreHandle(c, self._unit_index[c.unit_id])
            for c in self.physical_cores
        ]
        self.sim = system.sim
        self.stats = system.stats
        self._next_var_unit = 0

    # ------------------------------------------------------------------
    @property
    def mechanism(self):
        return self.system.mechanism

    @property
    def mechanism_name(self) -> str:
        return self.system.mechanism_name

    @property
    def num_cores(self) -> int:
        return len(self.cores)

    def cores_in_unit(self, unit: int) -> List[TenantCoreHandle]:
        return [c for c in self.cores if c.unit_id == unit]

    # ------------------------------------------------------------------
    def create_syncvar(self, unit: Optional[int] = None, name: str = "") -> SyncVar:
        """Allocate a tenant-owned variable in a (logical) unit's memory."""
        if unit is None:
            unit = self._next_var_unit
            self._next_var_unit = (self._next_var_unit + 1) % len(self.units)
        if not 0 <= unit < len(self.units):
            raise ValueError(
                f"no such tenant unit: {unit} (tenant owns {len(self.units)})"
            )
        var = self.system.create_syncvar(unit=self.units[unit], name=name)
        var.owner = self.tstats
        self.tstats.bytes_allocated += self.system.addrmap.line_bytes
        return var

    def destroy_syncvar(self, var: SyncVar) -> None:
        self.system.destroy_syncvar(var)

    def run_programs(self, *_args, **_kwargs):
        raise RuntimeError(
            "tenant views never run programs; the co-run workload drives "
            "the shared system (see repro.workloads.corun)"
        )


def derive_units(cores: Sequence) -> Tuple[int, ...]:
    """Ordered distinct unit ids covered by a core slice."""
    units: List[int] = []
    seen = set()
    for core in cores:
        if core.unit_id not in seen:
            seen.add(core.unit_id)
            units.append(core.unit_id)
    return tuple(units)
