"""Interconnect models: per-unit crossbar and a routed inter-unit fabric.

Per Table 5 the paper models (i) a buffered crossbar inside each NDP unit
with a 1-cycle arbiter, 1-cycle hops and an **M/D/1** queueing model for
queueing latency, and (ii) serial inter-unit links with 12.8 GB/s per
direction and 40 ns latency per cache line.

We reproduce both:

- :class:`Crossbar` charges arbitration + hop latency plus an analytic M/D/1
  waiting time driven by a windowed estimate of the injected load.
- :class:`Link` is one reserved physical channel: propagation latency plus
  serialization at the configured bandwidth, with queueing emerging from
  the reservation (``next_free``) time.

Which physical channels exist — and which of them a ``src -> dst`` transfer
crosses — is decided by the pluggable :mod:`repro.sim.topo` fabric named by
``SystemConfig.topology``.  A remote transfer reserves every link on its
route *in sequence*, so shared channels contend and multi-hop distance
costs real cycles.  The default ``all_to_all`` fabric has a dedicated
channel per ordered unit pair and reproduces the pre-topology simulator
bit-identically.

Degraded and heterogeneous fabrics: ``SystemConfig.link_profile`` gives
individual channels their own bandwidth/latency, a
:class:`~repro.sim.topo.faults.FaultPlan` kills channels or unit routers
mid-run (see :meth:`Interconnect.fail_link`), and the configured
:mod:`routing policy <repro.sim.topo.policies>` decides how routes are
recomputed over the survivors.  The zero-fault, uniform-profile, static
path is the memoized pristine table — bit-identical to a fabric that has
none of this machinery.

Both components record traffic into :class:`~repro.sim.stats.SystemStats`
so the energy model and the Fig. 15 data-movement results need no extra
hooks; the fabric additionally counts ``link_bit_hops`` (bits x links
traversed) for per-hop link energy.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Set, Tuple

from repro.sim.clock import core_cycles_from_ns
from repro.sim.config import SystemConfig
from repro.sim.stats import SystemStats
from repro.sim.topo import (
    Channel,
    FabricPartitionedError,
    Topology,
    build_policy,
    build_topology,
    route_intact,
    unreachable_pairs,
)
from repro.telemetry import get_telemetry


class LoadEstimator:
    """Exponential moving average of injected bytes/cycle.

    Drives the M/D/1 waiting-time term.  ``tau`` is the averaging window in
    cycles; larger values smooth bursts.

    ``math.exp`` dominates the injection cost, and the elapsed-cycle argument
    repeats heavily (traffic is bursty, timestamps are integers), so decay
    factors are memoized per elapsed value.  The cache is bounded; elapsed
    intervals long enough that the decay underflows to exactly 0.0 short-cut
    without touching ``exp`` at all.  Values are bit-identical to the
    uncached computation, so simulated results do not change.
    """

    __slots__ = ("tau", "_rate", "_last_time", "_decay_cache", "_dead_elapsed")

    #: memoized decay factors are kept for at most this many distinct
    #: elapsed values (plenty for any real traffic pattern).
    _CACHE_LIMIT = 1 << 16

    def __init__(self, tau: float = 2000.0):
        self.tau = tau
        self._rate = 0.0
        self._last_time = 0
        self._decay_cache: Dict[int, float] = {}
        # exp(x) underflows to exactly 0.0 below ~ -745.2.
        self._dead_elapsed = int(746.0 * tau) + 1

    def inject(self, now: int, nbytes: int) -> None:
        elapsed = now - self._last_time
        if elapsed < 1:
            elapsed = 1
        if elapsed >= self._dead_elapsed:
            decay = 0.0
        else:
            cache = self._decay_cache
            decay = cache.get(elapsed)
            if decay is None:
                decay = math.exp(-elapsed / self.tau)
                if len(cache) < self._CACHE_LIMIT:
                    cache[elapsed] = decay
        # Spread the burst over the elapsed interval, then decay history.
        self._rate = self._rate * decay + (nbytes / elapsed) * (1.0 - decay)
        self._last_time = now

    def rate(self) -> float:
        return self._rate


class Crossbar:
    """Buffered crossbar inside one NDP unit."""

    __slots__ = ("config", "stats", "unit_id", "_load", "_bytes_per_cycle",
                 "_base_cycles", "_hop_cycles", "_arbiter_cycles",
                 "_local_hops", "_md1_rate", "_md1_rho", "_md1_denom")

    def __init__(self, config: SystemConfig, stats: SystemStats, unit_id: int):
        self.config = config
        self.stats = stats
        self.unit_id = unit_id
        self._load = LoadEstimator()
        # Hoisted config reads: these are dataclass attribute chains on the
        # hottest call in the interconnect.
        self._bytes_per_cycle = config.crossbar_bytes_per_cycle
        self._arbiter_cycles = config.arbiter_cycles
        self._hop_cycles = config.hop_cycles
        self._local_hops = config.local_hops
        self._base_cycles = config.arbiter_cycles + config.local_hops * config.hop_cycles
        # The M/D/1 utilization terms depend only on the estimator's rate.
        # The rate moves on most injections, but under steady traffic the
        # EMA reaches a bitwise fixed point (constant packet size/spacing),
        # after which these memoized terms are reused; results stay
        # bit-identical to recomputing from scratch either way.
        self._md1_rate = -1.0
        self._md1_rho = 0.0
        self._md1_denom = 2.0

    def traverse(self, now: int, nbytes: int, hops: Optional[int] = None) -> int:
        """Latency in cycles to move ``nbytes`` across the local crossbar."""
        if hops is not None and hops < 0:
            # reject before the load estimator / stats see the packet.
            raise ValueError(f"hop count must be non-negative, got {hops}")
        self._load.inject(now, nbytes)
        stats = self.stats
        stats.bytes_inside_units += nbytes
        tenant = stats.active
        if tenant is not None:
            tenant.bytes_inside_units += nbytes
        if hops is None:
            stats.local_bit_hops += nbytes * 8 * self._local_hops
            base = self._base_cycles
        else:
            stats.local_bit_hops += nbytes * 8 * hops
            base = self._arbiter_cycles + hops * self._hop_cycles
        return base + self._md1_wait(nbytes)

    def _md1_wait(self, nbytes: int) -> int:
        """M/D/1 mean waiting time: W = rho / (2*mu*(1-rho)).

        Service time of this packet is its serialization time at the crossbar
        bandwidth; utilization rho comes from the load estimator.  The
        rho-only terms are recomputed only when the rate actually changed
        (see :meth:`__init__`).
        """
        bpc = self._bytes_per_cycle
        service = max(nbytes / bpc, 1.0)
        rate = self._load._rate
        if rate != self._md1_rate:
            rho = min(rate / bpc, 0.95)
            self._md1_rho = rho
            self._md1_denom = 2.0 * (1.0 - rho)
            self._md1_rate = rate
        return int(self._md1_rho * service / self._md1_denom)

    @property
    def utilization(self) -> float:
        return min(self._load.rate() / self._bytes_per_cycle, 1.0)


class Link:
    """One serial physical channel of the inter-unit fabric."""

    __slots__ = ("config", "stats", "_next_free", "_bytes_per_cycle",
                 "_latency_cycles")

    def __init__(self, config: SystemConfig, stats: SystemStats,
                 bytes_per_cycle: Optional[float] = None,
                 latency_cycles: Optional[int] = None):
        self.config = config
        self.stats = stats
        self._next_free = 0
        # link_bytes_per_cycle / link_latency_cycles are @property chains on
        # the config dataclass; resolve them once.  A heterogeneous
        # link_profile hands individual channels their own values.
        self._bytes_per_cycle = (
            config.link_bytes_per_cycle if bytes_per_cycle is None
            else bytes_per_cycle
        )
        self._latency_cycles = (
            config.link_latency_cycles if latency_cycles is None
            else latency_cycles
        )

    def queue_delay(self, now: int) -> int:
        """Cycles a packet injected at ``now`` would wait behind earlier
        traffic (the load-aware policy's selection signal; read-only)."""
        wait = self._next_free - now
        return wait if wait > 0 else 0

    def reserve(self, now: int, nbytes: int) -> int:
        """Timing only: queue behind earlier packets, serialize, propagate.

        The routed fabric calls this once per link on a route; traffic
        accounting happens once per transfer in :class:`Interconnect`.
        """
        serialization = max(int(math.ceil(nbytes / self._bytes_per_cycle)), 1)
        start = max(now, self._next_free)
        self._next_free = start + serialization
        return (start - now) + serialization + self._latency_cycles

    def transfer(self, now: int, nbytes: int) -> int:
        """Reserve + account (the standalone single-link entry point).

        Keep the accounting here in lockstep with
        :meth:`Interconnect.remote_latency`, which charges the same
        counters once per routed transfer.
        """
        self.stats.bytes_across_units += nbytes
        self.stats.link_bit_hops += nbytes * 8
        tenant = self.stats.active
        if tenant is not None:
            tenant.bytes_across_units += nbytes
        return self.reserve(now, nbytes)


class Interconnect:
    """The whole fabric: one crossbar per unit, a routed link topology.

    The :class:`~repro.sim.topo.Topology` decides the physical channels and
    each pair's route; this class owns one :class:`Link` per channel (so
    routes that share a channel share its reservation queue) and memoizes
    each ordered pair's route as a tuple of Link objects for the hot path.

    Fault state lives here too: :meth:`fail_link` / :meth:`fail_unit`
    (driven by :meth:`FaultPlan.arm <repro.sim.topo.faults.FaultPlan.arm>`
    timers) mark channels/routers dead, invalidate the memoized routes, and
    let the configured routing policy recompute over the survivors.  The
    fabric stays on the policy path once the first fault lands
    (``_degraded`` is sticky) so downtime accounting and reroute detection
    stay deterministic across repair churn; a fault that disconnects live
    units raises :class:`FabricPartitionedError` at injection — loudly,
    never as a hang.
    """

    __slots__ = ("config", "stats", "crossbars", "topology", "_links",
                 "_routes", "_profiles", "_policy", "_adaptive", "_degraded",
                 "_dead_channels", "_dead_units", "_down_since", "_resolved")

    def __init__(self, config: SystemConfig, stats: SystemStats):
        self.config = config
        self.stats = stats
        self.crossbars = [Crossbar(config, stats, u) for u in range(config.num_units)]
        self.topology: Topology = build_topology(config)
        self._links: Dict[Channel, Link] = {}
        self._routes: Dict[Tuple[int, int], Tuple[Link, ...]] = {}
        self._profiles = self._build_profiles(config)
        self._policy = build_policy(config.routing_policy, self.topology, self)
        #: multipath policies resolve per transfer; single-path memoize.
        self._adaptive = self._policy.multipath
        #: sticky: flips on the first fault and stays on, moving the hot
        #: path from the pristine table to the policy layer for the rest of
        #: the run.  A non-static policy starts there — e.g. "degraded"
        #: reshapes routes around slow profiled links with nothing failed.
        self._degraded = self._policy.name != "static"
        self._dead_channels: Set[Channel] = set()
        self._dead_units: Set[int] = set()
        self._down_since: Dict[Channel, int] = {}
        #: (src, dst) -> ((links, extra_hops), ...) candidates under the
        #: policy; cleared whenever fabric state changes.
        self._resolved: Dict[Tuple[int, int], Tuple] = {}

    # ------------------------------------------------------------------
    # Heterogeneous link parameters
    # ------------------------------------------------------------------
    def _build_profiles(self, config: SystemConfig) -> Dict[Channel, Tuple[float, int]]:
        """channel -> (bytes/cycle, latency cycles) from the link profile."""
        if not config.link_profile:
            return {}
        valid = set(self.topology.channels())
        default_bpc = config.link_bytes_per_cycle
        default_lat = config.link_latency_cycles
        profiles: Dict[Channel, Tuple[float, int]] = {}
        for src, dst, gbps, lat_ns in config.link_profile:
            channel = (src, dst)
            if channel not in valid:
                raise ValueError(
                    f"link_profile channel {channel} does not exist in the "
                    f"{self.topology.name!r} fabric"
                )
            profiles[channel] = (
                # GB/s -> bytes/core-cycle, same conversion as the
                # SystemConfig.link_bytes_per_cycle property.
                default_bpc if gbps is None else gbps / 2.5,
                default_lat if lat_ns is None else core_cycles_from_ns(lat_ns),
            )
        return profiles

    def link_parameters(self, channel: Channel) -> Tuple[float, int]:
        """(bytes/cycle, latency cycles) of one channel, profile applied."""
        profile = self._profiles.get(channel)
        if profile is not None:
            return profile
        return self.config.link_bytes_per_cycle, self.config.link_latency_cycles

    def link_cost(self, channel: Channel) -> float:
        """Route cost of one channel for the degraded-shortest-path policy:
        propagation latency plus one cache line's serialization time."""
        bytes_per_cycle, latency = self.link_parameters(channel)
        return latency + self.config.cache_line_bytes / bytes_per_cycle

    def _link_for(self, channel: Channel) -> Link:
        link = self._links.get(channel)
        if link is None:
            bytes_per_cycle, latency = self.link_parameters(channel)
            link = Link(self.config, self.stats,
                        bytes_per_cycle=bytes_per_cycle,
                        latency_cycles=latency)
            self._links[channel] = link
        return link

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _route(self, src_unit: int, dst_unit: int) -> Tuple[Link, ...]:
        """Pristine route as Link objects, in order (memoized hot path)."""
        key = (src_unit, dst_unit)
        route = self._routes.get(key)
        if route is None:
            route = tuple(
                self._link_for(channel)
                for channel in self.topology.route(src_unit, dst_unit)
            )
            self._routes[key] = route
        return route

    def _resolve(self, key: Tuple[int, int]) -> Tuple:
        """Policy-layer route candidates for one pair (memoized).

        Counts a ``reroute`` (and emits telemetry) when the pristine route
        is severed by the current fault state — once per pair per fault
        epoch, since every fabric-state change clears the memo.
        """
        src_unit, dst_unit = key
        pristine = self.topology.route(src_unit, dst_unit)
        tel = get_telemetry()
        if tel.enabled:
            with tel.span("fabric.resolve", policy=self._policy.name):
                routes = self._policy.candidates(src_unit, dst_unit)
        else:
            routes = self._policy.candidates(src_unit, dst_unit)
        if (self._dead_channels or self._dead_units) and not route_intact(
                pristine, self._dead_channels, self._dead_units):
            self.stats.reroutes += 1
            if tel.enabled:
                tel.count("fabric.reroutes")
                tel.event("fabric.reroute", src=src_unit, dst=dst_unit,
                          pristine_hops=len(pristine),
                          detour_hops=len(routes[0]))
        pristine_hops = len(pristine)
        candidates = tuple(
            (
                tuple(self._link_for(channel) for channel in route),
                len(route) - pristine_hops if len(route) > pristine_hops else 0,
            )
            for route in routes
        )
        self._resolved[key] = candidates
        return candidates

    def _routed(self, src_unit: int, dst_unit: int, now: int) -> Tuple:
        """(links, extra_hops) for one transfer under the active policy."""
        candidates = self._resolved.get((src_unit, dst_unit))
        if candidates is None:
            candidates = self._resolve((src_unit, dst_unit))
        if len(candidates) == 1:
            return candidates[0]
        # Load-aware: pick the candidate with the least queued backlog at
        # injection time; ties keep enumeration (lexicographic) order.
        best = candidates[0]
        best_wait = -1
        for candidate in candidates:
            wait = 0
            for link in candidate[0]:
                wait += link.queue_delay(now)
            if best_wait < 0 or wait < best_wait:
                best, best_wait = candidate, wait
        return best

    def remote_hops(self, src_unit: int, dst_unit: int) -> int:
        """Physical links a ``src -> dst`` transfer crosses (0 if local).

        On a degraded or adaptive fabric this is the policy's primary
        route, so analytically-charged (elided) transfers account the same
        hop count real packets pay.
        """
        if src_unit == dst_unit:
            return 0
        if self._degraded or self._adaptive:
            candidates = self._resolved.get((src_unit, dst_unit))
            if candidates is None:
                candidates = self._resolve((src_unit, dst_unit))
            return len(candidates[0][0])
        return self.topology.hops(src_unit, dst_unit)

    # ------------------------------------------------------------------
    # Fault injection (FaultPlan timers and tests call these directly)
    # ------------------------------------------------------------------
    @property
    def dead_channels(self) -> Set[Channel]:
        return self._dead_channels

    @property
    def dead_units(self) -> Set[int]:
        return self._dead_units

    def _invalidate(self) -> None:
        self._routes.clear()
        self._resolved.clear()

    def _check_connected(self, now: int) -> None:
        gaps = unreachable_pairs(
            self.topology, self._dead_channels, self._dead_units)
        if gaps:
            raise FabricPartitionedError(
                f"fault at t={now} partitioned the {self.topology.name!r} "
                f"fabric: {len(gaps)} unreachable unit pairs (e.g. {gaps[:4]})"
            )

    def fail_link(self, channel: Channel, now: int = 0) -> None:
        """Kill one directed channel (idempotent while already down)."""
        channel = (channel[0], channel[1])
        if channel in self._dead_channels:
            return
        tel = get_telemetry()
        with tel.span("fabric.fault", kind="link"):
            self._dead_channels.add(channel)
            self._down_since[channel] = now
            self._degraded = True
            self._invalidate()
            if tel.enabled:
                tel.count("fabric.faults")
                tel.event("fabric.fault", kind="link", src=channel[0],
                          dst=channel[1], at=now)
            self._check_connected(now)

    def repair_link(self, channel: Channel, now: int = 0) -> None:
        """Bring a dead channel back; charges its downtime."""
        channel = (channel[0], channel[1])
        if channel not in self._dead_channels:
            return
        self._dead_channels.discard(channel)
        down_since = self._down_since.pop(channel)
        if now > down_since:
            self.stats.failed_link_cycles += now - down_since
        self._invalidate()
        tel = get_telemetry()
        if tel.enabled:
            tel.event("fabric.repair", kind="link", src=channel[0],
                      dst=channel[1], at=now, down=now - down_since)

    def fail_unit(self, unit: int, now: int = 0) -> None:
        """Kill one unit's router: no transit, but still a valid endpoint."""
        if unit in self._dead_units:
            return
        tel = get_telemetry()
        with tel.span("fabric.fault", kind="unit"):
            self._dead_units.add(unit)
            self._degraded = True
            self._invalidate()
            if tel.enabled:
                tel.count("fabric.faults")
                tel.event("fabric.fault", kind="unit", unit=unit, at=now)
            self._check_connected(now)

    def repair_unit(self, unit: int, now: int = 0) -> None:
        if unit not in self._dead_units:
            return
        self._dead_units.discard(unit)
        self._invalidate()
        tel = get_telemetry()
        if tel.enabled:
            tel.event("fabric.repair", kind="unit", unit=unit, at=now)

    def finalize_faults(self, now: int) -> None:
        """Charge downtime of links still dead at end of run (permanent
        faults never see a repair event; idempotent at a fixed ``now``)."""
        for channel, since in self._down_since.items():
            if now > since:
                self.stats.failed_link_cycles += now - since
                self._down_since[channel] = now

    # ------------------------------------------------------------------
    def local_latency(self, unit: int, now: int, nbytes: int) -> int:
        """Move a packet within ``unit`` (core <-> SE / memory controller)."""
        return self.crossbars[unit].traverse(now, nbytes)

    def remote_latency(self, src_unit: int, dst_unit: int, now: int, nbytes: int) -> int:
        """Move a packet between units: local xbar, routed links, remote xbar.

        Every physical link on the route is reserved in sequence — the
        packet cannot occupy hop *k+1* before it clears hop *k* — so both
        contention (shared channels) and distance (route length) shape the
        latency.  Payload bytes are counted once; ``link_bit_hops`` counts
        every traversed link for the energy model.
        """
        if src_unit == dst_unit:
            return self.local_latency(src_unit, now, nbytes)
        latency = self.crossbars[src_unit].traverse(now, nbytes)
        if self._degraded or self._adaptive:
            route, extra = self._routed(src_unit, dst_unit, now + latency)
            if extra:
                self.stats.detour_bit_hops += nbytes * 8 * extra
        else:
            route = self._route(src_unit, dst_unit)
        stats = self.stats
        stats.bytes_across_units += nbytes
        stats.link_bit_hops += nbytes * 8 * len(route)
        tenant = stats.active
        if tenant is not None:
            tenant.bytes_across_units += nbytes
        for link in route:
            latency += link.reserve(now + latency, nbytes)
        latency += self.crossbars[dst_unit].traverse(now + latency, nbytes)
        return latency

    def transfer_latency(self, src_unit: int, dst_unit: int, now: int, nbytes: int) -> int:
        """Generic entry point used by cores, SEs, and memory controllers."""
        if src_unit == dst_unit:
            return self.local_latency(src_unit, now, nbytes)
        return self.remote_latency(src_unit, dst_unit, now, nbytes)
