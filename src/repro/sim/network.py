"""Interconnect models: per-unit crossbar and inter-unit serial links.

Per Table 5 the paper models (i) a buffered crossbar inside each NDP unit
with a 1-cycle arbiter, 1-cycle hops and an **M/D/1** queueing model for
queueing latency, and (ii) serial inter-unit links with 12.8 GB/s per
direction and 40 ns latency per cache line.

We reproduce both:

- :class:`Crossbar` charges arbitration + hop latency plus an analytic M/D/1
  waiting time driven by a windowed estimate of the injected load.
- :class:`Link` is a reserved resource per ordered unit pair: propagation
  latency plus serialization at the configured bandwidth, with queueing
  emerging from the reservation (``next_free``) time.

Both record traffic into :class:`~repro.sim.stats.SystemStats` so the energy
model and the Fig. 15 data-movement results need no extra hooks.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

from repro.sim.config import SystemConfig
from repro.sim.stats import SystemStats


class LoadEstimator:
    """Exponential moving average of injected bytes/cycle.

    Drives the M/D/1 waiting-time term.  ``tau`` is the averaging window in
    cycles; larger values smooth bursts.
    """

    def __init__(self, tau: float = 2000.0):
        self.tau = tau
        self._rate = 0.0
        self._last_time = 0

    def inject(self, now: int, nbytes: int) -> None:
        elapsed = max(now - self._last_time, 1)
        decay = math.exp(-elapsed / self.tau)
        # Spread the burst over the elapsed interval, then decay history.
        self._rate = self._rate * decay + (nbytes / elapsed) * (1.0 - decay)
        self._last_time = now

    def rate(self) -> float:
        return self._rate


class Crossbar:
    """Buffered crossbar inside one NDP unit."""

    def __init__(self, config: SystemConfig, stats: SystemStats, unit_id: int):
        self.config = config
        self.stats = stats
        self.unit_id = unit_id
        self._load = LoadEstimator()

    def traverse(self, now: int, nbytes: int, hops: int = None) -> int:
        """Latency in cycles to move ``nbytes`` across the local crossbar."""
        cfg = self.config
        if hops is None:
            hops = cfg.local_hops
        self._load.inject(now, nbytes)
        self.stats.bytes_inside_units += nbytes
        self.stats.local_bit_hops += nbytes * 8 * hops

        base = cfg.arbiter_cycles + hops * cfg.hop_cycles
        return base + self._md1_wait(nbytes)

    def _md1_wait(self, nbytes: int) -> int:
        """M/D/1 mean waiting time: W = rho / (2*mu*(1-rho)).

        Service time of this packet is its serialization time at the crossbar
        bandwidth; utilization rho comes from the load estimator.
        """
        cfg = self.config
        service = max(nbytes / cfg.crossbar_bytes_per_cycle, 1.0)
        rho = min(self._load.rate() / cfg.crossbar_bytes_per_cycle, 0.95)
        wait = rho * service / (2.0 * (1.0 - rho))
        return int(wait)

    @property
    def utilization(self) -> float:
        return min(self._load.rate() / self.config.crossbar_bytes_per_cycle, 1.0)


class Link:
    """A serial inter-unit link, one reserved resource per direction."""

    def __init__(self, config: SystemConfig, stats: SystemStats):
        self.config = config
        self.stats = stats
        self._next_free = 0

    def transfer(self, now: int, nbytes: int) -> int:
        """Latency in cycles to push ``nbytes`` over this direction."""
        cfg = self.config
        serialization = max(int(math.ceil(nbytes / cfg.link_bytes_per_cycle)), 1)
        start = max(now, self._next_free)
        self._next_free = start + serialization
        self.stats.bytes_across_units += nbytes
        return (start - now) + serialization + cfg.link_latency_cycles


class Interconnect:
    """The whole fabric: one crossbar per unit, links between unit pairs."""

    def __init__(self, config: SystemConfig, stats: SystemStats):
        self.config = config
        self.stats = stats
        self.crossbars = [Crossbar(config, stats, u) for u in range(config.num_units)]
        self._links: Dict[Tuple[int, int], Link] = {}

    def _link(self, src_unit: int, dst_unit: int) -> Link:
        key = (src_unit, dst_unit)
        link = self._links.get(key)
        if link is None:
            link = Link(self.config, self.stats)
            self._links[key] = link
        return link

    # ------------------------------------------------------------------
    def local_latency(self, unit: int, now: int, nbytes: int) -> int:
        """Move a packet within ``unit`` (core <-> SE / memory controller)."""
        return self.crossbars[unit].traverse(now, nbytes)

    def remote_latency(self, src_unit: int, dst_unit: int, now: int, nbytes: int) -> int:
        """Move a packet between units: local xbar, link, remote xbar."""
        if src_unit == dst_unit:
            return self.local_latency(src_unit, now, nbytes)
        latency = self.crossbars[src_unit].traverse(now, nbytes)
        latency += self._link(src_unit, dst_unit).transfer(now + latency, nbytes)
        latency += self.crossbars[dst_unit].traverse(now + latency, nbytes)
        return latency

    def transfer_latency(self, src_unit: int, dst_unit: int, now: int, nbytes: int) -> int:
        """Generic entry point used by cores, SEs, and memory controllers."""
        if src_unit == dst_unit:
            return self.local_latency(src_unit, now, nbytes)
        return self.remote_latency(src_unit, dst_unit, now, nbytes)
