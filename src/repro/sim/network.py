"""Interconnect models: per-unit crossbar and a routed inter-unit fabric.

Per Table 5 the paper models (i) a buffered crossbar inside each NDP unit
with a 1-cycle arbiter, 1-cycle hops and an **M/D/1** queueing model for
queueing latency, and (ii) serial inter-unit links with 12.8 GB/s per
direction and 40 ns latency per cache line.

We reproduce both:

- :class:`Crossbar` charges arbitration + hop latency plus an analytic M/D/1
  waiting time driven by a windowed estimate of the injected load.
- :class:`Link` is one reserved physical channel: propagation latency plus
  serialization at the configured bandwidth, with queueing emerging from
  the reservation (``next_free``) time.

Which physical channels exist — and which of them a ``src -> dst`` transfer
crosses — is decided by the pluggable :mod:`repro.sim.topo` fabric named by
``SystemConfig.topology``.  A remote transfer reserves every link on its
route *in sequence*, so shared channels contend and multi-hop distance
costs real cycles.  The default ``all_to_all`` fabric has a dedicated
channel per ordered unit pair and reproduces the pre-topology simulator
bit-identically.

Both components record traffic into :class:`~repro.sim.stats.SystemStats`
so the energy model and the Fig. 15 data-movement results need no extra
hooks; the fabric additionally counts ``link_bit_hops`` (bits x links
traversed) for per-hop link energy.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from repro.sim.config import SystemConfig
from repro.sim.stats import SystemStats
from repro.sim.topo import Channel, Topology, build_topology


class LoadEstimator:
    """Exponential moving average of injected bytes/cycle.

    Drives the M/D/1 waiting-time term.  ``tau`` is the averaging window in
    cycles; larger values smooth bursts.

    ``math.exp`` dominates the injection cost, and the elapsed-cycle argument
    repeats heavily (traffic is bursty, timestamps are integers), so decay
    factors are memoized per elapsed value.  The cache is bounded; elapsed
    intervals long enough that the decay underflows to exactly 0.0 short-cut
    without touching ``exp`` at all.  Values are bit-identical to the
    uncached computation, so simulated results do not change.
    """

    __slots__ = ("tau", "_rate", "_last_time", "_decay_cache", "_dead_elapsed")

    #: memoized decay factors are kept for at most this many distinct
    #: elapsed values (plenty for any real traffic pattern).
    _CACHE_LIMIT = 1 << 16

    def __init__(self, tau: float = 2000.0):
        self.tau = tau
        self._rate = 0.0
        self._last_time = 0
        self._decay_cache: Dict[int, float] = {}
        # exp(x) underflows to exactly 0.0 below ~ -745.2.
        self._dead_elapsed = int(746.0 * tau) + 1

    def inject(self, now: int, nbytes: int) -> None:
        elapsed = now - self._last_time
        if elapsed < 1:
            elapsed = 1
        if elapsed >= self._dead_elapsed:
            decay = 0.0
        else:
            cache = self._decay_cache
            decay = cache.get(elapsed)
            if decay is None:
                decay = math.exp(-elapsed / self.tau)
                if len(cache) < self._CACHE_LIMIT:
                    cache[elapsed] = decay
        # Spread the burst over the elapsed interval, then decay history.
        self._rate = self._rate * decay + (nbytes / elapsed) * (1.0 - decay)
        self._last_time = now

    def rate(self) -> float:
        return self._rate


class Crossbar:
    """Buffered crossbar inside one NDP unit."""

    __slots__ = ("config", "stats", "unit_id", "_load", "_bytes_per_cycle",
                 "_base_cycles", "_hop_cycles", "_arbiter_cycles",
                 "_local_hops", "_md1_rate", "_md1_rho", "_md1_denom")

    def __init__(self, config: SystemConfig, stats: SystemStats, unit_id: int):
        self.config = config
        self.stats = stats
        self.unit_id = unit_id
        self._load = LoadEstimator()
        # Hoisted config reads: these are dataclass attribute chains on the
        # hottest call in the interconnect.
        self._bytes_per_cycle = config.crossbar_bytes_per_cycle
        self._arbiter_cycles = config.arbiter_cycles
        self._hop_cycles = config.hop_cycles
        self._local_hops = config.local_hops
        self._base_cycles = config.arbiter_cycles + config.local_hops * config.hop_cycles
        # The M/D/1 utilization terms depend only on the estimator's rate.
        # The rate moves on most injections, but under steady traffic the
        # EMA reaches a bitwise fixed point (constant packet size/spacing),
        # after which these memoized terms are reused; results stay
        # bit-identical to recomputing from scratch either way.
        self._md1_rate = -1.0
        self._md1_rho = 0.0
        self._md1_denom = 2.0

    def traverse(self, now: int, nbytes: int, hops: Optional[int] = None) -> int:
        """Latency in cycles to move ``nbytes`` across the local crossbar."""
        if hops is not None and hops < 0:
            # reject before the load estimator / stats see the packet.
            raise ValueError(f"hop count must be non-negative, got {hops}")
        self._load.inject(now, nbytes)
        stats = self.stats
        stats.bytes_inside_units += nbytes
        tenant = stats.active
        if tenant is not None:
            tenant.bytes_inside_units += nbytes
        if hops is None:
            stats.local_bit_hops += nbytes * 8 * self._local_hops
            base = self._base_cycles
        else:
            stats.local_bit_hops += nbytes * 8 * hops
            base = self._arbiter_cycles + hops * self._hop_cycles
        return base + self._md1_wait(nbytes)

    def _md1_wait(self, nbytes: int) -> int:
        """M/D/1 mean waiting time: W = rho / (2*mu*(1-rho)).

        Service time of this packet is its serialization time at the crossbar
        bandwidth; utilization rho comes from the load estimator.  The
        rho-only terms are recomputed only when the rate actually changed
        (see :meth:`__init__`).
        """
        bpc = self._bytes_per_cycle
        service = max(nbytes / bpc, 1.0)
        rate = self._load._rate
        if rate != self._md1_rate:
            rho = min(rate / bpc, 0.95)
            self._md1_rho = rho
            self._md1_denom = 2.0 * (1.0 - rho)
            self._md1_rate = rate
        return int(self._md1_rho * service / self._md1_denom)

    @property
    def utilization(self) -> float:
        return min(self._load.rate() / self._bytes_per_cycle, 1.0)


class Link:
    """One serial physical channel of the inter-unit fabric."""

    __slots__ = ("config", "stats", "_next_free", "_bytes_per_cycle",
                 "_latency_cycles")

    def __init__(self, config: SystemConfig, stats: SystemStats):
        self.config = config
        self.stats = stats
        self._next_free = 0
        # link_bytes_per_cycle / link_latency_cycles are @property chains on
        # the config dataclass; resolve them once.
        self._bytes_per_cycle = config.link_bytes_per_cycle
        self._latency_cycles = config.link_latency_cycles

    def reserve(self, now: int, nbytes: int) -> int:
        """Timing only: queue behind earlier packets, serialize, propagate.

        The routed fabric calls this once per link on a route; traffic
        accounting happens once per transfer in :class:`Interconnect`.
        """
        serialization = max(int(math.ceil(nbytes / self._bytes_per_cycle)), 1)
        start = max(now, self._next_free)
        self._next_free = start + serialization
        return (start - now) + serialization + self._latency_cycles

    def transfer(self, now: int, nbytes: int) -> int:
        """Reserve + account (the standalone single-link entry point).

        Keep the accounting here in lockstep with
        :meth:`Interconnect.remote_latency`, which charges the same
        counters once per routed transfer.
        """
        self.stats.bytes_across_units += nbytes
        self.stats.link_bit_hops += nbytes * 8
        tenant = self.stats.active
        if tenant is not None:
            tenant.bytes_across_units += nbytes
        return self.reserve(now, nbytes)


class Interconnect:
    """The whole fabric: one crossbar per unit, a routed link topology.

    The :class:`~repro.sim.topo.Topology` decides the physical channels and
    each pair's route; this class owns one :class:`Link` per channel (so
    routes that share a channel share its reservation queue) and memoizes
    each ordered pair's route as a tuple of Link objects for the hot path.
    """

    __slots__ = ("config", "stats", "crossbars", "topology", "_links",
                 "_routes")

    def __init__(self, config: SystemConfig, stats: SystemStats):
        self.config = config
        self.stats = stats
        self.crossbars = [Crossbar(config, stats, u) for u in range(config.num_units)]
        self.topology: Topology = build_topology(config)
        self._links: Dict[Channel, Link] = {}
        self._routes: Dict[Tuple[int, int], Tuple[Link, ...]] = {}

    def _route(self, src_unit: int, dst_unit: int) -> Tuple[Link, ...]:
        """The Link objects a transfer crosses, in order (memoized)."""
        key = (src_unit, dst_unit)
        route = self._routes.get(key)
        if route is None:
            links = self._links
            resolved = []
            for channel in self.topology.route(src_unit, dst_unit):
                link = links.get(channel)
                if link is None:
                    link = Link(self.config, self.stats)
                    links[channel] = link
                resolved.append(link)
            route = tuple(resolved)
            self._routes[key] = route
        return route

    def remote_hops(self, src_unit: int, dst_unit: int) -> int:
        """Physical links a ``src -> dst`` transfer crosses (0 if local)."""
        return self.topology.hops(src_unit, dst_unit)

    # ------------------------------------------------------------------
    def local_latency(self, unit: int, now: int, nbytes: int) -> int:
        """Move a packet within ``unit`` (core <-> SE / memory controller)."""
        return self.crossbars[unit].traverse(now, nbytes)

    def remote_latency(self, src_unit: int, dst_unit: int, now: int, nbytes: int) -> int:
        """Move a packet between units: local xbar, routed links, remote xbar.

        Every physical link on the route is reserved in sequence — the
        packet cannot occupy hop *k+1* before it clears hop *k* — so both
        contention (shared channels) and distance (route length) shape the
        latency.  Payload bytes are counted once; ``link_bit_hops`` counts
        every traversed link for the energy model.
        """
        if src_unit == dst_unit:
            return self.local_latency(src_unit, now, nbytes)
        latency = self.crossbars[src_unit].traverse(now, nbytes)
        route = self._route(src_unit, dst_unit)
        stats = self.stats
        stats.bytes_across_units += nbytes
        stats.link_bit_hops += nbytes * 8 * len(route)
        tenant = stats.active
        if tenant is not None:
            tenant.bytes_across_units += nbytes
        for link in route:
            latency += link.reserve(now + latency, nbytes)
        latency += self.crossbars[dst_unit].traverse(now + latency, nbytes)
        return latency

    def transfer_latency(self, src_unit: int, dst_unit: int, now: int, nbytes: int) -> int:
        """Generic entry point used by cores, SEs, and memory controllers."""
        if src_unit == dst_unit:
            return self.local_latency(src_unit, now, nbytes)
        return self.remote_latency(src_unit, dst_unit, now, nbytes)
