"""Whole-system assembly: units, cores, memory, network, mechanism.

:class:`NDPSystem` wires together everything in :mod:`repro.sim` and attaches
one synchronization mechanism chosen by name:

- ``"syncron"``      — the paper's mechanism (SE per unit, hierarchical).
- ``"syncron_flat"`` — SynCron's flat variant (Sec. 6.7.1 ablation).
- ``"central"``      — one server core for the whole system (Tesseract-like).
- ``"hier"``         — one server core per unit (Gao et al.-like).
- ``"ideal"``        — zero-overhead synchronization.
- ``"syncron_central_ovrfl"`` / ``"syncron_distrib_ovrfl"`` — MiSAR-style
  non-integrated overflow variants (Fig. 23).
- ``"rmw_spin"``     — spin-wait over remote atomic units (Sec. 2.2.1).
- ``"bakery"``       — Lamport-bakery software baseline (Sec. 2.2.1).

Mechanism classes are imported lazily to keep the package layering acyclic.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from repro.sim.cache import L1Cache
from repro.sim.config import SystemConfig
from repro.sim.core import NDPCore
from repro.sim.dram import DramDevice
from repro.sim.engine import Simulator
from repro.sim.memmap import AddressMap
from repro.sim.memsys import MemorySystem
from repro.sim.network import Interconnect
from repro.sim.smt import IssuePort
from repro.sim.stats import SystemStats
from repro.sim.syncif import SyncVar
from repro.analysis.sanitizer import sanitizer_active
from repro.sim.topo.faults import FaultPlan
from repro.telemetry import get_telemetry


def _mechanism_registry() -> Dict[str, Callable]:
    """Name -> factory; imported lazily (sync/core packages import sim)."""
    from repro.core.engine import SynCronMechanism
    from repro.sync.bakery import BakeryMechanism
    from repro.sync.central import CentralMechanism
    from repro.sync.flat import FlatSynCronMechanism
    from repro.sync.hier import HierMechanism
    from repro.sync.ideal import IdealMechanism
    from repro.sync.overflow_alt import (
        SynCronCentralOverflowMechanism,
        SynCronDistribOverflowMechanism,
    )
    from repro.sync.remote_atomics import RemoteAtomicsMechanism

    return {
        "syncron": SynCronMechanism,
        "syncron_flat": FlatSynCronMechanism,
        "central": CentralMechanism,
        "hier": HierMechanism,
        "ideal": IdealMechanism,
        "syncron_central_ovrfl": SynCronCentralOverflowMechanism,
        "syncron_distrib_ovrfl": SynCronDistribOverflowMechanism,
        "rmw_spin": RemoteAtomicsMechanism,
        "bakery": BakeryMechanism,
    }


MECHANISM_NAMES = (
    "syncron",
    "syncron_flat",
    "central",
    "hier",
    "ideal",
    "syncron_central_ovrfl",
    "syncron_distrib_ovrfl",
    "rmw_spin",
    "bakery",
)


class NDPSystem:
    """A simulated NDP system plus its synchronization mechanism."""

    def __init__(self, config: SystemConfig, mechanism: str = "syncron"):
        config.validate()
        self.config = config
        self.sim = Simulator(elide_waits=config.elide_waits)
        if get_telemetry().enabled:
            # Telemetry session active: profile the kernel so RunMetrics
            # gains the reserved telemetry.* wall-clock keys.  Simulated
            # physics is unaffected (see Simulator.enable_profile).
            self.sim.enable_profile()
        if sanitizer_active():
            # Determinism-sanitizer session active (repro run --sanitize):
            # record per-cycle access sets and flag same-cycle ordering
            # hazards.  Observational only (see repro.analysis.sanitizer).
            self.sim.enable_sanitizer()
        self.stats = SystemStats()
        self.addrmap = AddressMap(
            config.num_units, config.unit_memory_bytes, config.cache_line_bytes
        )
        self.interconnect = Interconnect(config, self.stats)
        # The failure schedule is fixed before the first cycle; arming turns
        # it into simulator timers that hit the interconnect mid-run.  The
        # default (empty) plan costs nothing and arms nothing.
        self.fault_plan = FaultPlan.from_config(config, self.interconnect.topology)
        if self.fault_plan.events:
            self.fault_plan.arm(self.sim, self.interconnect)
        self.drams = [
            DramDevice(config.memory, self.stats, unit_id=u)
            for u in range(config.num_units)
        ]
        self.memsys = MemorySystem(
            config, self.stats, self.interconnect, self.drams, self.addrmap
        )

        self.cores: List[NDPCore] = []
        for unit in range(config.num_units):
            for local_slot in range(config.client_cores_per_unit):
                # Contexts of one physical core share its L1 and pipeline
                # (Sec. 4 SMT note); with one context the port is omitted
                # so timing reduces to the single-threaded model exactly.
                l1 = L1Cache(
                    config.l1_size_bytes,
                    config.l1_ways,
                    config.cache_line_bytes,
                    self.stats,
                    hit_cycles=config.l1_hit_cycles,
                )
                port = IssuePort() if config.threads_per_core > 1 else None
                for context in range(config.threads_per_core):
                    core = NDPCore(
                        sim=self.sim,
                        core_id=len(self.cores),
                        unit_id=unit,
                        local_id=(
                            local_slot * config.threads_per_core + context
                        ),
                        l1=l1,
                        memsys=self.memsys,
                        mechanism=None,  # set below, once it exists
                        config=config,
                        port=port,
                    )
                    self.cores.append(core)

        registry = _mechanism_registry()
        if mechanism not in registry:
            raise ValueError(
                f"unknown mechanism {mechanism!r}; choose from {sorted(registry)}"
            )
        self.mechanism_name = mechanism
        self.mechanism = registry[mechanism](self)
        for core in self.cores:
            core.mechanism = self.mechanism

        self._next_var_unit = 0

    # ------------------------------------------------------------------
    # Topology helpers
    # ------------------------------------------------------------------
    def cores_in_unit(self, unit: int) -> List[NDPCore]:
        return [c for c in self.cores if c.unit_id == unit]

    @property
    def num_cores(self) -> int:
        return len(self.cores)

    # ------------------------------------------------------------------
    # Synchronization variables (Table 2: create_syncvar / destroy_syncvar)
    # ------------------------------------------------------------------
    def create_syncvar(self, unit: Optional[int] = None, name: str = "") -> SyncVar:
        """Allocate a synchronization variable in ``unit``'s memory.

        The owning unit determines the Master SE.  Without an explicit unit,
        variables round-robin across units (the driver's default placement).
        """
        if unit is None:
            unit = self._next_var_unit
            self._next_var_unit = (self._next_var_unit + 1) % self.config.num_units
        addr = self.addrmap.alloc_line(unit)
        return SyncVar(addr=addr, unit=unit, name=name)

    def destroy_syncvar(self, var: SyncVar) -> None:
        """Release a variable (bump allocator: bookkeeping only)."""
        destroy = getattr(self.mechanism, "destroy_var", None)
        if destroy is not None:
            destroy(var)

    # ------------------------------------------------------------------
    # Running workloads
    # ------------------------------------------------------------------
    def run_programs(
        self,
        programs: Dict[int, Iterable],
        max_events: Optional[int] = None,
    ) -> int:
        """Run one program per core id; returns the makespan in cycles."""
        remaining = len(programs)
        if remaining == 0:
            return 0

        for core_id, program in programs.items():
            self.cores[core_id].run_program(iter(program))

        self.sim.run(max_events=max_events)
        unfinished = [
            cid for cid in programs if not self.cores[cid].finished
        ]
        if unfinished:
            raise RuntimeError(
                f"deadlock: cores {unfinished[:8]} never finished "
                f"(t={self.sim.now}, mechanism={self.mechanism_name})"
            )
        if self.fault_plan.events:
            # Permanent faults never see a repair; charge their downtime up
            # to the last simulated instant so failed_link_cycles is total.
            self.interconnect.finalize_faults(self.sim.now)
        return max(self.cores[cid].finish_time for cid in programs)
