"""Energy accounting (the Fig. 14 breakdown).

The paper computes energy by counting events in ZSim/Ramulator and applying
per-event constants (CACTI for caches/ST, Wolkotte et al. for the NoC, link
and HBM pJ/bit from prior work — all in Table 5).  We do the same: the
simulator counts events in :class:`~repro.sim.stats.SystemStats` and this
module converts them to a cache/network/memory breakdown in picojoules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.sim.config import SystemConfig
from repro.sim.stats import SystemStats


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy by component, in picojoules."""

    cache_pj: float
    network_pj: float
    memory_pj: float

    @property
    def total_pj(self) -> float:
        return self.cache_pj + self.network_pj + self.memory_pj

    def normalized(self, baseline: "EnergyBreakdown") -> Dict[str, float]:
        """Fractions of a baseline's total (how Fig. 14 plots bars)."""
        denom = baseline.total_pj or 1.0
        return {
            "cache": self.cache_pj / denom,
            "network": self.network_pj / denom,
            "memory": self.memory_pj / denom,
            "total": self.total_pj / denom,
        }


def compute_energy(stats: SystemStats, config: SystemConfig) -> EnergyBreakdown:
    """Convert counted events into the Fig. 14 cache/network/memory split."""
    e = config.energy
    cache_pj = stats.cache_hits * e.cache_hit_pj + stats.cache_misses * e.cache_miss_pj

    # Local NoC energy is per bit per hop; inter-unit link energy per bit
    # *per physical link traversed* — on the all-to-all fabric link_bit_hops
    # equals bytes_across_units * 8, so this reduces to the old per-byte
    # charge; routed fabrics (ring/mesh/torus) pay every hop.
    network_pj = (
        stats.local_bit_hops * e.local_network_pj_per_bit_hop
        + stats.link_bit_hops * e.link_pj_per_bit
    )

    line_bits = config.cache_line_bytes * 8
    memory_pj = (stats.dram_reads + stats.dram_writes) * line_bits * (
        config.memory.energy_pj_per_bit
    )
    return EnergyBreakdown(cache_pj=cache_pj, network_pj=network_pj, memory_pj=memory_pj)
