"""NDP-system simulation substrate.

This package is the stand-in for the paper's ZSim+Ramulator in-house
simulator: a deterministic discrete-event model of NDP units (in-order cores
with private L1s), per-unit crossbars with M/D/1 queueing, inter-unit serial
links, banked DRAM (HBM / HMC / DDR4), and event-counting energy/traffic
accounting.
"""

from repro.sim.config import (
    DDR4,
    HBM,
    HMC,
    MEMORY_TECHNOLOGIES,
    DramTiming,
    EnergyParams,
    SystemConfig,
    cpu_numa,
    ndp_2_5d,
    ndp_2d,
    ndp_3d,
    ndp_mesh,
)
from repro.sim.energy import EnergyBreakdown, compute_energy
from repro.sim.engine import Simulator, SimulationError
from repro.sim.program import (
    Batch,
    Compute,
    Load,
    RmwOp,
    Store,
    SyncAsyncOp,
    SyncOp,
    batch,
)
from repro.sim.smt import IssuePort
from repro.sim.stats import SystemStats, TenantStats
from repro.sim.syncif import SyncUsageError, SyncVar
from repro.sim.system import MECHANISM_NAMES, NDPSystem
from repro.sim.tenancy import TenantView
from repro.sim.trace import MessageTracer

__all__ = [
    "Batch",
    "IssuePort",
    "MessageTracer",
    "RmwOp",
    "batch",
    "DDR4",
    "HBM",
    "HMC",
    "MEMORY_TECHNOLOGIES",
    "MECHANISM_NAMES",
    "Compute",
    "DramTiming",
    "EnergyBreakdown",
    "EnergyParams",
    "Load",
    "NDPSystem",
    "Simulator",
    "SimulationError",
    "Store",
    "SyncAsyncOp",
    "SyncOp",
    "SyncUsageError",
    "SyncVar",
    "SystemConfig",
    "SystemStats",
    "TenantStats",
    "TenantView",
    "compute_energy",
    "cpu_numa",
    "ndp_2_5d",
    "ndp_2d",
    "ndp_3d",
    "ndp_mesh",
]
