"""Operation vocabulary for simulated core programs.

A *program* is a Python generator that yields operation objects; the core
model resolves each operation's latency and resumes the generator when it
completes.  Because the generator only advances when its previous operation
finishes, workload code can mutate shared Python state (the functional data
structure / graph / profile values) at exactly the simulated time its
synchronization allows — giving us both timing fidelity and checkable
functional results.

Operations:

- :class:`Compute` — ``n`` dataless instructions (1 IPC in-order core).
- :class:`Load` / :class:`Store` — a memory access to a physical address.
  ``cacheable=False`` models the paper's software-assisted coherence rule
  that shared read-write data bypasses the L1.
- :class:`SyncOp` — a blocking ``req_sync`` to the synchronization mechanism
  (lock_acquire, barrier_wait, sem_wait, cond_wait and their releases when
  the mechanism needs an ACK).
- :class:`SyncAsyncOp` — a non-blocking ``req_async`` (release-type
  semantics: the instruction commits once the message is issued).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


@dataclass(frozen=True)
class Compute:
    instructions: int

    def __post_init__(self):
        if self.instructions < 0:
            raise ValueError("instruction count must be non-negative")


@dataclass(frozen=True)
class Load:
    addr: int
    size: int = 8
    cacheable: bool = True


@dataclass(frozen=True)
class Store:
    addr: int
    size: int = 8
    cacheable: bool = True


# Primitive operation names understood by every mechanism implementation.
LOCK_ACQUIRE = "lock_acquire"
LOCK_RELEASE = "lock_release"
BARRIER_WAIT_WITHIN_UNIT = "barrier_wait_within_unit"
BARRIER_WAIT_ACROSS_UNITS = "barrier_wait_across_units"
SEM_WAIT = "sem_wait"
SEM_POST = "sem_post"
COND_WAIT = "cond_wait"
COND_SIGNAL = "cond_signal"
COND_BROADCAST = "cond_broadcast"
# Reader-writer locks (SynCron generality extension; cf. LCU in Sec. 4.5).
RW_READ_ACQUIRE = "rw_read_acquire"
RW_READ_RELEASE = "rw_read_release"
RW_WRITE_ACQUIRE = "rw_write_acquire"
RW_WRITE_RELEASE = "rw_write_release"

ACQUIRE_TYPE_OPS = frozenset(
    {
        LOCK_ACQUIRE,
        BARRIER_WAIT_WITHIN_UNIT,
        BARRIER_WAIT_ACROSS_UNITS,
        SEM_WAIT,
        COND_WAIT,
        RW_READ_ACQUIRE,
        RW_WRITE_ACQUIRE,
    }
)
RELEASE_TYPE_OPS = frozenset(
    {
        LOCK_RELEASE,
        SEM_POST,
        COND_SIGNAL,
        COND_BROADCAST,
        RW_READ_RELEASE,
        RW_WRITE_RELEASE,
    }
)
ALL_SYNC_OPS = ACQUIRE_TYPE_OPS | RELEASE_TYPE_OPS

#: primitive kind of each operation.  The first operation on a SyncVar pins
#: its kind; later operations must match (the single-use rule the real
#: ``create_syncvar`` API cannot even express — see
#: :meth:`repro.sim.syncif.MechanismBase._admit`, which every mechanism
#: funnels through).
OP_KINDS = {
    LOCK_ACQUIRE: "lock",
    LOCK_RELEASE: "lock",
    BARRIER_WAIT_WITHIN_UNIT: "barrier",
    BARRIER_WAIT_ACROSS_UNITS: "barrier",
    SEM_WAIT: "semaphore",
    SEM_POST: "semaphore",
    COND_WAIT: "condvar",
    COND_SIGNAL: "condvar",
    COND_BROADCAST: "condvar",
    RW_READ_ACQUIRE: "rwlock",
    RW_READ_RELEASE: "rwlock",
    RW_WRITE_ACQUIRE: "rwlock",
    RW_WRITE_RELEASE: "rwlock",
}


@dataclass(frozen=True)
class Batch:
    """A sequence of Compute/Load/Store ops resolved in one simulator event.

    The core charges each operation's latency back-to-back with a local time
    cursor and resumes once at the end.  This trades a small approximation
    (the batch's resource reservations are not interleaved with other cores
    at sub-batch granularity) for a large event-count reduction — essential
    for traversal-heavy workloads (graph edge scans, tree searches).
    Synchronization operations are not allowed inside a batch.
    """

    ops: tuple

    def __post_init__(self):
        for op in self.ops:
            if not isinstance(op, (Compute, Load, Store)):
                raise TypeError(
                    f"Batch only accepts Compute/Load/Store, got {op!r}"
                )


def batch(*ops) -> Batch:
    """Convenience constructor: ``yield batch(Load(a), Load(b), Compute(4))``."""
    return Batch(tuple(ops))


@dataclass(frozen=True)
class SyncOp:
    """Blocking synchronization request (``req_sync`` semantics)."""

    op: str
    var: Any  # a SyncVar from repro.sim.syncif
    info: int = 0

    def __post_init__(self):
        if self.op not in ALL_SYNC_OPS:
            raise ValueError(f"unknown sync op {self.op!r}")


@dataclass(frozen=True)
class SyncAsyncOp:
    """Non-blocking synchronization request (``req_async`` semantics)."""

    op: str
    var: Any
    info: int = 0

    def __post_init__(self):
        if self.op not in RELEASE_TYPE_OPS:
            raise ValueError(
                f"req_async is only valid for release-type ops, got {self.op!r}"
            )


#: atomic rmw opcodes the SE's lightweight ALU supports (Sec. 4.4.1).
RMW_OPS = (
    "fetch_add", "fetch_and", "fetch_or", "fetch_xor",
    "swap", "fetch_max", "fetch_min",
)


@dataclass(frozen=True)
class RmwOp:
    """An atomic read-modify-write executed at the Master SE (Sec. 4.4.1).

    The yielding program receives the *old* value (fetch semantics)::

        old = yield RmwOp("fetch_add", histogram_base + bin * 8, 1)

    Supported by every SE-based mechanism (the Master SE's ALU executes
    the operation), by Ideal (zero cost) and by the remote-atomics baseline
    (its atomic units are exactly this hardware); the bakery baseline has
    no rmw hardware by definition and rejects it.
    """

    op: str
    addr: int
    operand: int = 1

    def __post_init__(self):
        if self.op not in RMW_OPS:
            raise ValueError(f"unknown rmw op {self.op!r}; one of {RMW_OPS}")
        if self.addr < 0:
            raise ValueError("rmw address must be non-negative")
