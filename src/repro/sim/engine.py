"""Discrete-event simulation kernel.

The whole reproduction runs on a small, deterministic event-driven kernel:
callbacks scheduled at integer cycle timestamps (core-clock cycles at
2.5 GHz, see :mod:`repro.sim.clock`).  Components (cores, synchronization
engines, DRAM banks, links) are plain Python objects that schedule callbacks
on a shared :class:`Simulator`.

Determinism: events at the same timestamp fire in insertion order (a
monotonically increasing sequence number breaks ties), so a given seed always
produces the same execution.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised for kernel misuse (e.g., scheduling into the past)."""


class Simulator:
    """An event-driven simulator with an integer cycle clock.

    >>> sim = Simulator()
    >>> fired = []
    >>> sim.schedule(5, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [5]
    """

    def __init__(self) -> None:
        self.now: int = 0
        self._queue: List[Tuple[int, int, Callable[[], None]]] = []
        self._seq: int = 0
        self._events_processed: int = 0
        self._running: bool = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} cycles into the past")
        self.schedule_at(self.now + int(delay), callback)

    def schedule_at(self, time: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run at absolute cycle ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time}, current time is {self.now}"
            )
        heapq.heappush(self._queue, (int(time), self._seq, callback))
        self._seq += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the single earliest event.  Returns False if queue is empty."""
        if not self._queue:
            return False
        time, _seq, callback = heapq.heappop(self._queue)
        self.now = time
        self._events_processed += 1
        callback()
        return True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> None:
        """Run until the event queue drains.

        Args:
            until: stop once simulated time would pass this cycle (events at
                exactly ``until`` still execute).
            max_events: safety valve against livelock; raises if exceeded.
        """
        self._running = True
        processed = 0
        try:
            while self._queue:
                if until is not None and self._queue[0][0] > until:
                    self.now = until
                    break
                if max_events is not None and processed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} at t={self.now}; "
                        "likely livelock in a component model"
                    )
                self.step()
                processed += 1
        finally:
            self._running = False

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending_events(self) -> int:
        return len(self._queue)


class Process:
    """A resumable process driven by an external completion signal.

    Components that model cores wrap a generator: the generator yields
    *operation* objects, the owner resolves each operation's latency and calls
    :meth:`resume` (optionally passing a value back into the generator).
    """

    def __init__(self, generator: Any, on_finish: Optional[Callable[[], None]] = None):
        self.generator = generator
        self.on_finish = on_finish
        self.finished = False
        self.result: Any = None

    def resume(self, value: Any = None) -> Any:
        """Advance the generator; returns the next yielded operation.

        Returns ``None`` once the generator is exhausted (and fires
        ``on_finish`` exactly once).
        """
        if self.finished:
            return None
        try:
            return self.generator.send(value)
        except StopIteration as stop:
            self.finished = True
            self.result = getattr(stop, "value", None)
            if self.on_finish is not None:
                self.on_finish()
            return None
