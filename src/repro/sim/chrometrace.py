"""Chrome-trace export: visualize a simulated run in ``chrome://tracing``.

Converts a :class:`~repro.sim.trace.MessageTracer`'s records — and,
optionally, per-core execution spans — into the Trace Event Format JSON
that Chrome's tracer and `Perfetto <https://ui.perfetto.dev>`_ load
natively.  Each engine (SE / server core) becomes a track; every handled
message becomes a duration event whose length is the engine's service
time, so protocol behaviour (bursts, hierarchical hand-offs, overflow
storms) is visible at a glance.

Usage::

    tracer = MessageTracer(system)
    ... run programs ...
    write_chrome_trace("run.json", system, tracer)

Timestamps are simulated nanoseconds (cycles / 2.5 for the paper's
2.5 GHz cores), so absolute durations in the viewer read directly as
simulated time.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.sim.clock import CORE_CLOCK
from repro.sim.trace import MessageTracer, TraceRecord

#: trace-event "process" ids: one per engine family keeps tracks grouped.
ENGINE_PID = 1
CORE_PID = 2
KERNEL_PID = 3


def _ns(cycles: int) -> float:
    """Simulated core cycles -> simulated nanoseconds."""
    return cycles / CORE_CLOCK.ghz


def trace_events(
    system,
    tracer: MessageTracer,
    include_cores: bool = True,
) -> List[Dict]:
    """Build the Trace Event Format event list for one finished run."""
    events: List[Dict] = [
        {"name": "process_name", "ph": "M", "pid": ENGINE_PID,
         "args": {"name": "synchronization engines"}},
    ]
    if include_cores:
        events.append(
            {"name": "process_name", "ph": "M", "pid": CORE_PID,
             "args": {"name": "NDP cores"}}
        )

    engine_tids: Dict[str, int] = {}
    service_ns = _ns(_service_cycles(system))
    for record in tracer.records:
        tid = engine_tids.setdefault(record.engine, len(engine_tids))
        events.append({
            "name": record.opcode,
            "cat": _category(record),
            "ph": "X",
            "pid": ENGINE_PID,
            "tid": tid,
            "ts": _ns(record.time),
            "dur": max(service_ns, 0.001),
            "args": {
                "variable": record.variable,
                "core": record.core,
                "src_se": record.src_se,
            },
        })
    for engine, tid in engine_tids.items():
        events.append({
            "name": "thread_name", "ph": "M", "pid": ENGINE_PID, "tid": tid,
            "args": {"name": engine},
        })

    if include_cores:
        for core in system.cores:
            if core.finish_time is None:
                continue
            events.append({
                "name": f"core{core.core_id}",
                "cat": "execution",
                "ph": "X",
                "pid": CORE_PID,
                "tid": core.core_id,
                "ts": 0.0,
                "dur": _ns(core.finish_time),
                "args": {
                    "unit": core.unit_id,
                    "instructions": core.instructions_retired,
                    "sync_requests": core.sync_requests_issued,
                    "cycles_waiting_sync": core.cycles_waiting_sync,
                },
            })
            events.append({
                "name": "thread_name", "ph": "M", "pid": CORE_PID,
                "tid": core.core_id,
                "args": {"name": f"core {core.core_id} (unit {core.unit_id})"},
            })
    events.extend(_kernel_events(system))
    return events


def _kernel_events(system) -> List[Dict]:
    """Kernel track: counter samples + instant events at channel wakes.

    The elision kernel never materializes poll storms, so without this
    track they would be invisible in Perfetto.  Each
    :meth:`WaitChannel.signal` that woke waiters (recorded by the
    simulator's wake log, enabled by :class:`MessageTracer`) becomes an
    instant event, and the ``events_processed`` / ``elided_events``
    counters sampled at those moments (plus a final end-of-run sample)
    form two counter tracks.
    """
    sim = system.sim
    wake_log = sim.wake_log
    if wake_log is None:
        return []
    events: List[Dict] = [
        {"name": "process_name", "ph": "M", "pid": KERNEL_PID,
         "args": {"name": "simulation kernel"}},
    ]
    for cycle, channel, woken, polls, processed, elided in wake_log:
        ts = _ns(cycle)
        events.append({
            "name": "wake",
            "cat": "kernel",
            "ph": "i",
            "s": "p",  # process-scoped instant marker
            "pid": KERNEL_PID,
            "tid": 0,
            "ts": ts,
            "args": {"channel": channel or "(unnamed)",
                     "woken": woken, "polls_elided": polls},
        })
        events.append({
            "name": "kernel events",
            "ph": "C",
            "pid": KERNEL_PID,
            "ts": ts,
            "args": {"events_processed": processed,
                     "elided_events": elided},
        })
    # Final sample so the counter track spans the whole run.
    events.append({
        "name": "kernel events",
        "ph": "C",
        "pid": KERNEL_PID,
        "ts": _ns(sim.now),
        "args": {"events_processed": sim.events_processed,
                 "elided_events": sim.elided_events},
    })
    return events


def _service_cycles(system) -> int:
    engines = getattr(system.mechanism, "ses", None)
    if engines:
        return engines[0].service_cycles
    return 1


def _category(record: TraceRecord) -> str:
    name = record.opcode
    if name.endswith("_OVERFLOW") or name == "DECREASE_INDEXING_COUNTER":
        return "overflow"
    if name.endswith("_GLOBAL"):
        return "global"
    return "local"


def write_chrome_trace(
    path: str,
    system,
    tracer: MessageTracer,
    include_cores: bool = True,
    metadata: Optional[Dict] = None,
) -> int:
    """Write the run as Trace Event JSON; returns the event count."""
    events = trace_events(system, tracer, include_cores=include_cores)
    document = {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "mechanism": system.mechanism_name,
            "units": system.config.num_units,
            "cores": len(system.cores),
            **(metadata or {}),
        },
    }
    with open(path, "w") as handle:
        json.dump(document, handle)
    return len(events)
