"""Deterministic link/unit fault plans for the inter-unit fabric.

A :class:`FaultPlan` is the full failure schedule of one run, fixed before
the first simulated cycle: explicit faults listed in the config
(``fault_links`` / ``fault_units``) plus rate-derived faults drawn from a
seeded RNG over the fabric's channel set.  :meth:`FaultPlan.arm` turns the
schedule into :class:`~repro.sim.engine.Simulator` timers that call into
the :class:`~repro.sim.network.Interconnect` mid-run; the interconnect
invalidates its memoized routes and recomputes over the surviving channels.

Fault semantics:

- A **link fault** kills one directed physical channel.
- A **unit fault** kills a unit's *router*: the unit forwards no transit
  traffic, but stays a valid endpoint — its cores and memory still operate.
- ``down_cycles == 0`` means permanent; otherwise the fault is transient
  and repairs itself after that many cycles.

Determinism and partitions:

- The rate-derived schedule depends only on ``fault_seed`` + the fabric, so
  the same config always produces the same plan (cache keys stay sound).
- Rate-derived faults are *connectivity-guarded*: any drawn fault that
  would disconnect a live unit pair at its scheduled time is dropped (kept
  in :attr:`FaultPlan.skipped` for reporting), so a severity sweep degrades
  the fabric without ever cutting it apart.
- *Explicit* faults are obeyed verbatim; if they partition the fabric the
  run fails loudly with :class:`FabricPartitionedError` at injection time —
  it never hangs.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass
from typing import AbstractSet, Dict, List, Optional, Set, Tuple, TYPE_CHECKING

from repro.sim.topo.base import Channel, Topology

if TYPE_CHECKING:  # the interconnect imports this module, not vice versa
    from repro.sim.config import SystemConfig


class FabricPartitionedError(RuntimeError):
    """A fault disconnected live units; the run fails instead of hanging."""


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled failure: what breaks, when, and for how long."""

    kind: str  # "link" | "unit"
    target: object  # Channel for links, unit id for units
    at: int
    down: int = 0  # 0 = permanent
    source: str = "explicit"  # "explicit" | "random"

    @property
    def permanent(self) -> bool:
        return self.down == 0


def unreachable_pairs(
    topology: Topology,
    dead_channels: AbstractSet[Channel],
    dead_units: AbstractSet[int],
) -> List[Tuple[int, int]]:
    """Ordered unit pairs with no surviving route (empty = connected).

    Uses the same transit rule as :meth:`Topology.fallback_route`: dead
    units forward nothing but remain valid endpoints.
    """
    adjacency = topology.adjacency()
    n = topology.num_nodes
    gaps: List[Tuple[int, int]] = []
    for src in range(n):
        reached = {src}
        frontier = [src]
        while frontier:
            next_frontier = []
            for node in frontier:
                if node != src and node in dead_units:
                    continue
                for nbr in adjacency[node]:
                    if nbr in reached or (node, nbr) in dead_channels:
                        continue
                    reached.add(nbr)
                    next_frontier.append(nbr)
            frontier = next_frontier
        gaps.extend((src, dst) for dst in range(n) if dst not in reached)
    return gaps


@dataclass(frozen=True)
class FaultPlan:
    """The complete, ordered failure schedule of one run."""

    events: Tuple[FaultEvent, ...] = ()
    #: rate-derived events dropped by the connectivity guard.
    skipped: Tuple[FaultEvent, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.events)

    # ------------------------------------------------------------------
    @classmethod
    def from_config(cls, config: "SystemConfig", topology: Topology) -> "FaultPlan":
        """Build the plan a config describes (deterministic).

        Cheap by construction for the default config: when no fault field
        is set this returns the empty plan without forcing the topology's
        full routing table.
        """
        if not (config.fault_links or config.fault_units
                or config.fault_link_rate or config.fault_transient_rate):
            return cls()

        explicit = [
            FaultEvent("link", (src, dst), at, down)
            for src, dst, at, down in config.fault_links
        ]
        explicit += [
            FaultEvent("unit", unit, at, down)
            for unit, at, down in config.fault_units
        ]
        channels = topology.channels()
        channel_set = set(channels)
        for event in explicit:
            if event.kind == "link" and event.target not in channel_set:
                raise ValueError(
                    f"fault_links channel {event.target} does not exist in "
                    f"the {topology.name!r} fabric"
                )

        randoms: List[FaultEvent] = []
        if config.fault_link_rate or config.fault_transient_rate:
            rng = random.Random(f"faultplan:{config.fault_seed}")
            n_perm = int(round(config.fault_link_rate * len(channels)))
            n_trans = int(round(config.fault_transient_rate * len(channels)))
            picks = rng.sample(channels, min(n_perm + n_trans, len(channels)))
            window = config.fault_window_cycles
            for channel in picks[:n_perm]:
                randoms.append(FaultEvent(
                    "link", channel, rng.randrange(window), 0, "random"))
            for channel in picks[n_perm:n_perm + n_trans]:
                randoms.append(FaultEvent(
                    "link", channel, rng.randrange(window),
                    config.fault_repair_cycles, "random"))

        kept, skipped = _guard_connectivity(topology, explicit, randoms)
        return cls(events=tuple(kept), skipped=tuple(skipped))

    # ------------------------------------------------------------------
    def arm(self, sim, interconnect) -> None:
        """Schedule every event (and its repair) as simulator timers.

        The callbacks receive the event's own timestamp, so the
        interconnect's downtime accounting never reads the clock.  Timers
        are issued in the exact order the connectivity guard replayed —
        repairs before failures at the same instant — so a guarded plan
        can never trip the interconnect's runtime partition check.
        """
        timeline: List[Tuple[int, int, int, str, FaultEvent]] = []
        for seq, event in enumerate(self.events):
            timeline.append((event.at, 1, seq, "fail", event))
            if event.down:
                timeline.append((event.at + event.down, 0, seq, "repair", event))
        timeline.sort(key=lambda item: item[:3])
        for at, _phase, _seq, action, event in timeline:
            if event.kind == "link":
                fn = (interconnect.fail_link if action == "fail"
                      else interconnect.repair_link)
            else:
                fn = (interconnect.fail_unit if action == "fail"
                      else interconnect.repair_unit)
            sim.schedule_at(at, fn, event.target, at)


def _guard_connectivity(
    topology: Topology,
    explicit: List[FaultEvent],
    randoms: List[FaultEvent],
) -> Tuple[List[FaultEvent], List[FaultEvent]]:
    """Drop rate-derived events that would partition at their fire time.

    Replays the combined fail/repair timeline chronologically (repairs
    before failures at the same instant, then schedule order) and checks
    connectivity after each tentative random failure.  Explicit events are
    applied unconditionally — they are the user's stated scenario, and the
    interconnect raises :class:`FabricPartitionedError` at injection if
    they cut the fabric.
    """
    ordered = sorted(
        enumerate(explicit + randoms), key=lambda item: (item[1].at, item[0])
    )
    timeline: List[Tuple[int, int, int, str, FaultEvent]] = []
    for seq, event in ordered:
        timeline.append((event.at, 1, seq, "fail", event))
        if event.down:
            timeline.append((event.at + event.down, 0, seq, "repair", event))
    timeline.sort(key=lambda item: item[:3])

    dead_channels: Set[Channel] = set()
    dead_units: Set[int] = set()
    dropped: Set[int] = set()
    skipped: List[FaultEvent] = []
    for _at, _phase, seq, action, event in timeline:
        if seq in dropped:
            continue
        targets = dead_channels if event.kind == "link" else dead_units
        if action == "repair":
            targets.discard(event.target)
            continue
        targets.add(event.target)
        if event.source == "random" and unreachable_pairs(
                topology, dead_channels, dead_units):
            targets.discard(event.target)
            dropped.add(seq)
            skipped.append(event)
    kept = [
        event for seq, event in ordered
        if seq not in dropped
    ]
    return kept, skipped


# ----------------------------------------------------------------------
# CLI spec grammars (``repro run --faults`` / ``--link-profile``)
# ----------------------------------------------------------------------
_LINK_FAULT_RE = re.compile(
    r"^(\d+)\s*([>-])\s*(\d+)\s*@\s*(\d+)(?:\s*\+\s*(\d+))?$"
)
_UNIT_FAULT_RE = re.compile(r"^unit\s*:\s*(\d+)\s*@\s*(\d+)(?:\s*\+\s*(\d+))?$")
_PROFILE_RE = re.compile(
    r"^(\d+)\s*([>-])\s*(\d+)\s*=\s*([0-9.]*)(?::\s*([0-9.]+))?$"
)


def parse_fault_spec(text: str) -> Dict[str, object]:
    """``--faults`` grammar -> SystemConfig override fields.

    Comma-separated clauses::

        0>1@100        directed channel (0, 1) fails permanently at cycle 100
        0-1@100        both directions fail
        0>1@100+500    transient: down for 500 cycles
        unit:2@50      unit 2 stops forwarding at cycle 50 (+D = transient)
        rate=0.1       fraction of channels failed permanently (seed-derived)
        transient=0.05 fraction of channels flapping once (seed-derived)
        seed=7         fault_seed for the rate-derived draws
        window=20000   rate-derived fault times drawn from [0, window)
        repair=4000    downtime of rate-derived transient faults

    Returns only the fields the spec mentions, ready for
    ``SystemConfig.with_`` or a sweep's ``base_overrides``.
    """
    links: List[Tuple[int, int, int, int]] = []
    units: List[Tuple[int, int, int]] = []
    overrides: Dict[str, object] = {}
    scalar_fields = {
        "rate": ("fault_link_rate", float),
        "transient": ("fault_transient_rate", float),
        "seed": ("fault_seed", int),
        "window": ("fault_window_cycles", int),
        "repair": ("fault_repair_cycles", int),
    }
    for raw in text.split(","):
        clause = raw.strip()
        if not clause:
            continue
        key, eq, value = clause.partition("=")
        if eq and key.strip() in scalar_fields:
            name, cast = scalar_fields[key.strip()]
            try:
                overrides[name] = cast(value.strip())
            except ValueError:
                raise ValueError(
                    f"bad --faults value in {clause!r}: expected a "
                    f"{cast.__name__}"
                )
            continue
        match = _UNIT_FAULT_RE.match(clause)
        if match:
            unit, at, down = match.groups()
            units.append((int(unit), int(at), int(down or 0)))
            continue
        match = _LINK_FAULT_RE.match(clause)
        if match:
            src, direction, dst, at, down = match.groups()
            entry = (int(src), int(dst), int(at), int(down or 0))
            links.append(entry)
            if direction == "-":
                links.append((entry[1], entry[0], entry[2], entry[3]))
            continue
        raise ValueError(
            f"bad --faults clause {clause!r}; expected SRC>DST@AT[+DOWN], "
            "SRC-DST@AT[+DOWN], unit:U@AT[+DOWN], or "
            f"{'/'.join(sorted(scalar_fields))}=VALUE"
        )
    if links:
        overrides["fault_links"] = tuple(links)
    if units:
        overrides["fault_units"] = tuple(units)
    if not overrides:
        raise ValueError("--faults spec is empty")
    return overrides


def parse_link_profile(text: str) -> Tuple:
    """``--link-profile`` grammar -> the ``link_profile`` config tuple.

    Comma-separated clauses, ``BANDWIDTH[:LATENCY]`` per channel::

        0-1=6.4:80     both directions of (0, 1): 6.4 GB/s, 80 ns
        2>3=12.8       directed (2, 3): 12.8 GB/s, global latency
        1>0=:100       directed (1, 0): global bandwidth, 100 ns
    """
    entries: List[Tuple[int, int, Optional[float], Optional[float]]] = []
    for raw in text.split(","):
        clause = raw.strip()
        if not clause:
            continue
        match = _PROFILE_RE.match(clause)
        if not match:
            raise ValueError(
                f"bad --link-profile clause {clause!r}; expected "
                "SRC>DST=BANDWIDTH[:LATENCY] or SRC-DST=BANDWIDTH[:LATENCY]"
            )
        src, direction, dst, gbps, lat = match.groups()
        if not gbps and lat is None:
            raise ValueError(
                f"--link-profile clause {clause!r} overrides nothing"
            )
        entry = (
            int(src),
            int(dst),
            float(gbps) if gbps else None,
            float(lat) if lat is not None else None,
        )
        entries.append(entry)
        if direction == "-":
            entries.append((entry[1], entry[0], entry[2], entry[3]))
    if not entries:
        raise ValueError("--link-profile spec is empty")
    return tuple(entries)
