"""Topology interface: nodes, shortest-path routes, physical channels.

A :class:`Topology` is pure geometry — it knows how many nodes the fabric
connects and, for every ordered node pair, the sequence of *directed
physical channels* a packet crosses.  A channel is a hashable identifier
(a ``(from_node, to_node)`` tuple for the regular fabrics); the
:class:`~repro.sim.network.Interconnect` owns one
:class:`~repro.sim.network.Link` object per channel, so two routes that
share a channel contend for the same serialized resource and multi-hop
latency emerges from the route length rather than from a per-pair constant.

Routes are shortest paths, computed deterministically (dimension-order /
fixed tie-breaking) and memoized per ordered pair — the routing table is
static for a run, exactly like the table-based routers the paper's NDP
fabrics would use.

Concrete fabrics live in :mod:`repro.sim.topo.regular`;
:func:`build_topology` instantiates the one a
:class:`~repro.sim.config.SystemConfig` names.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # avoid an import cycle: config validates via this package
    from repro.sim.config import SystemConfig

#: a directed physical channel: (from_node, to_node).
Channel = Tuple[int, int]
#: a route: the channels a packet crosses, in traversal order.
Route = Tuple[Channel, ...]


class Topology:
    """Base class: node count + memoized shortest-path routing table."""

    #: registry name; subclasses override.
    name = "topology"

    def __init__(self, num_nodes: int):
        if num_nodes < 1:
            raise ValueError("topology needs at least one node")
        self.num_nodes = num_nodes
        self._routes: Dict[Tuple[int, int], Route] = {}

    # ------------------------------------------------------------------
    def compute_route(self, src: int, dst: int) -> List[Channel]:
        """Shortest channel sequence from ``src`` to ``dst`` (``src != dst``)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def route(self, src: int, dst: int) -> Route:
        """Memoized routing-table lookup; ``()`` for the degenerate src==dst."""
        key = (src, dst)
        cached = self._routes.get(key)
        if cached is None:
            if not (0 <= src < self.num_nodes and 0 <= dst < self.num_nodes):
                raise ValueError(
                    f"nodes must be in [0, {self.num_nodes}), got {src}->{dst}"
                )
            cached = () if src == dst else tuple(self.compute_route(src, dst))
            self._routes[key] = cached
        return cached

    def hops(self, src: int, dst: int) -> int:
        return len(self.route(src, dst))

    def routing_table(self) -> Dict[Tuple[int, int], Route]:
        """The full table (forces every pair; diagnostics and tests)."""
        for src in range(self.num_nodes):
            for dst in range(self.num_nodes):
                self.route(src, dst)
        return dict(self._routes)

    def channels(self) -> Tuple[Channel, ...]:
        """Every directed channel any route uses, sorted (diagnostics)."""
        table = self.routing_table()
        return tuple(sorted({ch for route in table.values() for ch in route}))

    def diameter(self) -> int:
        """Maximum hop count over all ordered pairs."""
        table = self.routing_table()
        return max((len(route) for route in table.values()), default=0)

    def mean_hops(self) -> float:
        """Average hop count over all ordered pairs with src != dst."""
        table = self.routing_table()
        remote = [len(r) for (s, d), r in table.items() if s != d]
        return sum(remote) / len(remote) if remote else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(num_nodes={self.num_nodes})"


def mesh_shape(num_nodes: int, rows: int = 0) -> Tuple[int, int]:
    """Resolve a grid shape: explicit ``rows`` or the squarest factorization.

    With ``rows == 0`` the grid is as close to square as ``num_nodes``
    allows (16 -> 4x4, 12 -> 3x4, a prime falls back to 1xN).
    """
    if rows < 0:
        raise ValueError("topo_rows must be non-negative")
    if rows:
        if num_nodes % rows:
            raise ValueError(
                f"topo_rows={rows} does not divide num_units={num_nodes}"
            )
        return rows, num_nodes // rows
    side = math.isqrt(num_nodes)
    while num_nodes % side:
        side -= 1
    return side, num_nodes // side


def build_topology(config: "SystemConfig") -> Topology:
    """Instantiate the fabric a :class:`SystemConfig` names."""
    from repro.sim.topo.regular import TOPOLOGIES  # subclasses import base

    try:
        cls = TOPOLOGIES[config.topology]
    except KeyError:
        raise ValueError(
            f"unknown topology {config.topology!r}; choose from "
            f"{sorted(TOPOLOGIES)}"
        )
    if cls.GRID:
        return cls(config.num_units, rows=config.topo_rows)
    return cls(config.num_units)
