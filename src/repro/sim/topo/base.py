"""Topology interface: nodes, shortest-path routes, physical channels.

A :class:`Topology` is pure geometry — it knows how many nodes the fabric
connects and, for every ordered node pair, the sequence of *directed
physical channels* a packet crosses.  A channel is a hashable identifier
(a ``(from_node, to_node)`` tuple for the regular fabrics); the
:class:`~repro.sim.network.Interconnect` owns one
:class:`~repro.sim.network.Link` object per channel, so two routes that
share a channel contend for the same serialized resource and multi-hop
latency emerges from the route length rather than from a per-pair constant.

Routes are shortest paths, computed deterministically (dimension-order /
fixed tie-breaking) and memoized per ordered pair — the routing table is
static for a run, exactly like the table-based routers the paper's NDP
fabrics would use.

Concrete fabrics live in :mod:`repro.sim.topo.regular`;
:func:`build_topology` instantiates the one a
:class:`~repro.sim.config.SystemConfig` names.
"""

from __future__ import annotations

import heapq
import math
import warnings
from typing import (
    AbstractSet,
    Callable,
    Dict,
    List,
    Optional,
    Tuple,
    TYPE_CHECKING,
)

if TYPE_CHECKING:  # avoid an import cycle: config validates via this package
    from repro.sim.config import SystemConfig

#: a directed physical channel: (from_node, to_node).
Channel = Tuple[int, int]
#: a route: the channels a packet crosses, in traversal order.
Route = Tuple[Channel, ...]


class Topology:
    """Base class: node count + memoized shortest-path routing table."""

    #: registry name; subclasses override.
    name = "topology"

    def __init__(self, num_nodes: int):
        if num_nodes < 1:
            raise ValueError("topology needs at least one node")
        self.num_nodes = num_nodes
        self._routes: Dict[Tuple[int, int], Route] = {}
        self._adjacency: Optional[Dict[int, Tuple[int, ...]]] = None

    # ------------------------------------------------------------------
    def compute_route(self, src: int, dst: int) -> List[Channel]:
        """Shortest channel sequence from ``src`` to ``dst`` (``src != dst``)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def route(self, src: int, dst: int) -> Route:
        """Memoized routing-table lookup; ``()`` for the degenerate src==dst."""
        key = (src, dst)
        cached = self._routes.get(key)
        if cached is None:
            if not (0 <= src < self.num_nodes and 0 <= dst < self.num_nodes):
                raise ValueError(
                    f"nodes must be in [0, {self.num_nodes}), got {src}->{dst}"
                )
            cached = () if src == dst else tuple(self.compute_route(src, dst))
            self._routes[key] = cached
        return cached

    def hops(self, src: int, dst: int) -> int:
        return len(self.route(src, dst))

    def routing_table(self) -> Dict[Tuple[int, int], Route]:
        """The full table (forces every pair; diagnostics and tests)."""
        for src in range(self.num_nodes):
            for dst in range(self.num_nodes):
                self.route(src, dst)
        return dict(self._routes)

    def channels(self) -> Tuple[Channel, ...]:
        """Every directed channel any route uses, sorted (diagnostics)."""
        table = self.routing_table()
        return tuple(sorted({ch for route in table.values() for ch in route}))

    def diameter(self) -> int:
        """Maximum hop count over all ordered pairs."""
        table = self.routing_table()
        return max((len(route) for route in table.values()), default=0)

    def mean_hops(self) -> float:
        """Average hop count over all ordered pairs with src != dst."""
        table = self.routing_table()
        remote = [len(r) for (s, d), r in table.items() if s != d]
        return sum(remote) / len(remote) if remote else 0.0

    # ------------------------------------------------------------------
    # Graph view (degraded-fabric routing: faults + adaptive policies)
    # ------------------------------------------------------------------
    def adjacency(self) -> Dict[int, Tuple[int, ...]]:
        """node -> neighbors one physical channel away, sorted (memoized).

        Derived from :meth:`channels`, so it covers exactly the channels the
        pristine routing tables use — the channel set the interconnect owns
        :class:`~repro.sim.network.Link` objects for.
        """
        if self._adjacency is None:
            neighbors: Dict[int, set] = {n: set() for n in range(self.num_nodes)}
            for src, dst in self.channels():
                neighbors[src].add(dst)
            self._adjacency = {
                n: tuple(sorted(s)) for n, s in neighbors.items()
            }
        return self._adjacency

    def _check_pair(self, src: int, dst: int) -> None:
        if not (0 <= src < self.num_nodes and 0 <= dst < self.num_nodes):
            raise ValueError(
                f"nodes must be in [0, {self.num_nodes}), got {src}->{dst}"
            )

    def fallback_route(
        self,
        src: int,
        dst: int,
        dead_channels: AbstractSet[Channel] = frozenset(),
        dead_units: AbstractSet[int] = frozenset(),
    ) -> Optional[Route]:
        """Shortest surviving path by BFS, or ``None`` if unreachable.

        Fault semantics: a dead channel carries nothing; a dead *unit*
        forwards nothing (its router is down) but is still a valid endpoint
        — its cores and memory operate, so packets may originate at or be
        delivered to it, just never transit through it.

        Deterministic: layers expand in sorted-neighbor order, so equal-
        length alternatives always resolve the same way.
        """
        self._check_pair(src, dst)
        if src == dst:
            return ()
        adjacency = self.adjacency()
        parent: Dict[int, Optional[int]] = {src: None}
        frontier = [src]
        while frontier:
            next_frontier = []
            for node in frontier:
                if node != src and node in dead_units:
                    continue  # reachable as endpoint, no transit
                for nbr in adjacency[node]:
                    if nbr in parent or (node, nbr) in dead_channels:
                        continue
                    parent[nbr] = node
                    if nbr == dst:
                        path = [dst]
                        while path[-1] != src:
                            path.append(parent[path[-1]])
                        path.reverse()
                        return tuple(zip(path, path[1:]))
                    next_frontier.append(nbr)
            frontier = next_frontier
        return None

    def minimal_routes(
        self,
        src: int,
        dst: int,
        dead_channels: AbstractSet[Channel] = frozenset(),
        dead_units: AbstractSet[int] = frozenset(),
        limit: int = 8,
    ) -> Tuple[Route, ...]:
        """Up to ``limit`` distinct minimal-hop routes over the survivors.

        Enumerated lexicographically (sorted-neighbor DFS over the
        shortest-path DAG), so the tuple is deterministic and its first
        entry equals :meth:`fallback_route`'s choice up to tie-breaking.
        Empty when ``dst`` is unreachable.
        """
        self._check_pair(src, dst)
        if src == dst:
            return ((),)
        adjacency = self.adjacency()
        # BFS distance labels under the same transit rule as fallback_route.
        dist: Dict[int, int] = {src: 0}
        frontier = [src]
        depth = 0
        while frontier and dst not in dist:
            depth += 1
            next_frontier = []
            for node in frontier:
                if node != src and node in dead_units:
                    continue
                for nbr in adjacency[node]:
                    if nbr in dist or (node, nbr) in dead_channels:
                        continue
                    dist[nbr] = depth
                    next_frontier.append(nbr)
            frontier = next_frontier
        target = dist.get(dst)
        if target is None:
            return ()
        routes: List[Route] = []

        def extend(node: int, path: List[int]) -> None:
            if len(routes) >= limit:
                return
            if node == dst:
                routes.append(tuple(zip(path, path[1:])))
                return
            if node != src and node in dead_units:
                return
            here = len(path) - 1
            for nbr in adjacency[node]:
                if (node, nbr) in dead_channels or dist.get(nbr) != here + 1:
                    continue
                path.append(nbr)
                extend(nbr, path)
                path.pop()

        extend(src, [src])
        return tuple(routes)

    def weighted_route(
        self,
        src: int,
        dst: int,
        cost_fn: Callable[[Channel], float],
        dead_channels: AbstractSet[Channel] = frozenset(),
        dead_units: AbstractSet[int] = frozenset(),
    ) -> Optional[Route]:
        """Least-cost surviving path (Dijkstra), or ``None`` if unreachable.

        ``cost_fn`` maps a channel to a non-negative cost.  Ties break by
        hop count, then by the node sequence itself, so the result is
        deterministic for any cost function.
        """
        self._check_pair(src, dst)
        if src == dst:
            return ()
        adjacency = self.adjacency()
        heap: List[Tuple[float, int, Tuple[int, ...]]] = [(0.0, 0, (src,))]
        settled: set = set()
        while heap:
            cost, hops, path = heapq.heappop(heap)
            node = path[-1]
            if node == dst:
                return tuple(zip(path, path[1:]))
            if node in settled:
                continue
            settled.add(node)
            if node != src and node in dead_units:
                continue
            for nbr in adjacency[node]:
                if nbr in settled or (node, nbr) in dead_channels:
                    continue
                heapq.heappush(
                    heap,
                    (cost + cost_fn((node, nbr)), hops + 1, path + (nbr,)),
                )
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(num_nodes={self.num_nodes})"


def mesh_shape(num_nodes: int, rows: int = 0) -> Tuple[int, int]:
    """Resolve a grid shape: explicit ``rows`` or the squarest factorization.

    With ``rows == 0`` the grid is as close to square as ``num_nodes``
    allows (16 -> 4x4, 12 -> 3x4).  A prime ``num_nodes`` has no
    non-trivial factorization and falls back to a 1xN *line* — a
    legitimate fabric, but with twice the diameter of a near-square grid,
    so the degradation is announced with a ``RuntimeWarning`` rather than
    silently skewing topology comparisons.
    """
    if rows < 0:
        raise ValueError("topo_rows must be non-negative")
    if rows:
        if num_nodes % rows:
            raise ValueError(
                f"topo_rows={rows} does not divide num_units={num_nodes}"
            )
        return rows, num_nodes // rows
    side = math.isqrt(num_nodes)
    while num_nodes % side:
        side -= 1
    if side == 1 and num_nodes > 2:
        warnings.warn(
            f"num_units={num_nodes} is prime: the grid degenerates to a "
            f"1x{num_nodes} line (pass topo_rows or pick a composite unit "
            "count for a real mesh)",
            RuntimeWarning,
            stacklevel=2,
        )
    return side, num_nodes // side


def build_topology(config: "SystemConfig") -> Topology:
    """Instantiate the fabric a :class:`SystemConfig` names."""
    from repro.sim.topo.regular import TOPOLOGIES  # subclasses import base

    try:
        cls = TOPOLOGIES[config.topology]
    except KeyError:
        raise ValueError(
            f"unknown topology {config.topology!r}; choose from "
            f"{sorted(TOPOLOGIES)}"
        )
    if cls.GRID:
        return cls(config.num_units, rows=config.topo_rows)
    return cls(config.num_units)
