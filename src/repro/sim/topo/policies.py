"""Routing policies: how the interconnect picks routes over the fabric.

:meth:`Topology.route` is the *pristine* dimension-order table — the right
answer for a healthy, uniform fabric, and the one the hot path memoizes.
A :class:`RoutingPolicy` generalizes it: given the live fabric state (dead
channels/units, per-channel link parameters, link queues) it produces the
candidate route(s) for an ordered unit pair.

- :class:`StaticPolicy` — the pristine route; a BFS shortest path over the
  survivors only when a fault severed it.  Zero-fault behaviour is
  bit-identical to calling ``Topology.route`` directly.
- :class:`DegradedShortestPathPolicy` — least-cost route by per-channel
  cost (propagation latency + one line's serialization), so heterogeneous
  profiles steer traffic around slow links even with nothing failed.
- :class:`LoadAwarePolicy` — all minimal-hop routes over the survivors;
  the interconnect picks per transfer by live :class:`Link` queue depth.

Policies see the fabric through a narrow duck-typed surface
(``dead_channels``, ``dead_units``, ``link_cost(channel)``) so this module
never imports :mod:`repro.sim.network`.
"""

from __future__ import annotations

from typing import Dict, Tuple, Type

from repro.sim.topo.base import Route, Topology
from repro.sim.topo.faults import FabricPartitionedError


def route_intact(route: Route, dead_channels, dead_units) -> bool:
    """True if no channel on ``route`` is dead and no *intermediate* node
    is a dead unit (endpoints stay valid; see :mod:`repro.sim.topo.faults`)."""
    for channel in route:
        if channel in dead_channels:
            return False
    for channel in route[1:]:
        if channel[0] in dead_units:
            return False
    return True


class RoutingPolicy:
    """Base: candidate routes for an ordered pair over the live fabric."""

    #: registry name; subclasses override.
    name = "policy"
    #: multipath policies return several candidates and expect a
    #: per-transfer choice; single-path policies return exactly one.
    multipath = False

    def __init__(self, topology: Topology, fabric) -> None:
        self.topology = topology
        self.fabric = fabric

    def candidates(self, src: int, dst: int) -> Tuple[Route, ...]:
        """Non-empty candidate routes, or raise :class:`FabricPartitionedError`."""
        raise NotImplementedError

    def _unreachable(self, src: int, dst: int) -> FabricPartitionedError:
        return FabricPartitionedError(
            f"no surviving route {src} -> {dst} on the "
            f"{self.topology.name!r} fabric "
            f"({len(self.fabric.dead_channels)} dead channels, "
            f"{len(self.fabric.dead_units)} dead units)"
        )


class StaticPolicy(RoutingPolicy):
    """Pristine table routes; BFS over the survivors only when severed."""

    name = "static"

    def candidates(self, src: int, dst: int) -> Tuple[Route, ...]:
        pristine = self.topology.route(src, dst)
        dead_channels = self.fabric.dead_channels
        dead_units = self.fabric.dead_units
        if route_intact(pristine, dead_channels, dead_units):
            return (pristine,)
        fallback = self.topology.fallback_route(
            src, dst, dead_channels, dead_units)
        if fallback is None:
            raise self._unreachable(src, dst)
        return (fallback,)


class DegradedShortestPathPolicy(RoutingPolicy):
    """Least-cost surviving route by per-channel cost.

    The cost of a channel is its propagation latency plus one cache line's
    serialization at its bandwidth (``Interconnect.link_cost``), so a
    heterogeneous :attr:`~repro.sim.config.SystemConfig.link_profile`
    reshapes routes even on a fault-free fabric.
    """

    name = "degraded"

    def candidates(self, src: int, dst: int) -> Tuple[Route, ...]:
        route = self.topology.weighted_route(
            src, dst, self.fabric.link_cost,
            self.fabric.dead_channels, self.fabric.dead_units)
        if route is None:
            raise self._unreachable(src, dst)
        return (route,)


class LoadAwarePolicy(RoutingPolicy):
    """All minimal-hop surviving routes; chosen per transfer by queue depth."""

    name = "load_aware"
    multipath = True
    #: cap on enumerated alternatives per pair (the mesh's shortest-path
    #: DAGs grow combinatorially with distance).
    max_candidates = 8

    def candidates(self, src: int, dst: int) -> Tuple[Route, ...]:
        routes = self.topology.minimal_routes(
            src, dst, self.fabric.dead_channels, self.fabric.dead_units,
            limit=self.max_candidates)
        if not routes:
            raise self._unreachable(src, dst)
        return routes


POLICIES: Dict[str, Type[RoutingPolicy]] = {
    cls.name: cls
    for cls in (StaticPolicy, DegradedShortestPathPolicy, LoadAwarePolicy)
}


def build_policy(name: str, topology: Topology, fabric) -> RoutingPolicy:
    """Instantiate the policy a config names."""
    try:
        cls = POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown routing policy {name!r}; choose from {sorted(POLICIES)}"
        )
    return cls(topology, fabric)
