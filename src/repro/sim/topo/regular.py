"""The concrete fabrics: all-to-all, ring, 2D mesh, 2D torus.

All routes are deterministic shortest paths with fixed tie-breaking, so a
given (topology, num_nodes, shape) always yields the same routing table —
a requirement for the sweep runner's serial-vs-parallel bit-identity.

- :class:`AllToAll` — a dedicated channel per ordered pair.  This is the
  seed simulator's implicit fabric (no two flows ever share a physical
  channel, every remote hop count is 1) and remains the default; routed
  through the generic machinery it reproduces the old latencies
  bit-identically.
- :class:`Ring` — a bidirectional ring; packets take the shorter
  direction, clockwise (increasing node id) on a tie.
- :class:`Mesh2D` — an R x C grid with X-then-Y dimension-order routing
  (deadlock-free and deterministic, the standard NoC choice).
- :class:`Torus2D` — the mesh plus wrap-around channels; each dimension
  independently picks its shorter direction, increasing on a tie.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.sim.topo.base import Channel, Topology, mesh_shape


class AllToAll(Topology):
    """Ideal fabric: a private physical channel per ordered node pair."""

    name = "all_to_all"
    GRID = False

    def compute_route(self, src: int, dst: int) -> List[Channel]:
        return [(src, dst)]


class Ring(Topology):
    """Bidirectional ring; shorter direction wins, clockwise on ties."""

    name = "ring"
    GRID = False

    def compute_route(self, src: int, dst: int) -> List[Channel]:
        n = self.num_nodes
        forward = (dst - src) % n
        backward = (src - dst) % n
        step = 1 if forward <= backward else n - 1  # +1 or -1 mod n
        route = []
        node = src
        while node != dst:
            nxt = (node + step) % n
            route.append((node, nxt))
            node = nxt
        return route


class Mesh2D(Topology):
    """R x C grid, X-then-Y dimension-order routing, no wrap-around."""

    name = "mesh2d"
    GRID = True

    def __init__(self, num_nodes: int, rows: int = 0):
        super().__init__(num_nodes)
        self.rows, self.cols = mesh_shape(num_nodes, rows)

    def _x_steps(self, col: int, dst_col: int) -> List[int]:
        """Column indices visited moving toward ``dst_col`` (mesh: no wrap)."""
        step = 1 if dst_col > col else -1
        return list(range(col + step, dst_col + step, step))

    def _y_steps(self, row: int, dst_row: int) -> List[int]:
        step = 1 if dst_row > row else -1
        return list(range(row + step, dst_row + step, step))

    def compute_route(self, src: int, dst: int) -> List[Channel]:
        cols = self.cols
        row, col = divmod(src, cols)
        dst_row, dst_col = divmod(dst, cols)
        route = []
        node = src
        if col != dst_col:
            for next_col in self._x_steps(col, dst_col):
                nxt = row * cols + next_col
                route.append((node, nxt))
                node = nxt
        if row != dst_row:
            for next_row in self._y_steps(row, dst_row):
                nxt = next_row * cols + dst_col
                route.append((node, nxt))
                node = nxt
        return route


class Torus2D(Mesh2D):
    """The mesh with wrap-around; each dimension takes its shorter way."""

    name = "torus2d"
    GRID = True

    @staticmethod
    def _wrapped_steps(start: int, stop: int, size: int) -> List[int]:
        """Indices visited from ``start`` to ``stop`` on a ``size``-cycle."""
        forward = (stop - start) % size
        backward = (start - stop) % size
        step = 1 if forward <= backward else size - 1
        steps = []
        index = start
        while index != stop:
            index = (index + step) % size
            steps.append(index)
        return steps

    def _x_steps(self, col: int, dst_col: int) -> List[int]:
        return self._wrapped_steps(col, dst_col, self.cols)

    def _y_steps(self, row: int, dst_row: int) -> List[int]:
        return self._wrapped_steps(row, dst_row, self.rows)


#: registry: SystemConfig.topology -> fabric class.
TOPOLOGIES: Dict[str, Type[Topology]] = {
    cls.name: cls for cls in (AllToAll, Ring, Mesh2D, Torus2D)
}
