"""Pluggable interconnect topologies for the inter-unit fabric.

See :mod:`repro.sim.topo.base` for the interface,
:mod:`repro.sim.topo.regular` for the concrete fabrics
(``all_to_all`` / ``ring`` / ``mesh2d`` / ``torus2d``),
:mod:`repro.sim.topo.faults` for link/unit fault plans, and
:mod:`repro.sim.topo.policies` for the routing policies that pick routes
over a (possibly degraded) fabric.
"""

from repro.sim.topo.base import (
    Channel,
    Route,
    Topology,
    build_topology,
    mesh_shape,
)
from repro.sim.topo.faults import (
    FabricPartitionedError,
    FaultEvent,
    FaultPlan,
    parse_fault_spec,
    parse_link_profile,
    unreachable_pairs,
)
from repro.sim.topo.policies import (
    POLICIES,
    RoutingPolicy,
    build_policy,
    route_intact,
)
from repro.sim.topo.regular import TOPOLOGIES, AllToAll, Mesh2D, Ring, Torus2D

__all__ = [
    "AllToAll",
    "Channel",
    "FabricPartitionedError",
    "FaultEvent",
    "FaultPlan",
    "Mesh2D",
    "POLICIES",
    "Ring",
    "Route",
    "RoutingPolicy",
    "TOPOLOGIES",
    "Topology",
    "Torus2D",
    "build_policy",
    "build_topology",
    "mesh_shape",
    "parse_fault_spec",
    "parse_link_profile",
    "route_intact",
    "unreachable_pairs",
]
