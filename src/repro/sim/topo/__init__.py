"""Pluggable interconnect topologies for the inter-unit fabric.

See :mod:`repro.sim.topo.base` for the interface and
:mod:`repro.sim.topo.regular` for the concrete fabrics
(``all_to_all`` / ``ring`` / ``mesh2d`` / ``torus2d``).
"""

from repro.sim.topo.base import (
    Channel,
    Route,
    Topology,
    build_topology,
    mesh_shape,
)
from repro.sim.topo.regular import TOPOLOGIES, AllToAll, Mesh2D, Ring, Torus2D

__all__ = [
    "AllToAll",
    "Channel",
    "Mesh2D",
    "Ring",
    "Route",
    "TOPOLOGIES",
    "Topology",
    "Torus2D",
    "build_topology",
    "mesh_shape",
]
