"""DRAM device timing model (per NDP unit).

A first-order bank/row model in the spirit of Ramulator's role in the paper's
simulator: each unit's memory has ``channels x banks_per_channel`` banks, each
with an open-row register and a ``next_free`` reservation time.  An access:

1. waits for its bank to be free (bank-level queueing),
2. pays CAS on a row hit, ACT+CAS on a miss of a closed row, or
   tRAS-residual + ACT + CAS on a row conflict,
3. writes additionally hold the bank for the write-recovery time.

Latencies come from :class:`repro.sim.config.DramTiming` (Table 5 values for
HBM / HMC / DDR4).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.sim.config import DramTiming
from repro.sim.clock import core_cycles_from_ns
from repro.sim.stats import SystemStats


class DramDevice:
    """The memory of a single NDP unit."""

    __slots__ = ("timing", "stats", "unit_id", "num_banks", "_open_row",
                 "_next_free", "_wr_cycles", "_row_bytes", "_hit_cycles",
                 "_miss_cycles", "_conflict_cycles")

    def __init__(self, timing: DramTiming, stats: SystemStats, unit_id: int = 0):
        self.timing = timing
        self.stats = stats
        self.unit_id = unit_id
        self.num_banks = timing.channels * timing.banks_per_channel
        self._open_row: List[Optional[int]] = [None] * self.num_banks
        self._next_free: List[int] = [0] * self.num_banks
        self._wr_cycles = core_cycles_from_ns(timing.write_recovery_ns)
        # The row_*_cycles properties convert ns -> cycles with float math on
        # every call; an access pays one of them, so resolve all three once.
        self._row_bytes = timing.row_size_bytes
        self._hit_cycles = timing.row_hit_cycles
        self._miss_cycles = timing.row_miss_cycles
        self._conflict_cycles = timing.row_conflict_cycles

    # ------------------------------------------------------------------
    def _bank_and_row(self, addr: int) -> Tuple[int, int]:
        """Address interleaving: consecutive rows stripe across banks."""
        row_global = addr // self._row_bytes
        return row_global % self.num_banks, row_global // self.num_banks

    def access(self, addr: int, is_write: bool, now: int) -> int:
        """Perform an access at time ``now``; returns total latency in cycles.

        The bank is reserved until the access (plus write recovery) finishes,
        so concurrent requests to the same bank queue up naturally.
        """
        row_global = addr // self._row_bytes
        bank = row_global % self.num_banks
        row = row_global // self.num_banks
        open_rows = self._open_row
        start = self._next_free[bank]
        if now > start:
            start = now
        queue_delay = start - now

        open_row = open_rows[bank]
        if open_row == row:
            service = self._hit_cycles
            self.stats.dram_row_hits += 1
        elif open_row is None:
            service = self._miss_cycles
            self.stats.dram_row_misses += 1
        else:
            service = self._conflict_cycles
            self.stats.dram_row_misses += 1
        open_rows[bank] = row

        hold = service + (self._wr_cycles if is_write else 0)
        self._next_free[bank] = start + hold

        if is_write:
            self.stats.dram_writes += 1
        else:
            self.stats.dram_reads += 1
        return queue_delay + service

    def peek_latency(self, addr: int, now: int) -> int:
        """Latency estimate without reserving the bank (for diagnostics)."""
        bank, row = self._bank_and_row(addr)
        start = max(now, self._next_free[bank])
        if self._open_row[bank] == row:
            service = self.timing.row_hit_cycles
        elif self._open_row[bank] is None:
            service = self.timing.row_miss_cycles
        else:
            service = self.timing.row_conflict_cycles
        return (start - now) + service
