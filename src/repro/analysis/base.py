"""Lint infrastructure: findings, the rule protocol, and the registry.

A :class:`Rule` inspects one parsed module at a time and yields
:class:`Finding` objects.  Rules are registered in :data:`RULES` by id
(``RP001``...) so the engine and the CLI can select subsets with
``--rule``.

Suppression layers (checked by the engine, not by rules):

- inline: a ``# repro: noqa RP001`` comment on the finding's line
  (bare ``# repro: noqa`` suppresses every rule on that line);
- baseline: an entry in the committed ``baseline.json`` matching the
  finding's :meth:`Finding.fingerprint` — for pre-existing findings that
  are understood and justified but not worth churning code over.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str          # repo-relative posix path, e.g. "src/repro/sim/trace.py"
    line: int
    message: str
    #: the offending source line, stripped — the stable part of the
    #: fingerprint, so baselines survive unrelated edits above the line.
    snippet: str = ""

    def fingerprint(self) -> Tuple[str, str, str]:
        """Line-number-free identity used for baseline matching."""
        return (self.rule, self.path, self.snippet)

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "snippet": self.snippet,
        }


class Module:
    """One parsed source file handed to every selected rule.

    Carries the AST, the raw source lines (for snippets / noqa scanning)
    and the dotted module name (rules scope themselves by module).
    """

    def __init__(self, path: str, module_name: str, source: str):
        self.path = path
        self.module_name = module_name
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def in_module(self, *prefixes: str) -> bool:
        """True when this module is one of ``prefixes`` or inside one."""
        name = self.module_name
        return any(
            name == prefix or name.startswith(prefix + ".")
            for prefix in prefixes
        )


class Rule:
    """Base class: subclasses set ``id``/``title`` and implement check()."""

    id = "RP000"
    title = "unnamed rule"

    def check(self, module: Module) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: Module, node: ast.AST, message: str) -> Finding:
        lineno = getattr(node, "lineno", 1)
        return Finding(
            rule=self.id,
            path=module.path,
            line=lineno,
            message=message,
            snippet=module.line_text(lineno),
        )


#: rule id -> rule instance; populated by :func:`register`.
RULES: Dict[str, Rule] = {}


def register(rule_cls):
    """Class decorator adding a rule to the registry."""
    rule = rule_cls()
    if rule.id in RULES:
        raise ValueError(f"duplicate rule id {rule.id}")
    RULES[rule.id] = rule
    return rule_cls


# ----------------------------------------------------------------------
# Inline suppressions
# ----------------------------------------------------------------------
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?P<rules>(?:\s+RP\d{3}(?:\s*,\s*RP\d{3})*)?)",
)


def noqa_map(source_lines: List[str]) -> Dict[int, Optional[frozenset]]:
    """Line number -> suppressed rule ids (``None`` = every rule).

    Lines without a ``# repro: noqa`` marker are absent from the map.
    """
    suppressions: Dict[int, Optional[frozenset]] = {}
    for lineno, text in enumerate(source_lines, start=1):
        match = _NOQA_RE.search(text)
        if match is None:
            continue
        listed = match.group("rules").replace(",", " ").split()
        suppressions[lineno] = frozenset(listed) if listed else None
    return suppressions


def suppressed(finding: Finding,
               suppressions: Dict[int, Optional[frozenset]]) -> bool:
    rules = suppressions.get(finding.line, "absent")
    if rules == "absent":
        return False
    return rules is None or finding.rule in rules


# ----------------------------------------------------------------------
# Small AST helpers shared by rules
# ----------------------------------------------------------------------
def call_name(node: ast.Call) -> str:
    """Dotted name of a call target: ``time.time`` / ``hash`` / ``x.union``."""
    return dotted_name(node.func)


def dotted_name(node: ast.AST) -> str:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    if parts:
        # complex base (call result, subscript): keep the attribute tail
        # so rules can still match method names like ``.union``.
        return "?." + ".".join(reversed(parts))
    return ""


def walk_functions(tree: ast.Module) -> Iterable[ast.AST]:
    """Every function/method body scope in the module, outermost first."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            yield node
