"""Static analysis + runtime determinism sanitizer (``repro lint``).

Every headline claim in this reproduction — bit-identical cycles across
kernel rewrites, exactly-once cached sweeps keyed by ``stable_hash``,
zero-fault fabric identity — rests on invariants that used to be enforced
only by hand-written golden diffs after the fact.  This package turns the
recurring failure modes into machine-checked rules:

- :mod:`repro.analysis.engine` — an AST lint pass over the ``repro``
  package with per-rule visitors, inline ``# repro: noqa RULE``
  suppressions and a committed ``baseline.json`` for grandfathered
  findings (each carries a written justification).
- :mod:`repro.analysis.rules` — the rule set (RP001..RP006), each guarding
  a bug class this repo has actually shipped and fixed before.
- :mod:`repro.analysis.sanitizer` — an opt-in runtime determinism
  sanitizer: a same-cycle access-order race detector for the event kernel
  (``repro run ... --sanitize``).

The CLI entry point is ``repro lint`` (see :mod:`repro.cli`); CI runs it
as a gate next to the perf-regression gate.
"""

from repro.analysis.base import Finding, Rule, RULES
from repro.analysis.engine import LintReport, lint_package, lint_paths

__all__ = [
    "Finding",
    "Rule",
    "RULES",
    "LintReport",
    "lint_package",
    "lint_paths",
]
