"""Runtime determinism sanitizer: a race detector for the event kernel.

The static rule RP002 catches *unordered iteration*; this module catches
the dynamic twin — two events at the **same simulated cycle** touching the
same state such that the outcome depends on queue-insertion order.  The
kernel guarantees insertion-order execution within a timestamp, so such
runs are reproducible — but the *program* is still order-fragile: any
refactor that changes which component schedules first silently changes
physics.  That is exactly the bug class the bit-identity diffs catch
post-hoc; the sanitizer points at the offending (object, attribute) pair
while the run happens.

How accesses are observed
-------------------------

- **Writes, automatically**: when a :class:`Simulator` runs with the
  sanitizer enabled, every event callback's owner (``callback.__self__``)
  has its primitive attributes snapshotted before and after the callback;
  differences are recorded as writes.  This covers the overwhelmingly
  common self-mutating bound-method events without instrumenting any
  component code.
- **Reads and cross-object writes, explicitly**: code under test (or a
  synthetic workload) can call :func:`note_read` / :func:`note_write` to
  declare accesses the snapshotter cannot see.  The calls are no-ops when
  no sanitizer session is active.

What is a hazard
----------------

Within one simulated cycle, for one (object, attribute) key:

- **write-write**: two *different* events wrote it, and at least one write
  was not a numeric-to-numeric change.  Numeric deltas are treated as
  commutative accumulation (counters are bumped by many same-cycle events
  by design); replacing a reference or a string is last-writer-wins and
  therefore insertion-order-dependent.
- **read-write**: one event read it (via :func:`note_read`) while a
  *different* event wrote it — the reader sees pre- or post-write state
  depending on queue order.

Causally-ordered events are exempt: when event *A* (or code it calls)
schedules event *B* into the *same* cycle, the kernel appends *B* behind
*A* and their relative order is forced by the causal chain — a
request-issue event conflicting with its own zero-latency grant is
synchronization, not a race.  The sanitized drain reports each event's
same-cycle parent (the event that inserted it) and the hazard reduction
skips ancestor-descendant pairs.

Known-benign last-writer-wins state (e.g. ``SystemStats.active``, the
multi-tenant attribution pointer, documented as "components set it, they
never clear it") is excluded via :data:`DEFAULT_ALLOWLIST`.

The sanitizer is observational: enabling it never changes simulated
results, only wall-clock cost.  It is a debug mode — expect a few times
slowdown — hence opt-in via ``repro run ... --sanitize``.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

#: (type name, attribute) pairs whose same-cycle write pairs are benign
#: *by design*.  Type names match against the owner's whole MRO, so one
#: base-class entry covers subclasses.  Every entry needs a justification:
DEFAULT_ALLOWLIST: Set[Tuple[str, str]] = {
    # The multi-tenant attribution pointer: components overwrite it at the
    # start of each service context; the last writer in a cycle is the
    # component whose charge-site runs next, which is insertion-order by
    # construction and documented in repro.sim.stats.
    ("SystemStats", "active"),
    # Request/grant rendezvous: a core's issue event writes the timestamp,
    # its grant event clears it.  The grant is causally after the request
    # through the mechanism's waitlist (a grant for this core cannot exist
    # before its request is enqueued) — a cross-object data dependency the
    # same-cycle parent chain cannot see.
    ("NDPCore", "_waiting_since"),
    # SE service-loop handshake: ``_finish``/``_start_next`` (previous
    # message completes) and ``_enqueue`` (new message arrives) may share a
    # cycle in either order.  Both orders service the new message starting
    # the same cycle — the queue, not bucket order, serializes work — so
    # the toggle converges.  Covers every SyncEngine subclass via the MRO.
    ("SyncEngine", "_busy"),
}

_NUMERIC = (int, float)
_PRIMITIVE = (int, float, bool, str, bytes, tuple, frozenset, type(None))


def _qualname(callback: Any) -> str:
    name = getattr(callback, "__qualname__", None)
    if name is None:
        name = getattr(type(callback), "__qualname__", "?")
    return name


def _observable(obj: Any) -> Iterator[Tuple[str, Any]]:
    """(attr, value) pairs of primitive-valued attributes of ``obj``.

    Handles both dict-backed and slotted objects (every hot simulator
    class uses ``__slots__``).  Non-primitive values (lists, dicts, other
    components) are skipped: diffing them per event would be quadratic,
    and mutations inside them are declared via :func:`note_write` instead.
    """
    d = getattr(obj, "__dict__", None)
    if d is not None:
        for attr, value in d.items():
            if isinstance(value, _PRIMITIVE):
                yield attr, value
        return
    for cls in type(obj).__mro__:
        for attr in getattr(cls, "__slots__", ()):
            try:
                value = getattr(obj, attr)
            except AttributeError:
                continue
            if isinstance(value, _PRIMITIVE):
                yield attr, value


@dataclass(frozen=True)
class Hazard:
    """One same-cycle ordering hazard."""

    cycle: int
    kind: str          # "write-write" | "read-write"
    obj: str           # "TypeName#index"
    attr: str
    events: Tuple[str, ...]   # qualnames of the involved callbacks
    detail: str = ""

    def as_dict(self) -> Dict[str, Any]:
        return {
            "cycle": self.cycle,
            "kind": self.kind,
            "obj": self.obj,
            "attr": self.attr,
            "events": list(self.events),
            "detail": self.detail,
        }

    def describe(self) -> str:
        who = " vs ".join(self.events)
        return (f"cycle {self.cycle}: {self.kind} on {self.obj}.{self.attr} "
                f"({who}){': ' + self.detail if self.detail else ''}")


class AccessRecorder:
    """Per-:class:`Simulator` access tracker driven by the sanitized drain.

    The kernel calls :meth:`before_event` / :meth:`after_event` around
    every callback and :meth:`end_cycle` once per drained timestamp; the
    recorder diffs owner snapshots into write sets and reduces each
    cycle's access map to hazards.
    """

    __slots__ = ("hazards", "allowlist", "events_observed",
                 "cycles_observed", "_writes", "_reads", "_names",
                 "_event_seq", "_event_name", "_owner", "_snapshot",
                 "_obj_index", "_parents", "_mros")

    def __init__(self, allowlist: Optional[Set[Tuple[str, str]]] = None):
        self.hazards: List[Hazard] = []
        self.allowlist = (DEFAULT_ALLOWLIST if allowlist is None
                          else allowlist)
        self.events_observed = 0
        self.cycles_observed = 0
        #: (obj_key, attr) -> list of (event_idx, event_name, old, new);
        #: event_idx is the event's position within the current cycle.
        self._writes: Dict[Tuple[int, str], List[Tuple[int, str, Any, Any]]] = {}
        #: (obj_key, attr) -> list of (event_idx, event_name)
        self._reads: Dict[Tuple[int, str], List[Tuple[int, str]]] = {}
        #: obj id -> display name "TypeName#index"
        self._names: Dict[int, str] = {}
        #: obj id -> every class name in the object's MRO (allowlisting a
        #: base class covers its subclasses).
        self._mros: Dict[int, Tuple[str, ...]] = {}
        self._obj_index = 0
        self._event_seq = -1
        self._event_name = ""
        self._owner: Any = None
        self._snapshot: Dict[str, Any] = {}
        #: within-cycle causality: index -> the event that scheduled it
        #: into this same cycle (None = carried in from an earlier cycle).
        self._parents: List[Optional[int]] = []

    # -- naming ---------------------------------------------------------
    def _name_of(self, obj: Any) -> str:
        key = id(obj)
        name = self._names.get(key)
        if name is None:
            name = f"{type(obj).__name__}#{self._obj_index}"
            self._obj_index += 1
            self._names[key] = name
            self._mros[key] = tuple(
                cls.__name__ for cls in type(obj).__mro__)
        return name

    # -- kernel-facing hooks -------------------------------------------
    def before_event(self, callback: Any,
                     parent: Optional[int] = None) -> None:
        self._event_seq += 1
        self._parents.append(parent)
        self._event_name = _qualname(callback)
        owner = getattr(callback, "__self__", None)
        self._owner = owner
        self._snapshot = dict(_observable(owner)) if owner is not None else {}

    def after_event(self) -> None:
        self.events_observed += 1
        owner = self._owner
        if owner is None:
            return
        before = self._snapshot
        missing = object()
        for attr, value in _observable(owner):
            old = before.get(attr, missing)
            if old is missing or old != value:
                self._record_write(owner, attr,
                                   None if old is missing else old, value)
        self._owner = None
        self._snapshot = {}

    def _ordered(self, a: int, b: int) -> bool:
        """True when one event is a same-cycle causal ancestor of the other.

        Parents always precede children within a cycle (the kernel appends
        descendants behind the running event), so only the later event's
        ancestor chain needs walking.
        """
        lo, hi = (a, b) if a < b else (b, a)
        parents = self._parents
        cur: Optional[int] = hi
        while cur is not None and cur >= lo:
            if cur == lo:
                return True
            cur = parents[cur]
        return False

    def _any_unordered(self, indexes: List[int]) -> bool:
        for i, a in enumerate(indexes):
            for b in indexes[i + 1:]:
                if a != b and not self._ordered(a, b):
                    return True
        return False

    def end_cycle(self, cycle: int) -> None:
        self.cycles_observed += 1
        self._event_seq = -1
        writes, reads = self._writes, self._reads
        parents, self._parents = self._parents, []
        if not writes and not reads:
            return
        self._parents = parents  # _ordered needs them during the reduction
        for (obj_id, attr), entries in writes.items():
            obj_name = self._names[obj_id]
            if any((cls, attr) in self.allowlist
                   for cls in self._mros.get(obj_id, ())):
                continue
            writer_idxs = sorted({idx for idx, _n, _o, _v in entries})
            non_numeric = not all(
                isinstance(old, _NUMERIC) and isinstance(new, _NUMERIC)
                and not isinstance(old, bool) and not isinstance(new, bool)
                for _i, _n, old, new in entries)
            if (len(writer_idxs) > 1 and non_numeric
                    and self._any_unordered(writer_idxs)):
                self.hazards.append(Hazard(
                    cycle=cycle, kind="write-write", obj=obj_name, attr=attr,
                    events=tuple(dict.fromkeys(
                        n for _i, n, _o, _v in entries)),
                    detail="non-commutative same-cycle writes from "
                           f"{len(writer_idxs)} causally-unordered events: "
                           "final value is queue-insertion-order-dependent",
                ))
            readers = reads.get((obj_id, attr))
            if readers:
                racing = [
                    (ridx, rname) for ridx, rname in readers
                    if ridx not in writer_idxs
                    and any(not self._ordered(ridx, w) for w in writer_idxs)
                ]
                if racing:
                    self.hazards.append(Hazard(
                        cycle=cycle, kind="read-write", obj=obj_name,
                        attr=attr,
                        events=tuple(dict.fromkeys(
                            [n for _i, n in racing]
                            + [n for _i, n, _o, _v in entries])),
                        detail="a reader and a writer share the cycle with "
                               "no causal order: the read observes pre- or "
                               "post-write state depending on queue order",
                    ))
        self._parents = []
        writes.clear()
        reads.clear()

    # -- explicit declarations -----------------------------------------
    def _record_write(self, obj: Any, attr: str, old: Any, new: Any) -> None:
        self._name_of(obj)
        key = (id(obj), attr)
        self._writes.setdefault(key, []).append(
            (self._event_seq, self._event_name, old, new))

    def note_write(self, obj: Any, attr: str,
                   old: Any = None, new: Any = None) -> None:
        self._record_write(obj, attr, old, new)

    def note_read(self, obj: Any, attr: str) -> None:
        self._name_of(obj)
        key = (id(obj), attr)
        self._reads.setdefault(key, []).append(
            (self._event_seq, self._event_name))


class SanitizerSession:
    """Aggregates recorders (one per Simulator) for one sanitized run."""

    def __init__(self, allowlist: Optional[Set[Tuple[str, str]]] = None):
        self.allowlist = allowlist
        self.recorders: List[AccessRecorder] = []

    def recorder(self) -> AccessRecorder:
        rec = AccessRecorder(self.allowlist)
        self.recorders.append(rec)
        return rec

    @property
    def hazards(self) -> List[Hazard]:
        return [h for rec in self.recorders for h in rec.hazards]

    @property
    def events_observed(self) -> int:
        return sum(rec.events_observed for rec in self.recorders)

    @property
    def cycles_observed(self) -> int:
        return sum(rec.cycles_observed for rec in self.recorders)

    def report(self) -> str:
        lines = [
            f"sanitizer: {self.events_observed} events across "
            f"{self.cycles_observed} populated cycles in "
            f"{len(self.recorders)} simulator(s); "
            f"{len(self.hazards)} hazard(s)"
        ]
        lines.extend("  " + h.describe() for h in self.hazards)
        return "\n".join(lines)


#: the process-local active session (None = sanitizer off).
_SESSION: Optional[SanitizerSession] = None


def sanitizer_active() -> bool:
    return _SESSION is not None


def current_session() -> Optional[SanitizerSession]:
    return _SESSION


@contextmanager
def sanitize_session(allowlist: Optional[Set[Tuple[str, str]]] = None):
    """Activate the sanitizer for the dynamic extent of a run.

    Simulators constructed inside the scope (``NDPSystem`` checks
    :func:`sanitizer_active`) record accesses into the yielded session.
    """
    global _SESSION
    if _SESSION is not None:
        raise RuntimeError("sanitizer session already active")
    session = SanitizerSession(allowlist)
    _SESSION = session
    try:
        yield session
    finally:
        _SESSION = None


def note_read(obj: Any, attr: str) -> None:
    """Declare a read the snapshotter cannot see (no-op when inactive)."""
    if _SESSION is not None and _SESSION.recorders:
        _SESSION.recorders[-1].note_read(obj, attr)


def note_write(obj: Any, attr: str) -> None:
    """Declare a write the snapshotter cannot see (no-op when inactive)."""
    if _SESSION is not None and _SESSION.recorders:
        _SESSION.recorders[-1].note_write(obj, attr)
