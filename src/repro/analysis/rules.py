"""The lint rules (RP001..RP006), each guarding a shipped failure mode.

Every rule here exists because this repository has already had (and fixed)
the bug it guards — see CHANGES.md: per-process-randomized ``hash(name)``
seeds (PR 2), config fields missed by ``as_dict``/``stable_hash`` forcing
``CACHE_FORMAT_VERSION`` bumps (PRs 2/3/7/8), closure-allocating
``schedule(lambda: ...)`` call sites regressing the PR-1 hot path, and
telemetry that must never touch physics.  Rules are deliberately scoped to
the module namespaces where the invariant matters; a violation elsewhere
is noise, not risk.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set, Tuple

from repro.analysis.base import (
    Finding,
    Module,
    Rule,
    call_name,
    dotted_name,
    register,
)

#: namespaces whose code determines simulated physics: nondeterminism here
#: breaks bit-identity and cache correctness.
PHYSICS_MODULES = (
    "repro.sim",
    "repro.workloads",
    "repro.core",
    "repro.sync",
    "repro.coherence",
)

#: namespaces where iteration order feeds scheduling / routing decisions.
ORDER_SENSITIVE_MODULES = (
    "repro.sim.engine",
    "repro.sim.network",
    "repro.sim.topo",
    "repro.workloads.graphs",
)

#: namespaces that must observe, never steer, the simulation.
OBSERVER_MODULES = (
    "repro.telemetry",
    "repro.sim.engine",
    "repro.sim.chrometrace",
)


def _stats_inventory() -> Tuple[Set[str], Set[str]]:
    """(SystemStats field names, declared extra-counter keys), lazily.

    Imported at check time (not module import) so the analysis package
    stays importable without the simulator and the inventory can never go
    stale — it IS the dataclass.
    """
    from dataclasses import fields

    from repro.sim.stats import EXTRA_COUNTERS, SystemStats

    return {f.name for f in fields(SystemStats)}, set(EXTRA_COUNTERS)


# ----------------------------------------------------------------------
@register
class NondeterminismSources(Rule):
    """RP001: ambient nondeterminism in physics code.

    Wall-clock time, the process-global ``random`` module, ``os.urandom``,
    builtin ``hash()`` (salted per interpreter launch for str/bytes) and
    ``id()`` (allocation-order dependent) have no business influencing
    simulated physics: any of them silently breaks cross-process
    bit-identity, which both the determinism diffs and the result cache
    rely on.  Seeded ``random.Random(seed)`` instances are fine.
    """

    id = "RP001"
    title = "nondeterminism source in simulation/workload code"

    #: dotted call targets that read ambient state.
    BANNED_CALLS = {
        "time.time": "wall-clock time.time()",
        "time.time_ns": "wall-clock time.time_ns()",
        "datetime.now": "wall-clock datetime.now()",
        "datetime.utcnow": "wall-clock datetime.utcnow()",
        "datetime.datetime.now": "wall-clock datetime.now()",
        "datetime.datetime.utcnow": "wall-clock datetime.utcnow()",
        "os.urandom": "os.urandom()",
        "uuid.uuid4": "uuid.uuid4()",
    }
    #: random-module attributes that are *not* the global RNG.
    RANDOM_OK = {"Random", "SystemRandom"}
    BUILTINS = {
        "hash": "builtin hash() is salted per interpreter launch for "
                "str/bytes keys (use zlib.crc32 or hashlib for stable seeds)",
        "id": "id() depends on allocation order; never let it reach "
              "ordering or hashing decisions",
    }

    def check(self, module: Module) -> Iterator[Finding]:
        if not module.in_module(*PHYSICS_MODULES):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name in self.BANNED_CALLS:
                yield self.finding(
                    module, node,
                    f"{self.BANNED_CALLS[name]} in physics code: simulated "
                    "behaviour must depend only on the config and seeds",
                )
            elif (name.startswith("random.")
                  and name.count(".") == 1
                  and name.split(".")[1] not in self.RANDOM_OK):
                yield self.finding(
                    module, node,
                    f"{name}() draws from the process-global RNG; construct "
                    "a seeded random.Random(seed) instead",
                )
            elif (isinstance(node.func, ast.Name)
                  and node.func.id in self.BUILTINS):
                yield self.finding(module, node, self.BUILTINS[node.func.id])


# ----------------------------------------------------------------------
class _SetTracker(ast.NodeVisitor):
    """Collects names/attributes bound to set-typed expressions."""

    SET_METHODS = {"union", "intersection", "difference",
                   "symmetric_difference"}
    SET_ANNOTATIONS = {"set", "frozenset", "Set", "FrozenSet", "AbstractSet",
                       "MutableSet"}

    def __init__(self):
        #: binding key ("name" or "self.attr") -> True when set-typed.
        self.set_bindings: Set[str] = set()

    @staticmethod
    def binding_key(node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name):
            return node.id
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)):
            return f"{node.value.id}.{node.attr}"
        return None

    def is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = call_name(node)
            if name in ("set", "frozenset"):
                return True
            if (isinstance(node.func, ast.Attribute)
                    and node.func.attr in self.SET_METHODS):
                return True
        key = self.binding_key(node)
        return key is not None and key in self.set_bindings

    def _annotation_is_set(self, annotation: Optional[ast.AST]) -> bool:
        if annotation is None:
            return False
        base = annotation
        if isinstance(base, ast.Subscript):  # Set[Channel]
            base = base.value
        name = dotted_name(base)
        return name.rsplit(".", 1)[-1] in self.SET_ANNOTATIONS

    def visit_Assign(self, node: ast.Assign) -> None:
        if self.is_set_expr(node.value):
            for target in node.targets:
                key = self.binding_key(target)
                if key:
                    self.set_bindings.add(key)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if self._annotation_is_set(node.annotation) or (
                node.value is not None and self.is_set_expr(node.value)):
            key = self.binding_key(node.target)
            if key:
                self.set_bindings.add(key)
        self.generic_visit(node)

    def visit_arg(self, node: ast.arg) -> None:
        if self._annotation_is_set(node.annotation):
            self.set_bindings.add(node.arg)
        self.generic_visit(node)


@register
class UnorderedIteration(Rule):
    """RP002: iterating a set in scheduling/routing-order-sensitive code.

    ``set`` iteration order is a CPython implementation detail (hash- and
    insertion-history-dependent); when the loop body schedules events,
    builds adjacency, or picks routes, that order becomes physics.  Wrap
    the iterable in ``sorted(...)`` — and say in a comment what the sort
    key pins down.  Membership tests are fine; only iteration is flagged.
    """

    id = "RP002"
    title = "unordered set iteration in order-sensitive code"

    #: conversion calls that preserve (and therefore leak) set order.
    ORDER_LEAKING_CALLS = {"list", "tuple", "iter", "enumerate"}

    def check(self, module: Module) -> Iterator[Finding]:
        if not module.in_module(*ORDER_SENSITIVE_MODULES):
            return
        tracker = _SetTracker()
        tracker.visit(module.tree)
        for node in ast.walk(module.tree):
            iters = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            elif (isinstance(node, ast.Call)
                  and isinstance(node.func, ast.Name)
                  and node.func.id in self.ORDER_LEAKING_CALLS
                  and node.args):
                iters.append(node.args[0])
            for it in iters:
                if tracker.is_set_expr(it):
                    yield self.finding(
                        module, it,
                        "iteration over a set: CPython's set order is an "
                        "implementation detail — use sorted(...) with an "
                        "explicit key so the order is pinned by the code",
                    )


# ----------------------------------------------------------------------
@register
class ConfigFieldCoverage(Rule):
    """RP003: every SystemConfig field must reach serialization + validation.

    A field missing from ``as_dict``/``from_dict``/``stable_hash`` silently
    falls out of cache keys (two different machines collide on one cached
    result — the PR-2/3/7/8 ``CACHE_FORMAT_VERSION`` bug class); a field
    no validation ever reads can drift into nonsense without an error.
    Full-coverage idioms (``asdict(self)``, ``cls(**payload)``, hashing
    ``self.as_dict()``) satisfy the serialization legs wholesale.
    """

    id = "RP003"
    title = "SystemConfig field missing from serialization/validation"

    VALIDATION_METHODS = ("validate", "__post_init__")

    def check(self, module: Module) -> Iterator[Finding]:
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef) and node.name == "SystemConfig":
                yield from self._check_class(module, node)

    def _check_class(self, module: Module,
                     cls: ast.ClassDef) -> Iterator[Finding]:
        config_fields: Dict[str, ast.AnnAssign] = {}
        methods: Dict[str, ast.FunctionDef] = {}
        for stmt in cls.body:
            if (isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and not stmt.target.id.startswith("_")
                    and "ClassVar" not in ast.dump(stmt.annotation)):
                config_fields[stmt.target.id] = stmt
            elif isinstance(stmt, ast.FunctionDef):
                methods[stmt.name] = stmt

        as_dict_cover = self._serialization_cover(
            methods.get("as_dict"), full_markers=("asdict",))
        from_dict_cover = self._serialization_cover(
            methods.get("from_dict"), full_markers=("cls",),
            star_kwargs=True)
        stable_cover = self._serialization_cover(
            methods.get("stable_hash"), full_markers=("as_dict",))
        if stable_cover is not None and as_dict_cover is None \
                and self._calls(methods.get("stable_hash"), "as_dict"):
            stable_cover = None  # inherits as_dict's full coverage

        validated: Set[str] = set()
        for name, fn in methods.items():
            if name in self.VALIDATION_METHODS or name.startswith("_validate"):
                validated |= self._self_reads(fn)

        for field_name, node in config_fields.items():
            for part, cover in (("as_dict", as_dict_cover),
                                ("from_dict", from_dict_cover),
                                ("stable_hash", stable_cover)):
                if cover is not None and field_name not in cover:
                    yield self.finding(
                        module, node,
                        f"SystemConfig.{field_name} is missing from "
                        f"{part}(): it would fall out of cache keys",
                    )
            if field_name not in validated:
                yield self.finding(
                    module, node,
                    f"SystemConfig.{field_name} is never read by validate()/"
                    "__post_init__/_validate_* — add a range or type check",
                )

    @staticmethod
    def _calls(fn: Optional[ast.FunctionDef], name: str) -> bool:
        if fn is None:
            return False
        for node in ast.walk(fn):
            if isinstance(node, ast.Call) and call_name(node).endswith(name):
                return True
        return False

    @staticmethod
    def _serialization_cover(fn: Optional[ast.FunctionDef],
                             full_markers: Tuple[str, ...] = (),
                             star_kwargs: bool = False) -> Optional[Set[str]]:
        """Field names a method enumerates, or None for full coverage."""
        if fn is None:
            return None  # absent method = nothing to check here
        for node in ast.walk(fn):
            if isinstance(node, ast.Call):
                name = call_name(node)
                if any(name == m or name.endswith("." + m)
                       for m in full_markers):
                    if not star_kwargs:
                        return None
                    if any(kw.arg is None for kw in node.keywords):
                        return None  # cls(**payload)
        covered: Set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Dict):
                covered.update(
                    key.value for key in node.keys
                    if isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                )
            elif isinstance(node, ast.Call):
                covered.update(
                    kw.arg for kw in node.keywords if kw.arg is not None
                )
        return covered

    @staticmethod
    def _self_reads(fn: ast.FunctionDef) -> Set[str]:
        reads: Set[str] = set()
        for node in ast.walk(fn):
            if (isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"):
                reads.add(node.attr)
        return reads


# ----------------------------------------------------------------------
@register
class ClosureScheduling(Rule):
    """RP004: ``schedule(lambda: ...)`` regresses the args-based hot path.

    PR 1's kernel rewrite converted every scheduling call site to
    ``sim.schedule(delay, bound_method, *args)`` — one closure allocation
    per event was the single largest cost in the event storm.  New lambdas
    (or nested defs) passed to ``schedule``/``schedule_at``/``every`` put
    that allocation back, silently.
    """

    id = "RP004"
    title = "closure-capturing callback passed to the scheduler"

    SCHEDULING_CALLS = {"schedule", "schedule_at", "every", "wait"}

    def check(self, module: Module) -> Iterator[Finding]:
        if not module.in_module("repro"):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            target = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else "")
            if target not in self.SCHEDULING_CALLS:
                continue
            values = list(node.args) + [kw.value for kw in node.keywords]
            for value in values:
                if isinstance(value, ast.Lambda):
                    yield self.finding(
                        module, value,
                        f"lambda passed to {target}(): pass a bound method "
                        "plus *args instead (one closure per event is the "
                        "hot-path cost PR 1 removed)",
                    )


# ----------------------------------------------------------------------
@register
class ObserverPurity(Rule):
    """RP005: telemetry/kernel-accounting code must not write physics.

    The telemetry bus and the kernel's elision/profile accounting are
    documented as bit-identical-by-construction: enabling them must never
    change a physics counter.  This rule bans writes to any
    :class:`~repro.sim.stats.SystemStats` field (including ``extra``)
    from the observer modules.
    """

    id = "RP005"
    title = "physics-counter write from observer code"

    def check(self, module: Module) -> Iterator[Finding]:
        if not module.in_module(*OBSERVER_MODULES):
            return
        physics, _extra = _stats_inventory()
        for node in ast.walk(module.tree):
            targets = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                attr = self._stats_attr(target)
                if attr in physics:
                    yield self.finding(
                        module, node,
                        f"write to SystemStats.{attr} from observer module "
                        f"{module.module_name}: telemetry and kernel "
                        "accounting must never touch physics counters",
                    )

    @staticmethod
    def _stats_attr(target: ast.AST) -> Optional[str]:
        if isinstance(target, ast.Subscript):  # stats.extra["k"] = ...
            target = target.value
        if isinstance(target, ast.Attribute):
            return target.attr
        return None


# ----------------------------------------------------------------------
@register
class UndeclaredCounterKey(Rule):
    """RP006: ad-hoc counter keys must match the declared inventory.

    ``stats.extra[...]`` accepts any string at runtime, so a typo'd key
    (``"bakey_polls"``) creates a parallel counter that every report reads
    as zero.  Keys at bump/charge sites must be string literals present in
    :data:`repro.sim.stats.EXTRA_COUNTERS`.
    """

    id = "RP006"
    title = "undeclared or non-literal stats.extra counter key"

    def check(self, module: Module) -> Iterator[Finding]:
        if not module.in_module("repro"):
            return
        inventory: Optional[Set[str]] = None
        for node in ast.walk(module.tree):
            targets = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            for target in targets:
                if not (isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Attribute)
                        and target.value.attr == "extra"):
                    continue
                if inventory is None:
                    _physics, inventory = _stats_inventory()
                key = target.slice
                if not (isinstance(key, ast.Constant)
                        and isinstance(key.value, str)):
                    yield self.finding(
                        module, node,
                        "non-literal stats.extra counter key: bump sites "
                        "must name their counter so the inventory check "
                        "can see it",
                    )
                elif key.value not in inventory:
                    yield self.finding(
                        module, node,
                        f"stats.extra[{key.value!r}] is not declared in "
                        "repro.sim.stats.EXTRA_COUNTERS — add it there (or "
                        "fix the typo)",
                    )
