"""The lint engine: walk source files, run rules, apply suppressions.

Layering of a finding's fate (first match wins):

1. ``# repro: noqa [RULE]`` on the offending line — suppressed inline;
2. a matching fingerprint in ``baseline.json`` — grandfathered (reported
   separately, never fails the gate);
3. otherwise it is a *new* finding and ``repro lint`` exits non-zero.

The baseline keys findings by :meth:`Finding.fingerprint` — (rule, path,
stripped source line) — so entries survive unrelated edits that shift line
numbers, and go stale (flagged by ``--update-baseline``) when the
offending line itself changes.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis import rules as _rules  # noqa: F401  (registers RULES)
from repro.analysis.base import Finding, Module, RULES, noqa_map, suppressed

#: baseline schema version (bump on incompatible format changes).
BASELINE_VERSION = 1


def default_source_root() -> Path:
    """The directory containing the ``repro`` package (i.e. ``src/``)."""
    import repro

    return Path(repro.__file__).resolve().parent.parent


def default_baseline_path() -> Path:
    return Path(__file__).resolve().parent / "baseline.json"


@dataclass
class LintReport:
    """Outcome of one lint run, split by suppression layer."""

    findings: List[Finding] = field(default_factory=list)   # new — gate fails
    baselined: List[Finding] = field(default_factory=list)  # grandfathered
    suppressed_count: int = 0                               # inline noqa
    checked_files: int = 0
    rules: Tuple[str, ...] = ()

    @property
    def clean(self) -> bool:
        return not self.findings

    def as_dict(self) -> Dict[str, object]:
        return {
            "clean": self.clean,
            "checked_files": self.checked_files,
            "rules": list(self.rules),
            "suppressed": self.suppressed_count,
            "findings": [f.as_dict() for f in self.findings],
            "baselined": [f.as_dict() for f in self.baselined],
        }


class LintError(RuntimeError):
    """A source file could not be parsed (lint requires a parsable tree)."""


def _iter_source_files(root: Path) -> Iterable[Path]:
    for path in sorted(root.rglob("*.py")):
        yield path


def _module_name(path: Path, source_root: Path) -> str:
    rel = path.resolve().relative_to(source_root)
    parts = list(rel.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def _select_rules(rule_ids: Optional[Sequence[str]]):
    if not rule_ids:
        return [RULES[rid] for rid in sorted(RULES)]
    selected = []
    for rid in rule_ids:
        rid = rid.upper()
        if rid not in RULES:
            known = ", ".join(sorted(RULES))
            raise LintError(f"unknown rule {rid!r} (known: {known})")
        selected.append(RULES[rid])
    return selected


def load_baseline(path: Path) -> Dict[Tuple[str, str, str], str]:
    """fingerprint -> justification, from a committed baseline file."""
    if not path.exists():
        return {}
    payload = json.loads(path.read_text())
    entries = {}
    for entry in payload.get("findings", []):
        fp = (entry["rule"], entry["path"], entry["snippet"])
        entries[fp] = entry.get("justification", "")
    return entries


def write_baseline(path: Path, findings: Sequence[Finding],
                   justifications: Dict[Tuple[str, str, str], str]) -> None:
    """Write the baseline for ``findings``, keeping known justifications."""
    payload = {
        "version": BASELINE_VERSION,
        "comment": (
            "Grandfathered lint findings. Every entry needs a written "
            "justification; remove entries as the code is fixed."
        ),
        "findings": [
            {
                "rule": f.rule,
                "path": f.path,
                "snippet": f.snippet,
                "justification": justifications.get(
                    f.fingerprint(), "TODO: justify"),
            }
            for f in sorted(set(findings),
                            key=lambda f: (f.rule, f.path, f.snippet))
        ],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")


def lint_paths(paths: Sequence[Path], source_root: Path,
               rule_ids: Optional[Sequence[str]] = None,
               baseline: Optional[Dict[Tuple[str, str, str], str]] = None,
               ) -> LintReport:
    """Lint explicit files; paths are reported relative to ``source_root``."""
    selected = _select_rules(rule_ids)
    baseline = baseline or {}
    report = LintReport(rules=tuple(rule.id for rule in selected))
    for path in paths:
        source = path.read_text()
        rel = path.resolve().relative_to(source_root).as_posix()
        try:
            module = Module(rel, _module_name(path, source_root), source)
        except SyntaxError as exc:
            raise LintError(f"cannot parse {rel}: {exc}") from exc
        report.checked_files += 1
        suppressions = noqa_map(module.lines)
        for rule in selected:
            for finding in rule.check(module):
                if suppressed(finding, suppressions):
                    report.suppressed_count += 1
                elif finding.fingerprint() in baseline:
                    report.baselined.append(finding)
                else:
                    report.findings.append(finding)
    report.findings.sort(key=lambda f: (f.path, f.line, f.rule))
    report.baselined.sort(key=lambda f: (f.path, f.line, f.rule))
    return report


def lint_package(rule_ids: Optional[Sequence[str]] = None,
                 source_root: Optional[Path] = None,
                 baseline_path: Optional[Path] = None) -> LintReport:
    """Lint the whole installed ``repro`` package against the baseline."""
    source_root = source_root or default_source_root()
    baseline_path = baseline_path or default_baseline_path()
    package_root = source_root / "repro"
    paths = list(_iter_source_files(package_root))
    return lint_paths(paths, source_root, rule_ids,
                      baseline=load_baseline(baseline_path))


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_table(report: LintReport) -> str:
    from repro.harness.reporting import format_table

    lines: List[str] = []
    if report.findings:
        rows = [
            {"rule": f.rule, "location": f"{f.path}:{f.line}",
             "message": f.message}
            for f in report.findings
        ]
        lines.append(format_table(rows, ["rule", "location", "message"],
                                  title="new lint findings"))
    summary = (
        f"{len(report.findings)} new finding(s), "
        f"{len(report.baselined)} baselined, "
        f"{report.suppressed_count} noqa-suppressed "
        f"across {report.checked_files} file(s)"
    )
    lines.append(summary)
    if report.clean:
        lines.append("lint: clean")
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    return json.dumps(report.as_dict(), indent=2)
