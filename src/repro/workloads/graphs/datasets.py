"""Synthetic graph datasets standing in for the paper's inputs.

The paper evaluates on wikipedia-20051105 (wk), soc-LiveJournal1 (sl),
sx-stackoverflow (sx) and com-Orkut (co) — multi-million-edge graphs that a
pure-Python cycle simulator cannot chew through.  We substitute
deterministic scaled-down graphs with the same *shape*: undirected,
power-law degree distributions (preferential attachment), with the paper's
relative ordering of size and density preserved (wk smallest … co largest
and densest).  What the experiments stress — contention class, fraction of
cross-unit edges under a given partitioning, degree skew — survives the
scale-down.

The generator is self-contained (no networkx dependency in the library;
tests use networkx only to verify kernel outputs).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.workloads.base import scaled, stable_name_seed


@dataclass
class Graph:
    """An undirected graph in adjacency-list form."""

    name: str
    num_vertices: int
    adjacency: List[List[int]]
    seed: int = 0

    @property
    def num_edges(self) -> int:
        return sum(len(neigh) for neigh in self.adjacency) // 2

    def degree(self, v: int) -> int:
        return len(self.adjacency[v])

    def edges(self):
        for u, neigh in enumerate(self.adjacency):
            for v in neigh:
                if u < v:
                    yield (u, v)

    def validate(self) -> None:
        for u, neigh in enumerate(self.adjacency):
            if len(set(neigh)) != len(neigh):
                raise ValueError(f"duplicate edges at vertex {u}")
            for v in neigh:
                if not 0 <= v < self.num_vertices or v == u:
                    raise ValueError(f"bad edge ({u}, {v})")
                if u not in self.adjacency[v]:
                    raise ValueError(f"asymmetric edge ({u}, {v})")


def barabasi_albert(n: int, m: int, seed: int, name: str = "ba") -> Graph:
    """Preferential-attachment graph: n vertices, m edges per new vertex.

    Classic Barabási-Albert: power-law degrees, connected, undirected.
    """
    if n < m + 1 or m < 1:
        raise ValueError("need n > m >= 1")
    rng = random.Random(seed)
    adjacency: List[List[int]] = [[] for _ in range(n)]
    # attachment pool: vertices appear once per incident edge (degree-biased)
    pool: List[int] = []

    # seed clique among the first m+1 vertices
    for u in range(m + 1):
        for v in range(u + 1, m + 1):
            adjacency[u].append(v)
            adjacency[v].append(u)
            pool.extend((u, v))

    for u in range(m + 1, n):
        targets = set()
        while len(targets) < m:
            targets.add(pool[rng.randrange(len(pool))])
        # Determinism: set iteration order is a CPython implementation
        # detail, and edge insertion order shapes every adjacency list (and
        # therefore access patterns in every graph workload).  sorted()
        # pins the order to the vertex ids themselves.  Changing this
        # changed the generated graphs — CACHE_FORMAT_VERSION was bumped.
        for v in sorted(targets):
            adjacency[u].append(v)
            adjacency[v].append(u)
            pool.extend((u, v))
    return Graph(name=name, num_vertices=n, adjacency=adjacency, seed=seed)


#: dataset name -> (base vertex count, attachment density m).  Ordering and
#: relative density follow the paper's inputs (co densest, wk smallest).
DATASET_SPECS: Dict[str, Tuple[int, int]] = {
    "wk": (160, 2),
    "sl": (220, 3),
    "sx": (280, 2),
    "co": (340, 4),
}

DATASETS = tuple(DATASET_SPECS)


def load_dataset(name: str) -> Graph:
    """Build one of the four named datasets at the active REPRO_SCALE."""
    try:
        base_n, m = DATASET_SPECS[name]
    except KeyError:
        raise ValueError(f"unknown dataset {name!r}; choose from {DATASETS}")
    n = scaled(base_n)
    return barabasi_albert(n, m, seed=stable_name_seed(name), name=name)
