"""Graph datasets, partitioners, and CRONO-style push kernels."""

from repro.workloads.graphs.datasets import (
    DATASETS,
    DATASET_SPECS,
    Graph,
    barabasi_albert,
    load_dataset,
)
from repro.workloads.graphs.kernels import (
    ALL_KERNELS,
    BFSWorkload,
    ConnectedComponentsWorkload,
    PageRankWorkload,
    SSSPWorkload,
    TeenageFollowersWorkload,
    TriangleCountingWorkload,
)
from repro.workloads.graphs.partition import (
    bfs_partition,
    edge_cut,
    part_sizes,
    random_partition,
)
from repro.workloads.graphs.runtime import GraphKernelWorkload

__all__ = [
    "ALL_KERNELS",
    "BFSWorkload",
    "ConnectedComponentsWorkload",
    "DATASETS",
    "DATASET_SPECS",
    "Graph",
    "GraphKernelWorkload",
    "PageRankWorkload",
    "SSSPWorkload",
    "TeenageFollowersWorkload",
    "TriangleCountingWorkload",
    "barabasi_albert",
    "bfs_partition",
    "edge_cut",
    "load_dataset",
    "part_sizes",
    "random_partition",
]
