"""Graph partitioning across NDP units (paper Sec. 6.6 / Fig. 19).

The paper statically partitions graphs across NDP units, by default
randomly, and studies the effect of a better partitioning computed with
METIS.  We provide:

- :func:`random_partition` — the default placement;
- :func:`bfs_partition` — the METIS substitute: split a BFS ordering into
  equal contiguous chunks, which keeps neighbourhoods together and cuts far
  fewer edges than random (the property Fig. 19 depends on);
- :func:`edge_cut` — the crossing-edge metric both are judged by.
"""

from __future__ import annotations

import random
from collections import deque
from typing import List

from repro.workloads.graphs.datasets import Graph


def random_partition(graph: Graph, num_parts: int, seed: int = 0) -> List[int]:
    """Balanced random assignment vertex -> part."""
    if num_parts < 1:
        raise ValueError("need at least one part")
    rng = random.Random(seed)
    assignment = [v % num_parts for v in range(graph.num_vertices)]
    rng.shuffle(assignment)
    return assignment


def bfs_partition(graph: Graph, num_parts: int, seed: int = 0,
                  passes: int = 3) -> List[int]:
    """Locality-preserving partitioning (METIS stand-in).

    Seed parts with a BFS-order chunking, then run a few greedy refinement
    passes (Fennel/Kernighan-Lin flavoured): move a vertex to the part
    holding most of its neighbours whenever balance allows.  On power-law
    graphs this cuts substantially fewer edges than random placement — the
    property the Fig. 19 experiment depends on.
    """
    if num_parts < 1:
        raise ValueError("need at least one part")
    n = graph.num_vertices
    order: List[int] = []
    visited = [False] * n
    for start in range(n):
        if visited[start]:
            continue
        visited[start] = True
        queue = deque([start])
        while queue:
            u = queue.popleft()
            order.append(u)
            for v in graph.adjacency[u]:
                if not visited[v]:
                    visited[v] = True
                    queue.append(v)

    chunk = (n + num_parts - 1) // num_parts
    assignment = [0] * n
    for position, vertex in enumerate(order):
        assignment[vertex] = min(position // chunk, num_parts - 1)

    # greedy refinement under a balance cap.
    sizes = part_sizes(assignment, num_parts)
    cap = chunk + max(chunk // 8, 1)
    for _ in range(passes):
        moved = False
        for u in order:
            counts = [0] * num_parts
            for v in graph.adjacency[u]:
                counts[assignment[v]] += 1
            best = max(range(num_parts),
                       key=lambda p: (counts[p], -sizes[p]))
            current = assignment[u]
            if best != current and counts[best] > counts[current] and sizes[best] < cap:
                sizes[current] -= 1
                sizes[best] += 1
                assignment[u] = best
                moved = True
        if not moved:
            break
    return assignment


#: partitioners addressable by name, all with a ``(graph, parts, seed)``
#: signature — what lets a sweep spec reference a placement policy as a
#: plain (picklable, hashable) string instead of a closure.
PARTITIONERS = {
    "random": random_partition,
    "metis": bfs_partition,  # the paper's METIS run; bfs_partition stands in
    "bfs": bfs_partition,
}


def get_partitioner(name: str):
    """Look up a named partitioner (see :data:`PARTITIONERS`)."""
    try:
        return PARTITIONERS[name]
    except KeyError:
        raise ValueError(
            f"unknown partitioner {name!r}; choose from {sorted(PARTITIONERS)}"
        )


def edge_cut(graph: Graph, assignment: List[int]) -> int:
    """Number of edges whose endpoints land in different parts."""
    if len(assignment) != graph.num_vertices:
        raise ValueError("assignment length must match vertex count")
    return sum(1 for u, v in graph.edges() if assignment[u] != assignment[v])


def part_sizes(assignment: List[int], num_parts: int) -> List[int]:
    sizes = [0] * num_parts
    for part in assignment:
        sizes[part] += 1
    return sizes
