"""Push-style graph-kernel runtime (CRONO-like, paper Sec. 5 "Workloads").

The paper's graph applications come from CRONO (push versions): the output
property array is shared read-write and protected by fine-grained per-vertex
locks, with barriers separating iterations.  This module provides the
common machinery:

- graphs are partitioned across NDP units (random by default; Fig. 19 uses
  the METIS-substitute :func:`~repro.workloads.graphs.partition.bfs_partition`);
- each vertex's property word and lock live in its partition's unit, and
  each unit's vertices are split evenly among that unit's client cores;
- graph structure (adjacency) is shared read-only → cacheable; property
  arrays are shared read-write → uncacheable (Sec. 2.1);
- rounds are separated by an across-units barrier; convergence is decided
  by a designated core between two barriers (the usual double-barrier
  reduction idiom).

Kernels subclass :class:`GraphKernelWorkload` and implement
``vertex_program`` (+ ``init_state`` / ``reference``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Union

from repro.core import api
from repro.sim.program import Batch, Compute, Load
from repro.sim.system import NDPSystem
from repro.workloads.base import Workload
from repro.workloads.graphs.datasets import Graph, load_dataset
from repro.workloads.graphs.partition import get_partitioner, random_partition


class GraphKernelWorkload(Workload):
    """Base class for the six CRONO-style kernels."""

    name = "graph_kernel"
    #: upper bound on rounds (kernels also stop at convergence).
    max_rounds = 12
    #: whether this kernel synchronizes rounds with barriers (tf does not).
    uses_barriers = True

    def __init__(self, dataset: str = "wk", graph: Optional[Graph] = None,
                 partitioner: Optional[Union[Callable, str]] = None,
                 seed: int = 7):
        self.dataset = dataset
        self.graph = graph
        # a string names a registered partitioner (sweep specs can't carry
        # closures); the seed binds here so placement is reproducible.
        if isinstance(partitioner, str):
            fn = get_partitioner(partitioner)
            partitioner = lambda g, parts: fn(g, parts, seed=seed)
        self.partitioner = partitioner or (
            lambda g, parts: random_partition(g, parts, seed=seed)
        )
        self.seed = seed
        self.assignment: List[int] = []
        self.vertex_addr: List[int] = []
        self.vertex_lock: List = []
        self.edge_addr: List[int] = []
        self._my_vertices: Dict[int, List[int]] = {}
        self._edges_processed = 0
        self._changed = False
        self._continue = True
        self._round = 0

    # ------------------------------------------------------------------
    # Kernel interface
    # ------------------------------------------------------------------
    def init_state(self) -> None:
        """Initialize functional kernel state (dist/labels/ranks...)."""
        raise NotImplementedError

    def vertex_program(self, system: NDPSystem, u: int):
        """Generator processing vertex ``u`` for the current round."""
        raise NotImplementedError

    def round_finished(self) -> None:
        """Hook between rounds (e.g., swap pagerank arrays)."""

    def check_result(self) -> None:
        """Verify the kernel's functional output."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def mark_changed(self) -> None:
        self._changed = True

    def read_neighbours(self, u: int):
        """Timing ops for scanning vertex u's adjacency row (cacheable) and
        its own property word (uncacheable)."""
        degree = self.graph.degree(u)
        ops = [Load(self.vertex_addr[u], cacheable=False)]
        base = self.edge_addr[u]
        ops.extend(Load(base + 8 * i) for i in range(degree))
        ops.append(Compute(2 * degree + 2))
        return Batch(tuple(ops))

    #: per-edge computation outside the critical section (address math,
    #: floating point, branch work) — keeps the sync-to-compute ratio in the
    #: regime the paper's full-size runs operate in.
    edge_compute_cycles = 24

    def locked_update(self, v: int):
        """Ops for a lock-protected read-modify-write of property[v].

        Usage: ``yield from self.locked_update(v)`` with the functional
        mutation performed by the caller right after (still "inside" the
        critical section — the release below is what publishes it).
        """
        yield Compute(self.edge_compute_cycles)
        yield api.lock_acquire(self.vertex_lock[v])
        yield Batch((
            Load(self.vertex_addr[v], cacheable=False),
            Compute(2),
        ))

    def unlock_after_update(self, v: int, wrote: bool = True):
        from repro.sim.program import Store
        if wrote:
            yield Store(self.vertex_addr[v], cacheable=False)
        yield api.lock_release(self.vertex_lock[v])

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def build(self, system: NDPSystem) -> Dict[int, object]:
        if self.graph is None:
            self.graph = load_dataset(self.dataset)
        graph = self.graph
        units = system.config.num_units
        self.assignment = self.partitioner(graph, units)

        self.vertex_addr = [0] * graph.num_vertices
        self.edge_addr = [0] * graph.num_vertices
        self.vertex_lock = [None] * graph.num_vertices
        for v in range(graph.num_vertices):
            unit = self.assignment[v]
            self.vertex_addr[v] = system.addrmap.alloc(unit, 8)
            self.edge_addr[v] = system.addrmap.alloc(
                unit, max(8 * graph.degree(v), 8)
            )
            self.vertex_lock[v] = system.create_syncvar(unit=unit)

        # distribute each unit's vertices across that unit's client cores.
        cores_by_unit: Dict[int, List[int]] = {}
        for core in system.cores:
            cores_by_unit.setdefault(core.unit_id, []).append(core.core_id)
        self._my_vertices = {core.core_id: [] for core in system.cores}
        counters = {unit: 0 for unit in range(units)}
        for v in range(graph.num_vertices):
            unit = self.assignment[v]
            owners = cores_by_unit[unit]
            core_id = owners[counters[unit] % len(owners)]
            counters[unit] += 1
            self._my_vertices[core_id].append(v)

        self._barriers = [
            system.create_syncvar(unit=0, name="graph_bar0"),
            system.create_syncvar(unit=units - 1, name="graph_bar1"),
        ]
        self.init_state()

        participants = len(system.cores)
        leader = system.cores[0].core_id
        return {
            core.core_id: self._core_program(system, core.core_id,
                                             participants, leader)
            for core in system.cores
        }

    def _core_program(self, system: NDPSystem, core_id: int,
                      participants: int, leader: int):
        my_vertices = self._my_vertices[core_id]

        def program():
            while True:
                for u in my_vertices:
                    yield from self.vertex_program(system, u)
                if not self.uses_barriers:
                    break
                # double-barrier convergence reduction.
                yield api.barrier_wait_across_units(self._barriers[0], participants)
                if core_id == leader:
                    self._round += 1
                    self._continue = (
                        self._changed and self._round < self.max_rounds
                    )
                    self._changed = False
                    self.round_finished()
                yield api.barrier_wait_across_units(self._barriers[1], participants)
                if not self._continue:
                    break

        return program()

    # ------------------------------------------------------------------
    def verify(self, system: NDPSystem) -> None:
        self.check_result()

    def operations(self) -> int:
        return self._edges_processed

    @property
    def rounds_executed(self) -> int:
        return self._round
