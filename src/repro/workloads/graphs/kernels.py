"""The six CRONO-style graph kernels (paper Table 6, Figs. 12-15, 17, 19, 20).

All are push-style with per-vertex locks on the shared output array; all but
teenage-followers use barriers between rounds:

- :class:`BFSWorkload` — level-synchronized breadth-first search;
- :class:`ConnectedComponentsWorkload` — label propagation;
- :class:`SSSPWorkload` — Bellman-Ford single-source shortest paths;
- :class:`PageRankWorkload` — push-based PageRank;
- :class:`TeenageFollowersWorkload` — one-pass counting (locks only);
- :class:`TriangleCountingWorkload` — neighbourhood intersection.

Each kernel verifies its output against an independent sequential reference
computed in plain Python, so any mutual-exclusion bug in a mechanism fails
the run rather than inflating its score.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.sim.program import Batch, Compute, Load
from repro.workloads.graphs.runtime import GraphKernelWorkload


class BFSWorkload(GraphKernelWorkload):
    name = "bfs"
    max_rounds = 64

    def init_state(self) -> None:
        n = self.graph.num_vertices
        self.dist = [float("inf")] * n
        self.dist[0] = 0
        self.frontier = {0}
        self.next_frontier = set()

    def vertex_program(self, system, u: int):
        if u not in self.frontier:
            return
        yield self.read_neighbours(u)
        base = self.dist[u]
        for v in self.graph.adjacency[u]:
            if self.dist[v] > base + 1:  # test (lock-free read)
                yield from self.locked_update(v)
                wrote = False
                if self.dist[v] > base + 1:  # test-and-set under the lock
                    self.dist[v] = base + 1
                    self.next_frontier.add(v)
                    self.mark_changed()
                    wrote = True
                yield from self.unlock_after_update(v, wrote)
        self._edges_processed += self.graph.degree(u)

    def round_finished(self) -> None:
        self.frontier = self.next_frontier
        self.next_frontier = set()

    def check_result(self) -> None:
        reference = _bfs_reference(self.graph.adjacency, source=0)
        if self.dist != reference:
            raise AssertionError("BFS distances do not match the reference")


class ConnectedComponentsWorkload(GraphKernelWorkload):
    name = "cc"
    max_rounds = 64

    def init_state(self) -> None:
        self.labels = list(range(self.graph.num_vertices))

    def vertex_program(self, system, u: int):
        yield self.read_neighbours(u)
        label = self.labels[u]
        for v in self.graph.adjacency[u]:
            if self.labels[v] > label:
                yield from self.locked_update(v)
                wrote = False
                if self.labels[v] > label:
                    self.labels[v] = label
                    self.mark_changed()
                    wrote = True
                yield from self.unlock_after_update(v, wrote)
        self._edges_processed += self.graph.degree(u)

    def check_result(self) -> None:
        components = _components_reference(self.graph.adjacency)
        for comp in components:
            expected = min(comp)
            for v in comp:
                if self.labels[v] != expected:
                    raise AssertionError("CC labels did not converge")


class SSSPWorkload(GraphKernelWorkload):
    name = "sssp"
    max_rounds = 64

    def init_state(self) -> None:
        rng = random.Random(self.seed)
        self.weights: Dict[tuple, int] = {}
        for u, v in self.graph.edges():
            w = rng.randint(1, 10)
            self.weights[(u, v)] = w
            self.weights[(v, u)] = w
        n = self.graph.num_vertices
        self.dist = [float("inf")] * n
        self.dist[0] = 0

    def vertex_program(self, system, u: int):
        if self.dist[u] == float("inf"):
            return
        yield self.read_neighbours(u)
        base = self.dist[u]
        for v in self.graph.adjacency[u]:
            candidate = base + self.weights[(u, v)]
            if self.dist[v] > candidate:
                yield from self.locked_update(v)
                wrote = False
                if self.dist[v] > candidate:
                    self.dist[v] = candidate
                    self.mark_changed()
                    wrote = True
                yield from self.unlock_after_update(v, wrote)
        self._edges_processed += self.graph.degree(u)

    def check_result(self) -> None:
        reference = _dijkstra_reference(self.graph.adjacency, self.weights, 0)
        if self.dist != reference:
            raise AssertionError("SSSP distances do not match Dijkstra")


class PageRankWorkload(GraphKernelWorkload):
    name = "pr"
    max_rounds = 3
    DAMPING = 0.85

    def init_state(self) -> None:
        n = self.graph.num_vertices
        self.rank = [1.0 / n] * n
        self.next_rank = [(1.0 - self.DAMPING) / n] * n
        self.rounds_target = self.max_rounds

    def vertex_program(self, system, u: int):
        yield self.read_neighbours(u)
        degree = self.graph.degree(u)
        if degree == 0:
            return
        share = self.DAMPING * self.rank[u] / degree
        for v in self.graph.adjacency[u]:
            yield from self.locked_update(v)
            self.next_rank[v] += share
            yield from self.unlock_after_update(v, wrote=True)
        self._edges_processed += degree
        self.mark_changed()

    def round_finished(self) -> None:
        n = self.graph.num_vertices
        self.rank = self.next_rank
        self.next_rank = [(1.0 - self.DAMPING) / n] * n
        if self._round >= self.rounds_target:
            self._continue = False

    def check_result(self) -> None:
        reference = _pagerank_reference(
            self.graph.adjacency, self.rounds_executed, self.DAMPING
        )
        for mine, ref in zip(self.rank, reference):
            if abs(mine - ref) > 1e-9:
                raise AssertionError("PageRank drifted from the reference")


class TeenageFollowersWorkload(GraphKernelWorkload):
    """Count, per vertex, its neighbours younger than 20 (locks only)."""

    name = "tf"
    uses_barriers = False

    def init_state(self) -> None:
        rng = random.Random(self.seed)
        n = self.graph.num_vertices
        self.age = [rng.randint(10, 60) for _ in range(n)]
        self.followers = [0] * n

    def vertex_program(self, system, u: int):
        if self.age[u] >= 20:
            return
        yield self.read_neighbours(u)
        for v in self.graph.adjacency[u]:
            yield from self.locked_update(v)
            self.followers[v] += 1
            yield from self.unlock_after_update(v, wrote=True)
        self._edges_processed += self.graph.degree(u)

    def check_result(self) -> None:
        n = self.graph.num_vertices
        expected = [0] * n
        for u in range(n):
            if self.age[u] < 20:
                for v in self.graph.adjacency[u]:
                    expected[v] += 1
        if self.followers != expected:
            raise AssertionError("teenage-follower counts are wrong")


class TriangleCountingWorkload(GraphKernelWorkload):
    name = "tc"
    max_rounds = 1

    def init_state(self) -> None:
        self.triangles = [0] * self.graph.num_vertices
        self._adj_sets = [set(neigh) for neigh in self.graph.adjacency]

    def vertex_program(self, system, u: int):
        yield self.read_neighbours(u)
        found = 0
        compares = 0
        for v in self.graph.adjacency[u]:
            if v <= u:
                continue
            common = self._adj_sets[u] & self._adj_sets[v]
            compares += min(len(self._adj_sets[u]), len(self._adj_sets[v]))
            found += sum(1 for w in common if w > v)
        yield Compute(4 * compares + 4)
        if found:
            yield from self.locked_update(u)
            self.triangles[u] += found
            yield from self.unlock_after_update(u, wrote=True)
        self._edges_processed += self.graph.degree(u)

    def check_result(self) -> None:
        total = sum(self.triangles)
        expected = _triangle_reference(self._adj_sets)
        if total != expected:
            raise AssertionError(
                f"triangle count {total} != reference {expected}"
            )


# ----------------------------------------------------------------------
# Sequential references
# ----------------------------------------------------------------------
def _bfs_reference(adjacency, source=0):
    from collections import deque

    dist = [float("inf")] * len(adjacency)
    dist[source] = 0
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in adjacency[u]:
            if dist[v] == float("inf"):
                dist[v] = dist[u] + 1
                queue.append(v)
    return dist


def _components_reference(adjacency):
    n = len(adjacency)
    seen = [False] * n
    components = []
    for start in range(n):
        if seen[start]:
            continue
        stack, comp = [start], []
        seen[start] = True
        while stack:
            u = stack.pop()
            comp.append(u)
            for v in adjacency[u]:
                if not seen[v]:
                    seen[v] = True
                    stack.append(v)
        components.append(comp)
    return components


def _dijkstra_reference(adjacency, weights, source):
    import heapq

    n = len(adjacency)
    dist = [float("inf")] * n
    dist[source] = 0
    heap = [(0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        for v in adjacency[u]:
            nd = d + weights[(u, v)]
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist


def _pagerank_reference(adjacency, rounds, damping):
    n = len(adjacency)
    rank = [1.0 / n] * n
    for _ in range(rounds):
        nxt = [(1.0 - damping) / n] * n
        for u in range(n):
            degree = len(adjacency[u])
            if degree == 0:
                continue
            share = damping * rank[u] / degree
            for v in adjacency[u]:
                nxt[v] += share
        rank = nxt
    return rank


def _triangle_reference(adj_sets):
    total = 0
    for u in range(len(adj_sets)):
        for v in adj_sets[u]:
            if v <= u:
                continue
            total += sum(1 for w in adj_sets[u] & adj_sets[v] if w > v)
    return total


ALL_KERNELS = {
    "bfs": BFSWorkload,
    "cc": ConnectedComponentsWorkload,
    "sssp": SSSPWorkload,
    "pr": PageRankWorkload,
    "tf": TeenageFollowersWorkload,
    "tc": TriangleCountingWorkload,
}
