"""Primitive microbenchmarks (paper Fig. 10).

"We devise simple benchmarks, where cores repeatedly request a single
synchronization variable", varying the instruction interval between two
synchronization points:

- **lock**: empty critical section;
- **barrier**: all cores barrier every ``interval`` instructions;
- **semaphore**: half the cores ``sem_wait``, half ``sem_post``;
- **condition variable**: half ``cond_wait``, half ``cond_signal`` (with
  the associated lock, so synchronization intensity is highest here).
"""

from __future__ import annotations

from typing import Dict

from repro.core import api
from repro.sim.program import Compute
from repro.sim.system import NDPSystem
from repro.workloads.base import Workload

PRIMITIVES = ("lock", "barrier", "semaphore", "condvar")


class PrimitiveMicrobench(Workload):
    """Repeatedly exercise one primitive on a single variable."""

    def __init__(self, primitive: str, interval: int, rounds: int = 50):
        if primitive not in PRIMITIVES:
            raise ValueError(f"primitive must be one of {PRIMITIVES}")
        if interval < 0 or rounds < 1:
            raise ValueError("interval must be >= 0 and rounds >= 1")
        self.name = f"microbench_{primitive}"
        self.primitive = primitive
        self.interval = interval
        self.rounds = rounds
        self._ops = 0
        self._counter = {"value": 0}
        self._expected = 0

    # ------------------------------------------------------------------
    def build(self, system: NDPSystem) -> Dict[int, object]:
        builder = getattr(self, f"_build_{self.primitive}")
        programs = builder(system)
        self._ops = sum(1 for _ in programs) * self.rounds
        return programs

    def _build_lock(self, system):
        lock = system.create_syncvar(name="ubench_lock")
        self._expected = self.rounds * len(system.cores)

        def worker():
            for _ in range(self.rounds):
                yield Compute(self.interval)
                yield api.lock_acquire(lock)
                self._counter["value"] += 1  # empty critical section
                yield api.lock_release(lock)

        return {core.core_id: worker() for core in system.cores}

    def _build_barrier(self, system):
        bar = system.create_syncvar(name="ubench_barrier")
        n = len(system.cores)
        self._expected = self.rounds * n

        def worker():
            for _ in range(self.rounds):
                yield Compute(self.interval)
                self._counter["value"] += 1
                yield api.barrier_wait_across_units(bar, n)

        return {core.core_id: worker() for core in system.cores}

    def _build_semaphore(self, system):
        sem = system.create_syncvar(name="ubench_sem")
        cores = system.cores
        self._expected = self.rounds * (len(cores) // 2) * 2

        def waiter():
            for _ in range(self.rounds):
                yield Compute(self.interval)
                yield api.sem_wait(sem, 0)
                self._counter["value"] += 1

        def poster():
            for _ in range(self.rounds):
                yield Compute(self.interval)
                self._counter["value"] += 1
                yield api.sem_post(sem)

        half = len(cores) // 2
        programs = {}
        for i, core in enumerate(cores[: 2 * half]):
            programs[core.core_id] = waiter() if i < half else poster()
        return programs

    def _build_condvar(self, system):
        lock = system.create_syncvar(name="ubench_cv_lock")
        cond = system.create_syncvar(name="ubench_cv")
        cores = system.cores
        half = len(cores) // 2
        self._expected = self.rounds * half * 2
        pending = {"waiting": 0}

        def waiter():
            for _ in range(self.rounds):
                yield Compute(self.interval)
                yield api.lock_acquire(lock)
                pending["waiting"] += 1
                yield api.cond_wait(cond, lock)
                self._counter["value"] += 1
                yield api.lock_release(lock)

        def signaler():
            # Exponential backoff on failed sends.  A tight re-acquire loop
            # livelocks the whole benchmark: with the Sec. 4.4.2 fairness
            # counter disabled (fairness_threshold=0, the default), the
            # signalers' unit keeps hierarchical control of the lock forever
            # and the woken waiters on the other unit can never re-acquire
            # it — so the signalers poll for waiters that cannot arrive.
            # Backing off lets the holding SE's local waitlist drain, which
            # hands control back to the Master SE between polls.
            sent = 0
            backoff = self.interval
            while sent < self.rounds:
                yield Compute(backoff)
                yield api.lock_acquire(lock)
                if pending["waiting"] > 0:
                    pending["waiting"] -= 1
                    self._counter["value"] += 1
                    yield api.cond_signal(cond)
                    sent += 1
                    backoff = self.interval
                else:
                    backoff = min(max(backoff, 1) * 2, 16 * max(self.interval, 1))
                yield api.lock_release(lock)

        programs = {}
        for i, core in enumerate(cores[: 2 * half]):
            programs[core.core_id] = waiter() if i < half else signaler()
        return programs

    # ------------------------------------------------------------------
    def verify(self, system: NDPSystem) -> None:
        if self._counter["value"] != self._expected:
            raise AssertionError(
                f"{self.name}: performed {self._counter['value']} rounds, "
                f"expected {self._expected}"
            )

    def operations(self) -> int:
        return self._ops
