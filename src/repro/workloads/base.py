"""Workload plumbing shared by every benchmark.

A *workload* builds one program generator per client core of an
:class:`~repro.sim.system.NDPSystem`, runs them, and reports
:class:`RunMetrics`: makespan, throughput, energy breakdown and traffic.
Functional correctness (the data structure's final state, the graph
kernel's output, the matrix profile) is checked by the workload itself so a
protocol bug can never masquerade as a speedup.

Scale control: experiment sizes honour the ``REPRO_SCALE`` environment
variable — ``small`` (default; minutes for the whole suite), ``medium``, or
``full`` — because pure-Python cycle simulation is ~10^5-10^6 events/s.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass
from typing import Dict, Optional

from repro.sim.clock import seconds_from_core_cycles
from repro.sim.config import SystemConfig
from repro.sim.energy import EnergyBreakdown, compute_energy
from repro.sim.system import NDPSystem
from repro.telemetry import get_telemetry

SCALES = ("small", "medium", "full")
_SCALE_FACTORS = {"small": 1, "medium": 3, "full": 10}


def stable_name_seed(name: str) -> int:
    """Deterministic seed for a named input (dataset, series, ...).

    Python's builtin ``hash(str)`` is randomized per interpreter launch
    (PYTHONHASHSEED), which would make generated inputs differ between
    worker processes — fatal for the parallel sweep runner's
    serial-vs-parallel bit-identity and for result caching across runs.
    CRC32 is stable everywhere.
    """
    return zlib.crc32(name.encode("utf-8")) % (2 ** 31)


def scale() -> str:
    """The active experiment scale (``REPRO_SCALE`` env var)."""
    value = os.environ.get("REPRO_SCALE", "small").lower()
    if value not in SCALES:
        raise ValueError(f"REPRO_SCALE must be one of {SCALES}, got {value!r}")
    return value


def scaled(base: int, per_step_factor: float = 1.0) -> int:
    """Scale a size knob by the active REPRO_SCALE."""
    factor = _SCALE_FACTORS[scale()]
    if per_step_factor != 1.0:
        factor = per_step_factor ** (SCALES.index(scale()))
    return max(int(base * factor), 1)


@dataclass
class RunMetrics:
    """Everything a figure needs from one simulation run."""

    mechanism: str
    cycles: int
    operations: int
    energy: EnergyBreakdown
    bytes_inside_units: int
    bytes_across_units: int
    sync_requests: int
    overflow_request_pct: float
    st_occupancy_max_pct: float
    st_occupancy_avg_pct: float
    stats: Dict[str, float]

    @property
    def seconds(self) -> float:
        return seconds_from_core_cycles(self.cycles)

    @property
    def ops_per_second(self) -> float:
        return self.operations / self.seconds if self.cycles else 0.0

    @property
    def ops_per_ms(self) -> float:
        return self.ops_per_second / 1e3

    @property
    def total_bytes(self) -> int:
        return self.bytes_inside_units + self.bytes_across_units

    def speedup_over(self, other: "RunMetrics") -> float:
        """Makespan speedup of self relative to ``other``.

        A zero-cycle baseline is a degenerate comparison (the old code
        quietly returned ``0.0``, reading as "infinitely slower"): two empty
        runs compare equal, an empty baseline against real work is NaN.
        """
        if other.cycles == 0:
            return 1.0 if self.cycles == 0 else float("nan")
        if self.cycles == 0:
            return float("inf")
        return other.cycles / self.cycles

    # ------------------------------------------------------------------
    # JSON round-trip (the sweep runner's on-disk result cache)
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict:
        return {
            "mechanism": self.mechanism,
            "cycles": self.cycles,
            "operations": self.operations,
            "energy": {
                "cache_pj": self.energy.cache_pj,
                "network_pj": self.energy.network_pj,
                "memory_pj": self.energy.memory_pj,
            },
            "bytes_inside_units": self.bytes_inside_units,
            "bytes_across_units": self.bytes_across_units,
            "sync_requests": self.sync_requests,
            "overflow_request_pct": self.overflow_request_pct,
            "st_occupancy_max_pct": self.st_occupancy_max_pct,
            "st_occupancy_avg_pct": self.st_occupancy_avg_pct,
            "stats": dict(self.stats),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "RunMetrics":
        payload = dict(data)
        payload["energy"] = EnergyBreakdown(**payload["energy"])
        return cls(**payload)


def collect_metrics(system: NDPSystem, cycles: int, operations: int) -> RunMetrics:
    """Snapshot a finished system into :class:`RunMetrics`."""
    stats = system.stats
    occupancy = stats.st_occupancy_summary(system.config.st_entries)
    counters = stats.as_dict()
    # Kernel-side cost counters ride along under a reserved prefix: how many
    # events the engine actually dispatched vs. accounted analytically.
    # They describe simulation effort, not simulated physics, so they are
    # the one part of RunMetrics allowed to differ between elision modes.
    counters["kernel.events_processed"] = float(system.sim.events_processed)
    counters["kernel.elided_events"] = float(system.sim.elided_events)
    # Wall-clock profile (only when the telemetry bus enabled profiling on
    # this system): reserved telemetry.* keys, reported like kernel.* but
    # additionally stripped before results enter the content-addressed
    # store — host wall-clock is not reproducible content.
    profile = system.sim.profile
    if profile is not None and profile.wall_seconds > 0.0:
        events = system.sim.events_processed
        elided = system.sim.elided_events
        logical = events + elided
        wall = profile.wall_seconds
        counters["telemetry.wall_seconds"] = wall
        counters["telemetry.events_per_sec"] = events / wall
        counters["telemetry.elided_ratio"] = (
            elided / logical if logical else 0.0
        )
        counters["telemetry.sim_seconds_per_wall_second"] = (
            seconds_from_core_cycles(cycles) / wall
        )
        for bucket, share in profile.attribution().items():
            counters[f"telemetry.attr.{bucket}"] = share
        tel = get_telemetry()
        if tel.enabled:
            tel.count("sim.runs")
            tel.count("sim.events_processed", events)
            tel.count("sim.elided_events", elided)
            tel.observe("sim.run_seconds", wall)
            tel.gauge("sim.last_events_per_sec", events / wall)
    return RunMetrics(
        mechanism=system.mechanism_name,
        cycles=cycles,
        operations=operations,
        energy=compute_energy(stats, system.config),
        bytes_inside_units=stats.bytes_inside_units,
        bytes_across_units=stats.bytes_across_units,
        sync_requests=stats.sync_requests_total,
        overflow_request_pct=stats.overflow_request_pct,
        st_occupancy_max_pct=occupancy["max_pct"],
        st_occupancy_avg_pct=occupancy["avg_pct"],
        stats=counters,
    )


class Workload:
    """Base class: build programs, run, verify, report."""

    name = "workload"

    def build(self, system: NDPSystem) -> Dict[int, object]:
        """Return {core_id: program generator}."""
        raise NotImplementedError

    def verify(self, system: NDPSystem) -> None:
        """Raise if the functional outcome is wrong (default: nothing)."""

    def operations(self) -> int:
        """Number of application-level operations performed (for throughput)."""
        raise NotImplementedError

    def run(self, system: NDPSystem, max_events: Optional[int] = None) -> RunMetrics:
        programs = self.build(system)
        cycles = system.run_programs(programs, max_events=max_events)
        self.verify(system)
        return collect_metrics(system, cycles, self.operations())


def run_workload(
    workload_factory,
    config: SystemConfig,
    mechanism: str,
    max_events: Optional[int] = None,
) -> RunMetrics:
    """Build a fresh system + workload instance and run it once.

    ``workload_factory`` is a zero-argument callable returning a fresh
    :class:`Workload`; instances are single-use (they allocate addresses and
    synchronization variables during :meth:`Workload.build`).
    """
    system = NDPSystem(config, mechanism=mechanism)
    workload = workload_factory()
    return workload.run(system, max_events=max_events)
