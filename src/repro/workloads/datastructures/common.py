"""Shared machinery for the lock-based concurrent data structures (Table 6).

Each data structure keeps its *functional* state in plain Python (mutated by
the core programs at the simulated instant their locks allow), while its
*timing* behaviour is expressed through Load/Store ops on explicitly placed
addresses plus SynCron API calls.  Shared read-write data is uncacheable
(software-assisted coherence, Sec. 2.1), so traversals hit memory and the
placement of nodes across NDP units matters — exactly the contention and
non-uniformity structure Fig. 11 studies.

Scaling: the paper initializes structures with 100K/20K/10K/5K/1K elements
and runs 100K operations.  Cycle-accurate Python cannot do that in test
time, so sizes scale down by default (see ``REPRO_SCALE``), preserving the
contention class of each structure (coarse locks stay coarse; traversal
lengths keep their big-O shape).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.sim.syncif import SyncVar
from repro.sim.system import NDPSystem
from repro.workloads.base import Workload, scaled


class Node:
    """A heap node with a simulated address and functional payload."""

    __slots__ = ("key", "value", "addr", "unit", "lock", "next", "prev",
                 "left", "right", "level_next", "deleted")

    def __init__(self, key: int, addr: int, unit: int,
                 lock: Optional[SyncVar] = None):
        self.key = key
        self.value = key
        self.addr = addr
        self.unit = unit
        self.lock = lock
        self.next: Optional["Node"] = None
        self.prev: Optional["Node"] = None
        self.left: Optional["Node"] = None
        self.right: Optional["Node"] = None
        self.level_next: List[Optional["Node"]] = []
        self.deleted = False


class DataStructureWorkload(Workload):
    """Base: N client cores each perform ``ops_per_core`` operations."""

    #: default operations per core at REPRO_SCALE=small.
    DEFAULT_OPS = 12

    def __init__(self, ops_per_core: Optional[int] = None, seed: int = 1):
        self.ops_per_core = ops_per_core if ops_per_core is not None else scaled(self.DEFAULT_OPS)
        self.seed = seed
        self._completed = 0
        self._total_ops = 0

    # ------------------------------------------------------------------
    # Helpers for subclasses
    # ------------------------------------------------------------------
    def alloc_node(self, system: NDPSystem, key: int, unit: Optional[int] = None,
                   with_lock: bool = False) -> Node:
        """Allocate a node (one cache line) in ``unit`` (or round-robin)."""
        if unit is None:
            unit = key % system.config.num_units
        addr = system.addrmap.alloc(unit, 64, align=64)
        lock = system.create_syncvar(unit=unit) if with_lock else None
        return Node(key, addr, unit, lock)

    def rng_for_core(self, core_id: int) -> random.Random:
        return random.Random((self.seed << 16) ^ core_id)

    def record_op(self) -> None:
        self._completed += 1

    # ------------------------------------------------------------------
    def build(self, system: NDPSystem) -> Dict[int, object]:
        self.setup(system)
        # core_program receives the core's dense index within system.cores
        # (equal to its global core id on a whole-machine system, but not on
        # a tenant slice of one) so per-core target lists and
        # ``system.cores[...]`` lookups stay valid under co-runs.
        programs = {
            core.core_id: self.core_program(system, index)
            for index, core in enumerate(system.cores)
        }
        self._total_ops = self.ops_per_core * len(programs)
        return programs

    def setup(self, system: NDPSystem) -> None:
        raise NotImplementedError

    def core_program(self, system: NDPSystem, core_id: int):
        """Program for ``system.cores[core_id]`` (a dense index, see build)."""
        raise NotImplementedError

    def operations(self) -> int:
        return self._total_ops

    def verify(self, system: NDPSystem) -> None:
        if self._completed != self._total_ops:
            raise AssertionError(
                f"{self.name}: completed {self._completed} of "
                f"{self._total_ops} operations"
            )
        self.check_invariants(system)

    def check_invariants(self, system: NDPSystem) -> None:
        """Structure-specific consistency checks (override)."""
