"""Concurrent stack with a coarse-grained lock (ASCYLIB-style, Table 6).

Configuration per the paper: initialized with a fixed size, 100% push
operations, one global lock — the canonical *high-contention* workload
(every core fights for the same lock, Fig. 11 top-left, Fig. 16).
"""

from __future__ import annotations

from typing import List

from repro.core import api
from repro.sim.program import Compute, Load, Store
from repro.sim.system import NDPSystem
from repro.workloads.base import scaled
from repro.workloads.datastructures.common import DataStructureWorkload, Node


class StackWorkload(DataStructureWorkload):
    name = "stack"
    DEFAULT_OPS = 15

    def __init__(self, initial_size: int = None, **kwargs):
        super().__init__(**kwargs)
        self.initial_size = initial_size if initial_size is not None else scaled(100)
        self.lock = None
        self.top_addr = None
        self.items: List[Node] = []

    def setup(self, system: NDPSystem) -> None:
        home = 0  # the stack object (top pointer + lock) lives in unit 0
        self.lock = system.create_syncvar(unit=home, name="stack_lock")
        self.top_addr = system.addrmap.alloc(home, 64, align=64)
        self.items = [
            self.alloc_node(system, key) for key in range(self.initial_size)
        ]
        for i in range(1, len(self.items)):
            self.items[i].next = self.items[i - 1]

    def core_program(self, system: NDPSystem, core_id: int):
        # Pre-allocate this core's nodes in its own unit (thread-local data).
        unit = system.cores[core_id].unit_id
        new_nodes = [
            self.alloc_node(system, core_id * 100000 + i, unit=unit)
            for i in range(self.ops_per_core)
        ]

        def program():
            for node in new_nodes:
                # Prepare the node outside the critical section.
                yield Store(node.addr, cacheable=False)
                yield api.lock_acquire(self.lock)
                # push: read top, link node, update top.
                yield Load(self.top_addr, cacheable=False)
                node.next = self.items[-1] if self.items else None
                self.items.append(node)
                yield Store(self.top_addr, cacheable=False)
                yield api.lock_release(self.lock)
                self.record_op()

        return program()

    def check_invariants(self, system: NDPSystem) -> None:
        expected = self.initial_size + self._total_ops
        if len(self.items) != expected:
            raise AssertionError(
                f"stack has {len(self.items)} items, expected {expected}"
            )
        # Every pushed node's link must point at its push-time predecessor.
        for i in range(1, len(self.items)):
            if self.items[i].next is not self.items[i - 1]:
                raise AssertionError("stack linkage corrupted (lost update)")
