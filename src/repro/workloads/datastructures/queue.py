"""Michael-Scott two-lock concurrent queue (Table 6: 100% pop).

Separate head and tail locks [Michael & Scott, PODC'96]; with a 100% pop
mix, all cores contend on the head lock — high contention, like the stack,
but with slightly cheaper critical sections.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro.core import api
from repro.sim.program import Load, Store
from repro.sim.system import NDPSystem
from repro.workloads.base import scaled
from repro.workloads.datastructures.common import DataStructureWorkload, Node


class QueueWorkload(DataStructureWorkload):
    name = "queue"
    DEFAULT_OPS = 15

    def __init__(self, initial_size: int = None, **kwargs):
        super().__init__(**kwargs)
        self.initial_size = initial_size
        self.head_lock = None
        self.tail_lock = None
        self.head_addr = None
        self.items: Deque[Node] = deque()
        self.popped = 0

    def setup(self, system: NDPSystem) -> None:
        if self.initial_size is None:
            # enough items for every pop to succeed (100% pop mix).
            self.initial_size = self.ops_per_core * len(system.cores) + scaled(50)
        self.head_lock = system.create_syncvar(unit=0, name="q_head_lock")
        self.tail_lock = system.create_syncvar(unit=1 % system.config.num_units,
                                               name="q_tail_lock")
        self.head_addr = system.addrmap.alloc(0, 64, align=64)
        self.items = deque(
            self.alloc_node(system, key) for key in range(self.initial_size)
        )

    def core_program(self, system: NDPSystem, core_id: int):
        def program():
            for _ in range(self.ops_per_core):
                yield api.lock_acquire(self.head_lock)
                yield Load(self.head_addr, cacheable=False)
                node = self.items.popleft()
                self.popped += 1
                yield Load(node.addr, cacheable=False)   # read payload
                yield Store(self.head_addr, cacheable=False)
                yield api.lock_release(self.head_lock)
                self.record_op()

        return program()

    def check_invariants(self, system: NDPSystem) -> None:
        if self.popped != self._total_ops:
            raise AssertionError(f"popped {self.popped}, expected {self._total_ops}")
        if len(self.items) != self.initial_size - self._total_ops:
            raise AssertionError("queue size inconsistent with pop count")
