"""Logical-ordering BST (Drachsler et al., PPoPP'14; Table 6: deletion).

Searches are lock-free; only the final deletion locks the victim node and
its logical predecessor.  The paper measures that lock requests are just
0.1% of memory requests for this structure, so all mechanisms perform the
same on it (the Fig. 11 bottom-right "everything ties" case).  We reproduce
that ratio by giving each operation a long lock-free search phase (loads +
key comparisons) and exactly two short lock acquisitions.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core import api
from repro.sim.program import Batch, Compute, Load, Store
from repro.sim.system import NDPSystem
from repro.workloads.base import scaled
from repro.workloads.datastructures.common import DataStructureWorkload, Node


class BSTDrachslerWorkload(DataStructureWorkload):
    name = "bst_drachsler"
    DEFAULT_OPS = 8

    def __init__(self, initial_size: int = None, **kwargs):
        super().__init__(**kwargs)
        self.initial_size = initial_size
        self.nodes: List[Node] = []
        self.root: Optional[Node] = None
        self.deleted_count = 0
        self._targets: List[List[int]] = []

    def setup(self, system: NDPSystem) -> None:
        if self.initial_size is None:
            self.initial_size = self.ops_per_core * system.config.total_clients + scaled(64)
        rng = self.rng_for_core(999)
        units = system.config.num_units
        keys = list(range(self.initial_size))

        def build(lo: int, hi: int) -> Optional[Node]:
            if lo > hi:
                return None
            mid = (lo + hi) // 2
            node = self.alloc_node(
                system, keys[mid], unit=rng.randrange(units), with_lock=True
            )
            node.left = build(lo, mid - 1)
            node.right = build(mid + 1, hi)
            return node

        self.root = build(0, len(keys) - 1)
        # logical ordering: doubly-linked list over sorted keys.
        ordered = []

        def visit(node):
            if node is None:
                return
            visit(node.left)
            ordered.append(node)
            visit(node.right)

        visit(self.root)
        self.nodes = ordered
        for i, node in enumerate(ordered):
            node.prev = ordered[i - 1] if i > 0 else None
            node.next = ordered[i + 1] if i + 1 < len(ordered) else None

        shuffled = list(keys)
        rng.shuffle(shuffled)
        clients = system.config.total_clients
        self._targets = [
            shuffled[i * self.ops_per_core:(i + 1) * self.ops_per_core]
            for i in range(clients)
        ]
        self._by_key = {node.key: node for node in ordered}

    # ------------------------------------------------------------------
    def core_program(self, system: NDPSystem, core_id: int):
        targets = self._targets[core_id] if core_id < len(self._targets) else []

        def program():
            for key in targets:
                node = self._by_key[key]
                # Lock-free search: walk the logical ordering from a nearby
                # anchor; long read phase (this is what dilutes lock traffic
                # to the paper's 0.1%).
                search_ops = []
                probe = node
                for _ in range(12):
                    search_ops.append(Load(probe.addr, cacheable=False))
                    search_ops.append(Compute(6))
                    probe = probe.prev if probe.prev is not None else probe
                yield Batch(tuple(search_ops))

                # Deletion: lock predecessor and victim (logical ordering),
                # validating the predecessor under the locks and retrying on
                # a concurrent neighbour change (Drachsler's validation).
                while True:
                    pred = node.prev
                    first, second = (pred, node) if pred is not None else (node, None)
                    yield api.lock_acquire(first.lock)
                    if second is not None:
                        yield api.lock_acquire(second.lock)
                    valid = node.prev is pred and (
                        pred is None or (not pred.deleted and pred.next is node)
                    )
                    if valid:
                        node.deleted = True
                        if node.prev is not None:
                            node.prev.next = node.next
                        if node.next is not None:
                            node.next.prev = node.prev
                        self.deleted_count += 1
                        yield Store(node.addr, cacheable=False)
                    if second is not None:
                        yield api.lock_release(second.lock)
                    yield api.lock_release(first.lock)
                    if valid:
                        break
                    yield Compute(10)  # back off before re-reading neighbours
                self.record_op()

        return program()

    def check_invariants(self, system: NDPSystem) -> None:
        if self.deleted_count != self._total_ops:
            raise AssertionError("every targeted key must be deleted exactly once")
        # logical ordering stays sorted over the live nodes.
        live = [n for n in self.nodes if not n.deleted]
        keys = [n.key for n in live]
        if keys != sorted(keys):
            raise AssertionError("logical ordering corrupted")
        for n in live:
            if n.next is not None and n.next.deleted:
                raise AssertionError("live node links to a deleted node")