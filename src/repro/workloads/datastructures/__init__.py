"""Lock-based concurrent data structures (paper Table 6 / Fig. 11).

Contention classes, following the paper's taxonomy:

- **high contention** (few variables, everyone collides): stack, queue,
  array map, priority queue;
- **medium contention**: skip list, hash table;
- **low contention, high sync demand** (lock coupling, ≥2 locks held per
  core): linked list, BST_FG;
- **negligible sync**: BST_Drachsler.
"""

from repro.workloads.datastructures.arraymap import ArrayMapWorkload
from repro.workloads.datastructures.bst_drachsler import BSTDrachslerWorkload
from repro.workloads.datastructures.bst_fg import BSTFineGrainedWorkload
from repro.workloads.datastructures.common import DataStructureWorkload, Node
from repro.workloads.datastructures.hashtable import HashTableWorkload
from repro.workloads.datastructures.linkedlist import LinkedListWorkload
from repro.workloads.datastructures.priority_queue import PriorityQueueWorkload
from repro.workloads.datastructures.queue import QueueWorkload
from repro.workloads.datastructures.skiplist import SkipListWorkload
from repro.workloads.datastructures.stack import StackWorkload

ALL_STRUCTURES = {
    "stack": StackWorkload,
    "queue": QueueWorkload,
    "arraymap": ArrayMapWorkload,
    "priority_queue": PriorityQueueWorkload,
    "skiplist": SkipListWorkload,
    "hashtable": HashTableWorkload,
    "linkedlist": LinkedListWorkload,
    "bst_fg": BSTFineGrainedWorkload,
    "bst_drachsler": BSTDrachslerWorkload,
}

__all__ = [
    "ALL_STRUCTURES",
    "ArrayMapWorkload",
    "BSTDrachslerWorkload",
    "BSTFineGrainedWorkload",
    "DataStructureWorkload",
    "HashTableWorkload",
    "LinkedListWorkload",
    "Node",
    "PriorityQueueWorkload",
    "QueueWorkload",
    "SkipListWorkload",
    "StackWorkload",
]
