"""Concurrent skip list with per-node locks (Pugh-style, Table 6: deletion).

Medium contention: cores search lock-free (reads), then lock the victim and
its predecessor to unlink — different cores usually work on different parts
of the structure (Fig. 11 middle group, together with the hash table).
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.core import api
from repro.sim.program import Batch, Compute, Load, Store
from repro.sim.system import NDPSystem
from repro.workloads.base import scaled
from repro.workloads.datastructures.common import DataStructureWorkload, Node

MAX_LEVEL = 6


class SkipListWorkload(DataStructureWorkload):
    name = "skiplist"
    DEFAULT_OPS = 10

    def __init__(self, initial_size: int = None, **kwargs):
        super().__init__(**kwargs)
        self.initial_size = initial_size
        self.head: Optional[Node] = None
        self.deleted_count = 0
        self._targets: List[List[int]] = []

    # ------------------------------------------------------------------
    def setup(self, system: NDPSystem) -> None:
        if self.initial_size is None:
            self.initial_size = self.ops_per_core * len(system.cores) + scaled(40)
        rng = random.Random(self.seed)

        self.head = self.alloc_node(system, -1, unit=0, with_lock=True)
        self.head.level_next = [None] * MAX_LEVEL
        prev_at_level: List[Node] = [self.head] * MAX_LEVEL
        for key in range(self.initial_size):
            node = self.alloc_node(system, key, with_lock=True)
            height = min(1 + rng.getrandbits(2).bit_length(), MAX_LEVEL)
            node.level_next = [None] * height
            for level in range(height):
                prev_at_level[level].level_next[level] = node
                prev_at_level[level] = node

        # Pre-partition deletion targets: each core deletes distinct keys.
        keys = list(range(self.initial_size))
        rng.shuffle(keys)
        clients = system.config.total_clients
        self._targets = [
            keys[i * self.ops_per_core:(i + 1) * self.ops_per_core]
            for i in range(clients)
        ]

    # -- functional search -------------------------------------------------
    def _search(self, key: int):
        """Returns (predecessor at level 0, node or None, path nodes)."""
        path = []
        node = self.head
        for level in range(MAX_LEVEL - 1, -1, -1):
            while (level < len(node.level_next) and node.level_next[level]
                   is not None and node.level_next[level].key < key):
                node = node.level_next[level]
                path.append(node)
        candidate = node.level_next[0] if node.level_next else None
        while candidate is not None and candidate.deleted:
            node = candidate
            candidate = candidate.level_next[0] if candidate.level_next else None
        if candidate is not None and candidate.key != key:
            candidate = None
        return node, candidate, path

    def _unlink(self, pred: Node, node: Node) -> None:
        node.deleted = True
        for level in range(len(node.level_next)):
            scan = self.head
            while (level < len(scan.level_next)
                   and scan.level_next[level] is not node):
                nxt = scan.level_next[level] if level < len(scan.level_next) else None
                if nxt is None:
                    break
                scan = nxt
            if level < len(scan.level_next) and scan.level_next[level] is node:
                scan.level_next[level] = node.level_next[level]

    # ------------------------------------------------------------------
    def core_program(self, system: NDPSystem, core_id: int):
        targets = self._targets[core_id] if core_id < len(self._targets) else []

        def program():
            for key in targets:
                pred, node, path = self._search(key)
                reads = [Load(n.addr, cacheable=False) for n in path[:10]]
                reads.append(Compute(4))
                yield Batch(tuple(reads))
                if node is None:
                    # concurrent structure motion; key is gone already.
                    self.record_op()
                    continue
                yield api.lock_acquire(pred.lock)
                yield api.lock_acquire(node.lock)
                # re-validate inside the locks, then unlink.
                if not node.deleted:
                    self._unlink(pred, node)
                    self.deleted_count += 1
                yield Store(pred.addr, cacheable=False)
                yield Store(node.addr, cacheable=False)
                yield api.lock_release(node.lock)
                yield api.lock_release(pred.lock)
                self.record_op()

        return program()

    def check_invariants(self, system: NDPSystem) -> None:
        if self.deleted_count != self._total_ops:
            raise AssertionError(
                f"deleted {self.deleted_count}, expected {self._total_ops} "
                "(each core owns distinct keys, so every delete must land)"
            )
        # Remaining level-0 chain must be sorted and contain no deleted node.
        node = self.head.level_next[0]
        prev_key = -1
        while node is not None:
            if node.deleted:
                raise AssertionError("deleted node still linked")
            if node.key <= prev_key:
                raise AssertionError("skip list order violated")
            prev_key = node.key
            node = node.level_next[0] if node.level_next else None