"""Sorted linked list with hand-over-hand locking (Table 6: lookup).

Lock-coupling traversal [Herlihy & Shavit]: each step acquires the next
node's lock before releasing the previous one, so every core holds two
locks at all times while traversing — *low contention but very high
synchronization demand*.  Together with BST_FG this is the workload class
that pressures the ST into overflow (paper Secs. 6.1.2 and 6.7.3).
"""

from __future__ import annotations

from typing import List

from repro.core import api
from repro.sim.program import Compute, Load
from repro.sim.system import NDPSystem
from repro.workloads.base import scaled
from repro.workloads.datastructures.common import DataStructureWorkload, Node


class LinkedListWorkload(DataStructureWorkload):
    name = "linkedlist"
    DEFAULT_OPS = 6

    def __init__(self, initial_size: int = None, **kwargs):
        super().__init__(**kwargs)
        self.initial_size = initial_size if initial_size is not None else scaled(24)
        self.head: Node = None
        self.nodes: List[Node] = []
        self.hits = 0

    def setup(self, system: NDPSystem) -> None:
        self.head = self.alloc_node(system, -1, unit=0, with_lock=True)
        self.nodes = [
            self.alloc_node(system, key, with_lock=True)
            for key in range(self.initial_size)
        ]
        prev = self.head
        for node in self.nodes:
            prev.next = node
            prev = node

    def core_program(self, system: NDPSystem, core_id: int):
        rng = self.rng_for_core(core_id)

        def program():
            for _ in range(self.ops_per_core):
                key = rng.randrange(self.initial_size)
                # Hand-over-hand: lock head, then couple down the chain.
                yield api.lock_acquire(self.head.lock)
                prev, node = self.head, self.head.next
                found = False
                while node is not None:
                    yield api.lock_acquire(node.lock)
                    yield Load(node.addr, cacheable=False)
                    yield Compute(2)
                    yield api.lock_release(prev.lock)
                    if node.key >= key:
                        found = node.key == key
                        prev = node
                        break
                    prev, node = node, node.next
                yield api.lock_release(prev.lock)
                if found:
                    self.hits += 1
                self.record_op()

        return program()

    def check_invariants(self, system: NDPSystem) -> None:
        if self.hits != self._total_ops:
            raise AssertionError("lookups of present keys must all hit")
        # list is never mutated: order intact.
        node, prev_key = self.head.next, -1
        count = 0
        while node is not None:
            if node.key <= prev_key:
                raise AssertionError("list order violated")
            prev_key, node = node.key, node.next
            count += 1
        if count != self.initial_size:
            raise AssertionError("list length changed under read-only ops")
