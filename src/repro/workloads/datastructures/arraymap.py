"""Array map: a 10-entry key-value map under one global lock (Table 6).

ASCYLIB/OPTIK-style array map: lookups scan the whole array inside the
critical section, so the critical section is *larger* than the stack's —
the paper notes this gives the array map the lowest scalability of the
pointer-chasing set (Fig. 11).
"""

from __future__ import annotations

from typing import List

from repro.core import api
from repro.sim.program import Batch, Compute, Load
from repro.sim.system import NDPSystem
from repro.workloads.datastructures.common import DataStructureWorkload, Node


class ArrayMapWorkload(DataStructureWorkload):
    name = "arraymap"
    DEFAULT_OPS = 15
    MAP_ENTRIES = 10  # Table 6: "10 - 100% lookup"

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.lock = None
        self.entries: List[Node] = []
        self.hits = 0

    def setup(self, system: NDPSystem) -> None:
        self.lock = system.create_syncvar(unit=0, name="amap_lock")
        self.entries = [
            self.alloc_node(system, key, unit=0) for key in range(self.MAP_ENTRIES)
        ]

    def core_program(self, system: NDPSystem, core_id: int):
        rng = self.rng_for_core(core_id)

        def program():
            for _ in range(self.ops_per_core):
                key = rng.randrange(self.MAP_ENTRIES)
                yield api.lock_acquire(self.lock)
                # scan all entries: key compare per slot (the large CS).
                scan = []
                for entry in self.entries:
                    scan.append(Load(entry.addr, cacheable=False))
                    scan.append(Compute(2))
                yield Batch(tuple(scan))
                if any(entry.key == key for entry in self.entries):
                    self.hits += 1
                yield api.lock_release(self.lock)
                self.record_op()

        return program()

    def check_invariants(self, system: NDPSystem) -> None:
        if self.hits != self._total_ops:
            raise AssertionError("array-map lookups must all hit (static keys)")
