"""External binary search tree with fine-grained locking (BST_FG).

Table 6 lists an "external fine-grained locking BST from [RCU-HTM, PACT'17]"
with 100% lookups.  Traversal is lock-free (reads of the tree structure);
each operation then locks its window — the target node and its parent — and
validates/reads under those locks.  Every core therefore holds two node
locks at any instant, spread across a large set of distinct variables: low
contention but very high synchronization demand.  This is the workload the
paper uses to evaluate ST overflow (Fig. 23: 30.5% of requests overflow a
64-entry ST at 60 cores)."""

from __future__ import annotations

from typing import List, Optional

from repro.core import api
from repro.sim.program import Compute, Load
from repro.sim.system import NDPSystem
from repro.workloads.base import scaled
from repro.workloads.datastructures.common import DataStructureWorkload, Node


class BSTFineGrainedWorkload(DataStructureWorkload):
    name = "bst_fg"
    DEFAULT_OPS = 8

    def __init__(self, initial_size: int = None, **kwargs):
        super().__init__(**kwargs)
        self.initial_size = initial_size if initial_size is not None else scaled(160)
        self.root: Optional[Node] = None
        self.size = 0
        self.hits = 0

    # -- balanced functional BST over randomly placed nodes ---------------
    def setup(self, system: NDPSystem) -> None:
        rng = self.rng_for_core(777)
        keys = sorted(range(self.initial_size))
        # Random placement across units (the paper distributes BSTs randomly).
        units = system.config.num_units

        def build(lo: int, hi: int) -> Optional[Node]:
            if lo > hi:
                return None
            mid = (lo + hi) // 2
            node = self.alloc_node(
                system, keys[mid], unit=rng.randrange(units), with_lock=True
            )
            node.left = build(lo, mid - 1)
            node.right = build(mid + 1, hi)
            return node

        self.root = build(0, len(keys) - 1)
        self.size = len(keys)

    def core_program(self, system: NDPSystem, core_id: int):
        rng = self.rng_for_core(core_id)

        from repro.sim.program import Batch

        def program():
            for _ in range(self.ops_per_core):
                key = rng.randrange(self.initial_size)
                # Lock-free traversal (tree structure is read-shared).
                parent, node = None, self.root
                path = []
                while node is not None and node.key != key:
                    path.append(node)
                    parent, node = node, (
                        node.left if key < node.key else node.right
                    )
                if node is None:
                    parent, node = path[-2] if len(path) >= 2 else None, path[-1]
                yield Batch(tuple(
                    op
                    for visited in path
                    for op in (Load(visited.addr), Compute(3))
                ))
                # Operation window: lock parent then node (top-down order on
                # tree paths — acyclic, hence deadlock-free), validate and
                # read the payload under the locks.
                first = parent if parent is not None else node
                second = node if parent is not None else None
                yield api.lock_acquire(first.lock)
                if second is not None:
                    yield api.lock_acquire(second.lock)
                yield Load(first.addr, cacheable=False)
                if second is not None:
                    yield Load(second.addr, cacheable=False)
                yield Compute(4)
                found = node.key == key
                if second is not None:
                    yield api.lock_release(second.lock)
                yield api.lock_release(first.lock)
                if found:
                    self.hits += 1
                self.record_op()

        return program()

    def check_invariants(self, system: NDPSystem) -> None:
        if self.hits != self._total_ops:
            raise AssertionError("lookups of present keys must all hit")

        # In-order traversal must yield sorted keys (tree untouched).
        seen: List[int] = []

        def visit(node: Optional[Node]) -> None:
            if node is None:
                return
            visit(node.left)
            seen.append(node.key)
            visit(node.right)

        visit(self.root)
        if seen != sorted(seen) or len(seen) != self.size:
            raise AssertionError("BST structure corrupted")
