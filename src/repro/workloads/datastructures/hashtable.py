"""Concurrent chained hash table with per-bucket locks (Table 6: lookup).

Medium contention: lookups lock only their bucket, so cores mostly touch
different buckets; many independent synchronization variables are active at
once (medium ST pressure, Fig. 11 middle group).
"""

from __future__ import annotations

from typing import List

from repro.core import api
from repro.sim.program import Batch, Compute, Load
from repro.sim.system import NDPSystem
from repro.workloads.base import scaled
from repro.workloads.datastructures.common import DataStructureWorkload, Node


class HashTableWorkload(DataStructureWorkload):
    name = "hashtable"
    DEFAULT_OPS = 15

    def __init__(self, initial_size: int = None, buckets: int = None, **kwargs):
        super().__init__(**kwargs)
        self.initial_size = initial_size if initial_size is not None else scaled(120)
        self.num_buckets = buckets if buckets is not None else scaled(32)
        self.bucket_locks = []
        self.buckets: List[List[Node]] = []
        self.hits = 0

    def setup(self, system: NDPSystem) -> None:
        units = system.config.num_units
        self.bucket_locks = [
            system.create_syncvar(unit=b % units, name=f"ht_lock{b}")
            for b in range(self.num_buckets)
        ]
        self.buckets = [[] for _ in range(self.num_buckets)]
        for key in range(self.initial_size):
            b = key % self.num_buckets
            node = self.alloc_node(system, key, unit=b % units)
            self.buckets[b].append(node)

    def core_program(self, system: NDPSystem, core_id: int):
        rng = self.rng_for_core(core_id)

        def program():
            for _ in range(self.ops_per_core):
                key = rng.randrange(self.initial_size)
                b = key % self.num_buckets
                yield api.lock_acquire(self.bucket_locks[b])
                chain_ops = []
                found = False
                for node in self.buckets[b]:
                    chain_ops.append(Load(node.addr, cacheable=False))
                    chain_ops.append(Compute(2))
                    if node.key == key:
                        found = True
                        break
                yield Batch(tuple(chain_ops))
                if found:
                    self.hits += 1
                yield api.lock_release(self.bucket_locks[b])
                self.record_op()

        return program()

    def check_invariants(self, system: NDPSystem) -> None:
        if self.hits != self._total_ops:
            raise AssertionError("all lookups target present keys and must hit")
        total = sum(len(b) for b in self.buckets)
        if total != self.initial_size:
            raise AssertionError("hash table lost or duplicated nodes")
