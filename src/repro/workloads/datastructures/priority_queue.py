"""Coarse-locked binary-heap priority queue (Table 6: 100% deleteMin).

All cores contend for one lock and the critical section walks O(log n) heap
levels — high contention with a medium-size critical section (between the
stack and the array map in Fig. 11).
"""

from __future__ import annotations

from typing import List

from repro.core import api
from repro.sim.program import Batch, Compute, Load, Store
from repro.sim.system import NDPSystem
from repro.workloads.base import scaled
from repro.workloads.datastructures.common import DataStructureWorkload, Node


class PriorityQueueWorkload(DataStructureWorkload):
    name = "priority_queue"
    DEFAULT_OPS = 12

    def __init__(self, initial_size: int = None, **kwargs):
        super().__init__(**kwargs)
        self.initial_size = initial_size
        self.lock = None
        self.heap: List[Node] = []
        self.deleted_keys: List[int] = []

    def setup(self, system: NDPSystem) -> None:
        if self.initial_size is None:
            self.initial_size = self.ops_per_core * len(system.cores) + scaled(64)
        self.lock = system.create_syncvar(unit=0, name="pq_lock")
        rng = self.rng_for_core(12345)
        keys = list(range(self.initial_size))
        rng.shuffle(keys)
        self.heap = [self.alloc_node(system, key) for key in keys]
        self._heapify()

    # -- functional binary heap over self.heap -------------------------
    def _heapify(self) -> None:
        for i in range(len(self.heap) // 2 - 1, -1, -1):
            self._sift_down(i)

    def _sift_down(self, i: int) -> int:
        """Returns the number of levels visited (drives timing)."""
        levels = 0
        n = len(self.heap)
        while True:
            left, right = 2 * i + 1, 2 * i + 2
            smallest = i
            if left < n and self.heap[left].key < self.heap[smallest].key:
                smallest = left
            if right < n and self.heap[right].key < self.heap[smallest].key:
                smallest = right
            if smallest == i:
                return levels
            self.heap[i], self.heap[smallest] = self.heap[smallest], self.heap[i]
            i = smallest
            levels += 1

    def _delete_min(self) -> tuple:
        """Functional deleteMin; returns (min_node, touched_nodes)."""
        root = self.heap[0]
        last = self.heap.pop()
        touched = [root]
        if self.heap:
            self.heap[0] = last
            before = list(self.heap[:1])
            levels = self._sift_down(0)
            touched.extend(self.heap[: 2 ** min(levels + 1, 6)])
        return root, touched

    # ------------------------------------------------------------------
    def core_program(self, system: NDPSystem, core_id: int):
        def program():
            for _ in range(self.ops_per_core):
                yield api.lock_acquire(self.lock)
                root, touched = self._delete_min()
                self.deleted_keys.append(root.key)
                ops = []
                for node in touched[:8]:  # sift path: compare + swap
                    ops.append(Load(node.addr, cacheable=False))
                    ops.append(Compute(3))
                    ops.append(Store(node.addr, cacheable=False))
                yield Batch(tuple(ops))
                yield api.lock_release(self.lock)
                self.record_op()

        return program()

    def check_invariants(self, system: NDPSystem) -> None:
        if len(self.deleted_keys) != self._total_ops:
            raise AssertionError("wrong number of deleteMin operations")
        # Heap property must survive concurrent mutation.
        for i in range(1, len(self.heap)):
            parent = (i - 1) // 2
            if self.heap[parent].key > self.heap[i].key:
                raise AssertionError("heap property violated")
        # With a correct coarse lock, deleteMin always removes the global
        # minimum of the remaining keys, so the deleted keys are exactly the
        # smallest N keys (in some order per interleaving).
        expected = set(range(self._total_ops))
        if set(self.deleted_keys) != expected:
            raise AssertionError("deleteMin returned non-minimal keys")
