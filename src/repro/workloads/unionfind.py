"""Parallel connectivity via union-find under a reader-writer lock.

A realistic rw-lock application for the extension experiments: cores stream
a graph's edges and maintain a union-find forest.  ``find`` operations walk
parent pointers — shared reads that can proceed concurrently under the read
lock — while ``union`` operations mutate the forest under the write lock.
Since most edges of a connected component land inside an existing set,
real streams are read-dominated: the classic case where an rw lock beats a
mutex (the optimistic fine-grained variants of concurrent union-find start
from exactly this observation).

Functional verification: the final components must equal a sequential
union-find over the same edges.

Timing model: a ``find`` charges one uncacheable parent-pointer load per
hop (the forest is shared read-write data); a ``union`` charges one store.
The rw lock (or mutex, in ``mutex_mode``) brackets each operation.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core import api
from repro.sim.program import Compute, Load, Store
from repro.sim.system import NDPSystem
from repro.workloads.base import Workload, scaled
from repro.workloads.graphs.datasets import Graph, load_dataset


class SequentialUnionFind:
    """Reference implementation (path halving + union by size)."""

    def __init__(self, n: int):
        self.parent = list(range(n))
        self.size = [1] * n

    def find(self, x: int) -> int:
        while self.parent[x] != x:
            self.parent[x] = self.parent[self.parent[x]]
            x = self.parent[x]
        return x

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        return True

    def components(self) -> int:
        return sum(1 for v in range(len(self.parent)) if self.find(v) == v)


class UnionFindWorkload(Workload):
    """Edge-stream connectivity protected by one rw lock (or mutex)."""

    def __init__(self, dataset: str = "wk", graph: Graph = None,
                 mutex_mode: bool = False, edge_limit: int = None):
        self.name = "unionfind" + ("_mutex" if mutex_mode else "_rw")
        self.dataset = dataset
        self.graph = graph
        self.mutex_mode = mutex_mode
        self.edge_limit = edge_limit
        self._forest: SequentialUnionFind = None
        self._edges: List[Tuple[int, int]] = []
        self._processed = 0
        self._guard = {"readers": 0, "writer": 0, "violations": 0}

    # ------------------------------------------------------------------
    def build(self, system: NDPSystem) -> Dict[int, object]:
        if self.graph is None:
            self.graph = load_dataset(self.dataset)
        graph = self.graph
        n = graph.num_vertices
        self._forest = SequentialUnionFind(n)
        limit = self.edge_limit if self.edge_limit is not None else scaled(400)
        self._edges = list(graph.edges())[:limit]

        rwlock = system.create_syncvar(name="uf_guard")
        #: the parent array lives in unit 0 (uncacheable shared rw data).
        parent_base = system.addrmap.alloc(unit=0, nbytes=8 * n)
        guard = self._guard
        forest = self._forest

        def find_hops(x: int) -> int:
            """Pointer-chase length of find(x) *without* mutating."""
            hops = 1
            while forest.parent[x] != x:
                x = forest.parent[x]
                hops += 1
            return hops

        def worker(edges):
            for a, b in edges:
                # Phase 1: read-locked find on both endpoints.
                if self.mutex_mode:
                    yield api.lock_acquire(rwlock)
                else:
                    yield api.rw_read_acquire(rwlock)
                    guard["readers"] += 1
                    if guard["writer"]:
                        guard["violations"] += 1
                hops = find_hops(a) + find_hops(b)
                same = forest.find(a) == forest.find(b)
                for _ in range(min(hops, 8)):
                    yield Load(parent_base + 8 * (a % forest_size),
                               cacheable=False)
                yield Compute(4)
                if self.mutex_mode:
                    if same:
                        self._processed += 1
                        yield api.lock_release(rwlock)
                        continue
                else:
                    guard["readers"] -= 1
                    yield api.rw_read_release(rwlock)
                    if same:
                        self._processed += 1
                        continue
                    # Phase 2: the sets differ — upgrade to the write lock
                    # and re-check (another core may have unioned them).
                    yield api.rw_write_acquire(rwlock)
                    guard["writer"] += 1
                    if guard["writer"] > 1 or guard["readers"]:
                        guard["violations"] += 1
                forest.union(a, b)
                yield Store(parent_base + 8 * (b % forest_size),
                            cacheable=False)
                self._processed += 1
                if self.mutex_mode:
                    yield api.lock_release(rwlock)
                else:
                    guard["writer"] -= 1
                    yield api.rw_write_release(rwlock)

        forest_size = n
        cores = system.cores
        shards: Dict[int, List[Tuple[int, int]]] = {
            core.core_id: [] for core in cores
        }
        for i, edge in enumerate(self._edges):
            shards[cores[i % len(cores)].core_id].append(edge)
        return {cid: worker(edges) for cid, edges in shards.items()}

    # ------------------------------------------------------------------
    def verify(self, system: NDPSystem) -> None:
        if self._guard["violations"]:
            raise AssertionError(
                f"{self.name}: rw-lock exclusion violated "
                f"{self._guard['violations']} times"
            )
        if self._processed != len(self._edges):
            raise AssertionError(
                f"{self.name}: processed {self._processed} of "
                f"{len(self._edges)} edges"
            )
        reference = SequentialUnionFind(self.graph.num_vertices)
        for a, b in self._edges:
            reference.union(a, b)
        if self._forest.components() != reference.components():
            raise AssertionError(
                f"{self.name}: {self._forest.components()} components, "
                f"reference found {reference.components()}"
            )

    def operations(self) -> int:
        return self._processed

    @property
    def components(self) -> int:
        return self._forest.components() if self._forest else 0
