"""Multi-programmed execution: N tenants co-run on one NDP system.

The paper's story is contention for shared synchronization resources, yet
its experiments run one application alone on the whole machine.  Real NDP
deployments co-locate workloads that interfere through shared SEs, ST
capacity, memory, and (since the topology subsystem) shared fabric links.
This module adds that scenario axis:

- a :class:`TenantSpec` names one tenant: a workload factory plus its share
  of the machine (an explicit unit slice, a client-core count, or an equal
  share of whatever remains);
- :class:`CorunWorkload` partitions the system's cores deterministically,
  builds each tenant's workload against a
  :class:`~repro.sim.tenancy.TenantView` of its slice, merges the per-core
  programs, and runs them all on the one shared system;
- per-tenant attribution (cycles-to-completion, sync requests, bytes, ST
  occupancy) accumulates in :class:`~repro.sim.stats.TenantStats` and is
  reported through ``RunMetrics.stats`` as ``tenant.<name>.<counter>`` keys,
  so co-run results cache and round-trip like any other run.

Isolation property: a single tenant owning all cores is an identity mapping
— same allocations, same programs, bit-identical cycles/energy/bytes to
running the workload directly (pinned by ``tests/test_corun.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.sim.system import NDPSystem
from repro.sim.tenancy import TenantView, derive_units
from repro.workloads.base import RunMetrics, Workload, collect_metrics


@dataclass
class TenantSpec:
    """One tenant: a workload factory bound to a share of the machine.

    At most one of the partition knobs may be set:

    - ``units`` — unit-granular slice: the tenant gets *all* client cores of
      those physical units (the shape per-unit workloads like the graph
      kernels want);
    - ``cores`` — a contiguous slice of that many yet-unassigned client
      cores (fine for symmetric workloads like the primitive microbenches);
    - ``core_ids`` — an explicit list of client core ids (what the
      interference experiment uses to run a tenant *alone on exactly the
      slice it occupied in a co-run*);
    - none — an equal share of whatever cores remain after the explicit
      tenants are placed.
    """

    name: str
    factory: Callable[[], Workload]
    cores: Optional[int] = None
    units: Optional[Tuple[int, ...]] = None
    core_ids: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        knobs = sum(k is not None for k in (self.cores, self.units,
                                            self.core_ids))
        if knobs > 1:
            raise ValueError(
                f"tenant {self.name!r}: give at most one of cores=, units=, "
                f"core_ids="
            )
        if self.cores is not None and self.cores < 1:
            raise ValueError(f"tenant {self.name!r}: cores must be positive")


def partition_cores(system: NDPSystem, tenants: Sequence[TenantSpec]
                    ) -> List[Tuple[list, Tuple[int, ...]]]:
    """Deterministically split the system's client cores among tenants.

    Returns one ``(cores, units)`` pair per tenant, in declaration order.
    Fully-determined tenants claim first (explicit ``units`` take whole
    units, explicit ``core_ids`` take exactly those cores), then ``cores``
    tenants take contiguous slices of the remainder, then the unconstrained
    tenants split what is left evenly (earlier tenants get the odd cores).
    """
    if not tenants:
        raise ValueError("a co-run needs at least one tenant")
    num_units = system.config.num_units
    pool = list(system.cores)  # ordered by core_id
    claimed: Dict[int, str] = {}  # core_id -> tenant name
    assignments: List[Optional[Tuple[list, Tuple[int, ...]]]] = [None] * len(tenants)

    def claim(cores: list, spec: TenantSpec) -> None:
        if not cores:
            raise ValueError(f"tenant {spec.name!r} would get no cores")
        for core in cores:
            other = claimed.get(core.core_id)
            if other is not None:
                raise ValueError(
                    f"tenants {other!r} and {spec.name!r} both claim "
                    f"core {core.core_id}"
                )
            claimed[core.core_id] = spec.name

    by_id = {c.core_id: c for c in pool}
    for i, spec in enumerate(tenants):
        if spec.units is not None:
            units = tuple(int(u) for u in spec.units)
            bad = [u for u in units if not 0 <= u < num_units]
            if bad or len(set(units)) != len(units):
                raise ValueError(
                    f"tenant {spec.name!r}: invalid unit slice {units} for a "
                    f"{num_units}-unit system"
                )
            cores = [c for c in pool if c.unit_id in set(units)]
            claim(cores, spec)
            assignments[i] = (cores, units)
        elif spec.core_ids is not None:
            ids = [int(c) for c in spec.core_ids]
            unknown = [c for c in ids if c not in by_id]
            if unknown or len(set(ids)) != len(ids):
                raise ValueError(
                    f"tenant {spec.name!r}: invalid core ids {ids} for this "
                    f"{len(pool)}-client system"
                )
            cores = [by_id[c] for c in sorted(ids)]
            claim(cores, spec)
            assignments[i] = (cores, derive_units(cores))

    for i, spec in enumerate(tenants):
        if spec.cores is None or assignments[i] is not None:
            continue
        free = [c for c in pool if c.core_id not in claimed]
        if spec.cores > len(free):
            raise ValueError(
                f"tenant {spec.name!r} wants {spec.cores} cores, only "
                f"{len(free)} remain"
            )
        cores = free[: spec.cores]
        claim(cores, spec)
        assignments[i] = (cores, derive_units(cores))

    rest = [i for i, a in enumerate(assignments) if a is None]
    if rest:
        free = [c for c in pool if c.core_id not in claimed]
        share, extra = divmod(len(free), len(rest))
        cursor = 0
        for rank, i in enumerate(rest):
            take = share + (1 if rank < extra else 0)
            cores = free[cursor: cursor + take]
            cursor += take
            claim(cores, tenants[i])
            assignments[i] = (cores, derive_units(cores))

    return assignments  # type: ignore[return-value]


class CorunWorkload(Workload):
    """Run several independent workloads on one shared system."""

    name = "corun"

    def __init__(self, tenants: Sequence[TenantSpec]):
        if not tenants:
            raise ValueError("a co-run needs at least one tenant")
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"tenant names must be unique, got {names}")
        self.tenants = list(tenants)
        self.views: List[TenantView] = []
        self.inner: List[Workload] = []
        self._program_cores: List[set] = []

    # ------------------------------------------------------------------
    def build(self, system: NDPSystem) -> Dict[int, object]:
        if self.views:
            raise RuntimeError("CorunWorkload instances are single-use")
        assignments = partition_cores(system, self.tenants)
        programs: Dict[int, object] = {}
        for spec, (cores, units) in zip(self.tenants, assignments):
            tstats = system.stats.add_tenant(spec.name)
            for core in cores:
                core.tstats = tstats
            view = TenantView(system, tstats, cores, units)
            workload = spec.factory()
            tenant_programs = workload.build(view)
            own = {c.core_id for c in cores}
            alien = set(tenant_programs) - own
            if alien:
                raise RuntimeError(
                    f"tenant {spec.name!r} built programs for cores "
                    f"{sorted(alien)[:8]} outside its slice"
                )
            programs.update(tenant_programs)
            self.views.append(view)
            self.inner.append(workload)
            self._program_cores.append(set(tenant_programs))
        return programs

    # ------------------------------------------------------------------
    def run(self, system: NDPSystem, max_events: Optional[int] = None) -> RunMetrics:
        programs = self.build(system)
        cycles = system.run_programs(programs, max_events=max_events)
        for view, workload, core_ids in zip(self.views, self.inner,
                                            self._program_cores):
            tstats = view.tstats
            tstats.cycles = max(
                (system.cores[cid].finish_time for cid in core_ids), default=0
            )
            tstats.operations = workload.operations()
            workload.verify(view)
        return collect_metrics(system, cycles, self.operations())

    def verify(self, system: NDPSystem) -> None:
        """Per-tenant verification happens inside :meth:`run` (each inner
        workload verifies against its own view)."""

    def operations(self) -> int:
        return sum(workload.operations() for workload in self.inner)

    # ------------------------------------------------------------------
    def tenant_metrics(self) -> List[Dict[str, float]]:
        """Per-tenant counter snapshots (after :meth:`run`)."""
        return [
            {"name": view.tstats.name, **view.tstats.as_dict()}
            for view in self.views
        ]
