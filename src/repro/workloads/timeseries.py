"""Time-series analysis: SCRIMP matrix profile (paper Sec. 5 "Workloads").

The paper runs SCRIMP [Matrix Profile, ICDM'16/'18] on real air-quality and
power-consumption series.  We generate synthetic series with planted motifs
(same access/sync pattern; see DESIGN.md for the substitution note) and
compute the matrix profile by diagonals:

- the input series is replicated per NDP unit (shared read-only →
  cacheable), exactly as the paper replicates input data;
- the output profile is partitioned across units (read-write) and each
  entry update takes that entry's fine-grained lock;
- cores process diagonals round-robin and meet at a final barrier.

Synchronization intensity is high — every improved minimum takes a lock —
which is why the paper singles out ts as its most sync-intensive real
application (Fig. 12/14/21a).
"""

from __future__ import annotations

import math
import random
from typing import Dict, List

from repro.core import api
from repro.sim.program import Batch, Compute, Load, Store
from repro.sim.system import NDPSystem
from repro.workloads.base import Workload, scaled, stable_name_seed

DATASETS = ("air", "pow")


def generate_series(name: str, length: int, seed: int = 0) -> List[float]:
    """Synthetic series with planted motifs (so the profile is non-trivial).

    ``air``: daily-cycle-like smooth signal + noise; ``pow``: blocky
    load-step signal + noise — loosely matching the character of the
    paper's air-quality and power-consumption inputs.
    """
    # hash(str) is per-process randomized; a crc-derived fallback keeps the
    # series identical across worker processes and interpreter launches.
    rng = random.Random(seed or stable_name_seed(name))
    series = []
    for i in range(length):
        if name == "air":
            base = math.sin(2 * math.pi * i / 24) + 0.5 * math.sin(2 * math.pi * i / 7)
        else:
            base = 1.0 if (i // 16) % 2 == 0 else -1.0
        series.append(base + 0.25 * rng.random())
    # plant a repeated motif so a true nearest neighbour exists.
    motif = [2.0 * math.sin(i / 2.0) for i in range(8)]
    for start in (length // 5, (3 * length) // 5):
        for i, value in enumerate(motif):
            if start + i < length:
                series[start + i] = value
    return series


def matrix_profile_reference(series: List[float], window: int) -> List[float]:
    """Brute-force z-normalized-free matrix profile (squared distances)."""
    n = len(series) - window + 1
    profile = [float("inf")] * n
    for i in range(n):
        for j in range(i + 1, n):
            if abs(i - j) < window:  # exclusion zone
                continue
            dist = sum(
                (series[i + k] - series[j + k]) ** 2 for k in range(window)
            )
            if dist < profile[i]:
                profile[i] = dist
            if dist < profile[j]:
                profile[j] = dist
    return profile


class TimeSeriesWorkload(Workload):
    """SCRIMP: diagonal-order matrix profile with per-entry locks."""

    name = "ts"

    def __init__(self, dataset: str = "air", length: int = None, window: int = 8,
                 seed: int = 0):
        if dataset not in DATASETS:
            raise ValueError(f"dataset must be one of {DATASETS}")
        self.dataset = dataset
        self.length = length if length is not None else scaled(96)
        self.window = window
        self.seed = seed
        self.series = generate_series(dataset, self.length, seed)
        self.profile_len = self.length - window + 1
        self.profile = [float("inf")] * self.profile_len
        self._updates = 0
        self._steps = 0

    # ------------------------------------------------------------------
    def build(self, system: NDPSystem) -> Dict[int, object]:
        units = system.config.num_units
        # replicated input series: one copy per unit (cacheable reads).
        self.series_addr = [
            system.addrmap.alloc_array(u, self.length, 8) for u in range(units)
        ]
        # partitioned output profile + per-entry locks.
        self.profile_addr = [0] * self.profile_len
        self.profile_lock = [None] * self.profile_len
        for i in range(self.profile_len):
            unit = i % units
            self.profile_addr[i] = system.addrmap.alloc(unit, 8)
            self.profile_lock[i] = system.create_syncvar(unit=unit)

        self.barrier = system.create_syncvar(unit=0, name="ts_barrier")
        cores = system.cores
        participants = len(cores)

        # diagonals k = window .. profile_len-1, dealt round-robin.
        diagonals = list(range(self.window, self.profile_len))
        per_core: Dict[int, List[int]] = {c.core_id: [] for c in cores}
        for index, k in enumerate(diagonals):
            per_core[cores[index % len(cores)].core_id].append(k)

        return {
            core.core_id: self._core_program(core, per_core[core.core_id],
                                             participants)
            for core in cores
        }

    def _core_program(self, core, diagonals: List[int], participants: int):
        unit = core.unit_id
        series_base = None  # resolved lazily; build() fills series_addr first

        def program():
            base = self.series_addr[unit]
            for k in diagonals:
                # walk diagonal k: pairs (i, i+k).
                for i in range(0, self.profile_len - k):
                    j = i + k
                    self._steps += 1
                    # incremental update: two multiplies, two adds + the
                    # two new sample loads (cacheable, replicated input).
                    yield Batch((
                        Load(base + 8 * (i + self.window - 1)),
                        Load(base + 8 * (j + self.window - 1)),
                        Compute(8),
                    ))
                    dist = sum(
                        (self.series[i + t] - self.series[j + t]) ** 2
                        for t in range(self.window)
                    )
                    # SCRIMP's min-update: the comparison itself reads the
                    # shared profile entry, so it happens under that entry's
                    # lock — this is what makes ts the paper's most
                    # synchronization-intensive application (Sec. 6.1.3,
                    # Table 7's 44% average ST occupancy).
                    for target in (i, j):
                        yield api.lock_acquire(self.profile_lock[target])
                        yield Load(self.profile_addr[target], cacheable=False)
                        if dist < self.profile[target]:
                            self.profile[target] = dist
                            self._updates += 1
                            yield Store(self.profile_addr[target], cacheable=False)
                        yield api.lock_release(self.profile_lock[target])
            yield api.barrier_wait_across_units(self.barrier, participants)

        return program()

    # ------------------------------------------------------------------
    def verify(self, system: NDPSystem) -> None:
        reference = matrix_profile_reference(self.series, self.window)
        for mine, ref in zip(self.profile, reference):
            if not math.isclose(mine, ref, rel_tol=1e-9, abs_tol=1e-12):
                raise AssertionError("matrix profile does not match brute force")

    def operations(self) -> int:
        return self._steps
