"""Workloads: microbenchmarks, data structures, graphs, time series."""

from repro.workloads.base import (
    RunMetrics,
    Workload,
    collect_metrics,
    run_workload,
    scale,
    scaled,
)
from repro.workloads.microbench import PRIMITIVES, PrimitiveMicrobench
from repro.workloads.timeseries import TimeSeriesWorkload

__all__ = [
    "PRIMITIVES",
    "PrimitiveMicrobench",
    "RunMetrics",
    "TimeSeriesWorkload",
    "Workload",
    "collect_metrics",
    "run_workload",
    "scale",
    "scaled",
]
