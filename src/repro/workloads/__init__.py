"""Workloads: microbenchmarks, data structures, graphs, time series."""

from repro.workloads.base import (
    RunMetrics,
    Workload,
    collect_metrics,
    run_workload,
    scale,
    scaled,
)
from repro.workloads.corun import CorunWorkload, TenantSpec
from repro.workloads.microbench import PRIMITIVES, PrimitiveMicrobench
from repro.workloads.timeseries import TimeSeriesWorkload

__all__ = [
    "CorunWorkload",
    "PRIMITIVES",
    "PrimitiveMicrobench",
    "RunMetrics",
    "TenantSpec",
    "TimeSeriesWorkload",
    "Workload",
    "collect_metrics",
    "run_workload",
    "scale",
    "scaled",
]
