"""Reader-writer lock microbenchmark.

A shared table protected by one rw lock: a configurable fraction of
operations are lookups (shared mode) and the rest are updates (exclusive
mode).  Sweeping the read ratio exposes the rw lock's reason to exist —
at high read ratios a mechanism that grants readers concurrently approaches
the lock-free Ideal, while a plain mutex serializes everything.

The workload verifies its functional outcome: the update count must equal
the number of exclusive sections executed, and no lookup may ever observe
a torn update (enforced with an in-section guard, as in the test suite).
"""

from __future__ import annotations

from typing import Dict

from repro.core import api
from repro.sim.program import Compute
from repro.sim.system import NDPSystem
from repro.workloads.base import Workload, scaled


class RWLockMicrobench(Workload):
    """Cores hammer one rw lock with a read-heavy operation mix."""

    def __init__(self, read_pct: int = 90, rounds: int = None,
                 read_section: int = 60, write_section: int = 60,
                 mutex_mode: bool = False):
        if not 0 <= read_pct <= 100:
            raise ValueError("read_pct must be in [0, 100]")
        self.name = f"rwbench_r{read_pct}" + ("_mutex" if mutex_mode else "")
        self.read_pct = read_pct
        self.rounds = rounds if rounds is not None else scaled(20)
        self.read_section = read_section
        self.write_section = write_section
        #: run the identical mix under a plain mutex (every section
        #: exclusive) — the baseline the rw lock is measured against.
        self.mutex_mode = mutex_mode
        self._state = {
            "updates": 0, "lookups": 0,
            "readers": 0, "writer_active": 0, "violations": 0,
        }
        self._ops = 0

    # ------------------------------------------------------------------
    def build(self, system: NDPSystem) -> Dict[int, object]:
        rwlock = system.create_syncvar(name="rwbench")
        state = self._state
        # Deterministic per-core op mix matching read_pct overall.
        threshold = self.read_pct

        def worker(core_id: int):
            for round_idx in range(self.rounds):
                # Spread reads/writes deterministically (no RNG in the
                # simulated program: runs must be reproducible).
                is_read = ((core_id * 7 + round_idx * 13) % 100) < threshold
                if self.mutex_mode:
                    yield api.lock_acquire(rwlock)
                    state["writer_active"] += 1
                    if state["writer_active"] > 1:
                        state["violations"] += 1
                    section = self.read_section if is_read else self.write_section
                    yield Compute(section)
                    state["writer_active"] -= 1
                    if is_read:
                        state["lookups"] += 1
                    else:
                        state["updates"] += 1
                    yield api.lock_release(rwlock)
                elif is_read:
                    yield api.rw_read_acquire(rwlock)
                    state["readers"] += 1
                    if state["writer_active"]:
                        state["violations"] += 1
                    yield Compute(self.read_section)
                    state["readers"] -= 1
                    state["lookups"] += 1
                    yield api.rw_read_release(rwlock)
                else:
                    yield api.rw_write_acquire(rwlock)
                    state["writer_active"] += 1
                    if state["writer_active"] > 1 or state["readers"]:
                        state["violations"] += 1
                    yield Compute(self.write_section)
                    state["writer_active"] -= 1
                    state["updates"] += 1
                    yield api.rw_write_release(rwlock)

        programs = {
            core.core_id: worker(core.core_id) for core in system.cores
        }
        self._ops = self.rounds * len(programs)
        return programs

    # ------------------------------------------------------------------
    def verify(self, system: NDPSystem) -> None:
        state = self._state
        if state["violations"]:
            raise AssertionError(
                f"{self.name}: {state['violations']} shared/exclusive "
                "violations observed"
            )
        if state["updates"] + state["lookups"] != self._ops:
            raise AssertionError(
                f"{self.name}: completed {state['updates'] + state['lookups']} "
                f"operations, expected {self._ops}"
            )

    def operations(self) -> int:
        return self._ops
