"""Shared test/benchmark helpers, importable as ``repro.testing``.

Historically these lived in ``tests/conftest.py`` and test modules did
``from conftest import build_system`` — which pytest resolved against
*whichever* ``conftest.py`` it imported first (``benchmarks/conftest.py``
under prepend import mode), breaking collection of the whole suite.  Keeping
them in the installed package means both ``tests/`` and ``benchmarks/``
can import them unambiguously, and so can ad-hoc scripts.
"""

from __future__ import annotations

from repro.sim.config import SystemConfig
from repro.sim.system import NDPSystem


def build_system(config: SystemConfig, mechanism: str = "syncron") -> NDPSystem:
    """Construct an :class:`NDPSystem` for one mechanism under test."""
    return NDPSystem(config, mechanism=mechanism)


#: every mechanism with POSIX-style synchronization semantics.
ALL_MECHANISMS = (
    "syncron",
    "syncron_flat",
    "central",
    "hier",
    "ideal",
    "syncron_central_ovrfl",
    "syncron_distrib_ovrfl",
)

#: Sec. 2.2.1 spin-wait baselines.  Kept out of ALL_MECHANISMS because their
#: condition-variable semantics differ deliberately (credits persist instead
#: of POSIX lost signals) — see test_spin_baselines.py for their coverage.
SPIN_MECHANISMS = ("rmw_spin", "bakery")
