"""SynCron's programming interface (paper Table 2).

These helpers build the operation objects that simulated core programs
yield; they are the moral equivalent of the paper's API calls compiled to
``req_sync`` / ``req_async`` instructions (Sec. 4.1):

- acquire-type semantics (``lock_acquire``, ``barrier_wait_*``, ``sem_wait``,
  ``cond_wait``) map to the blocking ``req_sync`` instruction, which commits
  when the ACK/grant message returns — providing the ACQUIRE fence of
  release consistency;
- release-type semantics (``lock_release``, ``sem_post``, ``cond_signal``,
  ``cond_broadcast``) map to ``req_async``, which commits once the message
  is issued — the RELEASE fence (it is only issued after all previous
  instructions complete, which our in-order core model guarantees by
  construction).

Example::

    def worker(system, lock, data_addr):
        yield api.lock_acquire(lock)
        yield Load(data_addr, cacheable=False)
        yield Store(data_addr, cacheable=False)
        yield api.lock_release(lock)

Variables come from ``NDPSystem.create_syncvar()`` (the driver-side
``create_syncvar()`` of Table 2) and are destroyed with
``NDPSystem.destroy_syncvar()``.
"""

from __future__ import annotations

from repro.sim.program import (
    BARRIER_WAIT_ACROSS_UNITS,
    BARRIER_WAIT_WITHIN_UNIT,
    COND_BROADCAST,
    COND_SIGNAL,
    COND_WAIT,
    LOCK_ACQUIRE,
    LOCK_RELEASE,
    RW_READ_ACQUIRE,
    RW_READ_RELEASE,
    RW_WRITE_ACQUIRE,
    RW_WRITE_RELEASE,
    SEM_POST,
    SEM_WAIT,
    SyncAsyncOp,
    SyncOp,
)
from repro.sim.syncif import SyncVar


def lock_acquire(lock: SyncVar) -> SyncOp:
    """Blocking lock acquisition (``req_sync``)."""
    return SyncOp(LOCK_ACQUIRE, lock)


def lock_release(lock: SyncVar) -> SyncAsyncOp:
    """Lock release (``req_async``; commits at issue)."""
    return SyncAsyncOp(LOCK_RELEASE, lock)


def barrier_wait_within_unit(barrier: SyncVar, initial_cores: int) -> SyncOp:
    """Barrier among ``initial_cores`` cores of one NDP unit."""
    if initial_cores < 1:
        raise ValueError("a barrier needs at least one participant")
    return SyncOp(BARRIER_WAIT_WITHIN_UNIT, barrier, info=initial_cores)


def barrier_wait_across_units(barrier: SyncVar, initial_cores: int) -> SyncOp:
    """Barrier among ``initial_cores`` cores spanning NDP units."""
    if initial_cores < 1:
        raise ValueError("a barrier needs at least one participant")
    return SyncOp(BARRIER_WAIT_ACROSS_UNITS, barrier, info=initial_cores)


def sem_wait(semaphore: SyncVar, initial_resources: int) -> SyncOp:
    """P() on a counting semaphore with ``initial_resources`` units."""
    if initial_resources < 0:
        raise ValueError("initial resources must be non-negative")
    return SyncOp(SEM_WAIT, semaphore, info=initial_resources)


def sem_post(semaphore: SyncVar) -> SyncAsyncOp:
    """V() on a counting semaphore."""
    return SyncAsyncOp(SEM_POST, semaphore)


def cond_wait(cond: SyncVar, lock: SyncVar) -> SyncOp:
    """Wait on a condition variable; atomically releases ``lock`` and
    re-acquires it before returning (pthread semantics)."""
    return SyncOp(COND_WAIT, cond, info=lock)


def cond_signal(cond: SyncVar) -> SyncAsyncOp:
    """Wake one waiter (lost if nobody waits)."""
    return SyncAsyncOp(COND_SIGNAL, cond)


def cond_broadcast(cond: SyncVar) -> SyncAsyncOp:
    """Wake every waiter."""
    return SyncAsyncOp(COND_BROADCAST, cond)


def rw_read_acquire(rwlock: SyncVar) -> SyncOp:
    """Shared (reader) acquisition of a reader-writer lock (``req_sync``).

    Reader-writer locks are SynCron's generality extension beyond the
    paper's four primitives (LCU [146] supports them natively, Sec. 4.5);
    the grant policy is fair FIFO: a waiting writer blocks later readers.
    """
    return SyncOp(RW_READ_ACQUIRE, rwlock)


def rw_read_release(rwlock: SyncVar) -> SyncAsyncOp:
    """Release a shared (reader) hold (``req_async``)."""
    return SyncAsyncOp(RW_READ_RELEASE, rwlock)


def rw_write_acquire(rwlock: SyncVar) -> SyncOp:
    """Exclusive (writer) acquisition of a reader-writer lock."""
    return SyncOp(RW_WRITE_ACQUIRE, rwlock)


def rw_write_release(rwlock: SyncVar) -> SyncAsyncOp:
    """Release an exclusive (writer) hold (``req_async``)."""
    return SyncAsyncOp(RW_WRITE_RELEASE, rwlock)
