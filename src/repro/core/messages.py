"""SynCron message opcodes and encoding (paper Fig. 5 and Table 3).

Messages carry: a 64-bit synchronization-variable address, a 6-bit opcode,
a 6-bit core id, and a 64-bit ``MessageInfo`` field — 140 bits per request.
Responses add the grant payload (149 bits with flow-control bits in our
model).  The byte sizes below are what the network models charge.

Opcodes come in three families, exactly as in Table 3:

- ``*_local``    — NDP core <-> its local SE,
- ``*_global``   — local SE <-> Master SE,
- ``*_overflow`` — overflowed local SE <-> Master SE (Sec. 4.3.2),

plus ``decrease_indexing_counter`` (Master SE -> overflowed SE).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, Optional

#: Fig. 5: 64 + 6 + 6 + 64 bits.
REQUEST_BITS = 140
#: grant/response message (request + 9 status/flow-control bits in Fig. 6).
RESPONSE_BITS = 149

REQUEST_BYTES = math.ceil(REQUEST_BITS / 8)
RESPONSE_BYTES = math.ceil(RESPONSE_BITS / 8)


class Opcode(enum.Enum):
    # --- locks --------------------------------------------------------
    LOCK_ACQUIRE_LOCAL = enum.auto()
    LOCK_ACQUIRE_GLOBAL = enum.auto()
    LOCK_RELEASE_LOCAL = enum.auto()
    LOCK_RELEASE_GLOBAL = enum.auto()
    LOCK_GRANT_LOCAL = enum.auto()
    LOCK_GRANT_GLOBAL = enum.auto()
    LOCK_ACQUIRE_OVERFLOW = enum.auto()
    LOCK_RELEASE_OVERFLOW = enum.auto()
    LOCK_GRANT_OVERFLOW = enum.auto()
    # --- barriers -----------------------------------------------------
    BARRIER_WAIT_LOCAL_WITHIN_UNIT = enum.auto()
    BARRIER_WAIT_LOCAL_ACROSS_UNITS = enum.auto()
    BARRIER_WAIT_GLOBAL = enum.auto()
    BARRIER_DEPART_LOCAL = enum.auto()
    BARRIER_DEPART_GLOBAL = enum.auto()
    BARRIER_WAIT_OVERFLOW = enum.auto()
    BARRIER_DEPARTURE_OVERFLOW = enum.auto()
    # --- semaphores ---------------------------------------------------
    SEM_WAIT_LOCAL = enum.auto()
    SEM_WAIT_GLOBAL = enum.auto()
    SEM_GRANT_LOCAL = enum.auto()
    SEM_GRANT_GLOBAL = enum.auto()
    SEM_POST_LOCAL = enum.auto()
    SEM_POST_GLOBAL = enum.auto()
    SEM_WAIT_OVERFLOW = enum.auto()
    SEM_GRANT_OVERFLOW = enum.auto()
    SEM_POST_OVERFLOW = enum.auto()
    # --- condition variables -------------------------------------------
    COND_WAIT_LOCAL = enum.auto()
    COND_WAIT_GLOBAL = enum.auto()
    COND_SIGNAL_LOCAL = enum.auto()
    COND_SIGNAL_GLOBAL = enum.auto()
    COND_BROAD_LOCAL = enum.auto()
    COND_BROAD_GLOBAL = enum.auto()
    COND_GRANT_LOCAL = enum.auto()
    COND_GRANT_GLOBAL = enum.auto()
    COND_WAIT_OVERFLOW = enum.auto()
    COND_SIGNAL_OVERFLOW = enum.auto()
    COND_BROAD_OVERFLOW = enum.auto()
    COND_GRANT_OVERFLOW = enum.auto()
    # --- reader-writer locks (generality extension; cf. LCU, Sec. 4.5) ---
    RW_READ_ACQUIRE_LOCAL = enum.auto()
    RW_READ_ACQUIRE_GLOBAL = enum.auto()
    RW_READ_RELEASE_LOCAL = enum.auto()
    RW_READ_RELEASE_GLOBAL = enum.auto()
    RW_WRITE_ACQUIRE_LOCAL = enum.auto()
    RW_WRITE_ACQUIRE_GLOBAL = enum.auto()
    RW_WRITE_RELEASE_LOCAL = enum.auto()
    RW_WRITE_RELEASE_GLOBAL = enum.auto()
    # --- other ----------------------------------------------------------
    DECREASE_INDEXING_COUNTER = enum.auto()


LOCAL_OPCODES = frozenset(op for op in Opcode if op.name.endswith("_LOCAL")) | {
    Opcode.BARRIER_WAIT_LOCAL_WITHIN_UNIT,
    Opcode.BARRIER_WAIT_LOCAL_ACROSS_UNITS,
}
GLOBAL_OPCODES = frozenset(op for op in Opcode if op.name.endswith("_GLOBAL"))
OVERFLOW_OPCODES = frozenset(op for op in Opcode if op.name.endswith("_OVERFLOW")) | {
    Opcode.DECREASE_INDEXING_COUNTER,
}

#: acquire-type opcodes increment indexing counters on overflow (Sec. 4.2.3).
ACQUIRE_OPCODES = frozenset(
    {
        Opcode.LOCK_ACQUIRE_LOCAL,
        Opcode.LOCK_ACQUIRE_GLOBAL,
        Opcode.LOCK_ACQUIRE_OVERFLOW,
        Opcode.BARRIER_WAIT_LOCAL_WITHIN_UNIT,
        Opcode.BARRIER_WAIT_LOCAL_ACROSS_UNITS,
        Opcode.BARRIER_WAIT_GLOBAL,
        Opcode.BARRIER_WAIT_OVERFLOW,
        Opcode.SEM_WAIT_LOCAL,
        Opcode.SEM_WAIT_GLOBAL,
        Opcode.SEM_WAIT_OVERFLOW,
        Opcode.COND_WAIT_LOCAL,
        Opcode.COND_WAIT_GLOBAL,
        Opcode.COND_WAIT_OVERFLOW,
        Opcode.RW_READ_ACQUIRE_LOCAL,
        Opcode.RW_READ_ACQUIRE_GLOBAL,
        Opcode.RW_WRITE_ACQUIRE_LOCAL,
        Opcode.RW_WRITE_ACQUIRE_GLOBAL,
    }
)
#: release-type opcodes decrement indexing counters (Sec. 4.2.3).
RELEASE_OPCODES = frozenset(
    {
        Opcode.LOCK_RELEASE_LOCAL,
        Opcode.LOCK_RELEASE_GLOBAL,
        Opcode.LOCK_RELEASE_OVERFLOW,
        Opcode.SEM_POST_LOCAL,
        Opcode.SEM_POST_GLOBAL,
        Opcode.SEM_POST_OVERFLOW,
        Opcode.COND_SIGNAL_LOCAL,
        Opcode.COND_SIGNAL_GLOBAL,
        Opcode.COND_SIGNAL_OVERFLOW,
        Opcode.COND_BROAD_LOCAL,
        Opcode.COND_BROAD_GLOBAL,
        Opcode.COND_BROAD_OVERFLOW,
        Opcode.RW_READ_RELEASE_LOCAL,
        Opcode.RW_READ_RELEASE_GLOBAL,
        Opcode.RW_WRITE_RELEASE_LOCAL,
        Opcode.RW_WRITE_RELEASE_GLOBAL,
    }
)


#: Opcode -> wire size in bytes, precomputed once so the per-message ``bytes``
#: lookup on the network hot path never scans opcode names.
OPCODE_BYTES: Dict[Opcode, int] = {
    op: (RESPONSE_BYTES if ("GRANT" in op.name or "DEPART" in op.name)
         else REQUEST_BYTES)
    for op in Opcode
}


@dataclass(slots=True)
class Message:
    """One message on the SE fabric.

    ``core`` is the requesting core's id for core<->SE messages (the CoreID
    field of Fig. 5); for overflow messages it packs the local core id and
    the overflowed SE's global id, which we keep as separate fields for
    clarity (the hardware packs both into CoreID, Sec. 4.3.2).

    ``slots=True``: millions of Message objects are allocated per run; a
    slotted instance skips the per-message ``__dict__``.
    """

    opcode: Opcode
    var: "object"  # repro.sim.syncif.SyncVar
    core: Optional[int] = None       # requesting core (global id)
    src_se: Optional[int] = None     # sending SE (global id), for SE<->SE
    info: int = 0                    # MessageInfo (Fig. 5)

    @property
    def bytes(self) -> int:
        return OPCODE_BYTES[self.opcode]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        who = f"core={self.core}" if self.core is not None else f"se={self.src_se}"
        return f"Message({self.opcode.name}, {self.var.name}, {who}, info={self.info})"
