"""SynCron: the paper's contribution.

Synchronization Engines (one per NDP unit) with a Synchronization Table,
indexing counters, hierarchical message-passing, and hardware-only overflow
management via in-memory ``syncronVar`` structures — plus the programmer API
of Table 2 and the area/power model of Table 8.
"""

from repro.core import api
from repro.core.area import AreaReport, se_area, table4_comparison, table8_rows
from repro.core.engine import SynCronMechanism, SyncEngine
from repro.core.indexing import IndexingCounters
from repro.core.messages import Message, Opcode, REQUEST_BYTES, RESPONSE_BYTES
from repro.core.protocol import ProtocolError
from repro.core.rmw import RMW_OPS, RmwExtension
from repro.core.sync_table import STEntry, STFullError, SynchronizationTable
from repro.core.syncronvar import SyncronVar, SyncronVarStore

__all__ = [
    "api",
    "AreaReport",
    "IndexingCounters",
    "Message",
    "Opcode",
    "ProtocolError",
    "REQUEST_BYTES",
    "RESPONSE_BYTES",
    "RMW_OPS",
    "RmwExtension",
    "STEntry",
    "STFullError",
    "SynCronMechanism",
    "SyncEngine",
    "SynchronizationTable",
    "SyncronVar",
    "SyncronVarStore",
    "se_area",
    "table4_comparison",
    "table8_rows",
]
