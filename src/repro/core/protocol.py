"""SE message handlers: the SynCron protocol (paper Secs. 3.2, 4.2.4, 4.3).

:class:`ProtocolMixin` implements the control flow of Fig. 8 for every
opcode of Table 3.  It is mixed into
:class:`~repro.core.engine.SyncEngine`, which provides the infrastructure
(ST, indexing counters, syncronVar store, message send helpers and timing).

Handler conventions
-------------------

- *State objects* are :class:`~repro.core.sync_table.STEntry` instances,
  living either in the ST (common case) or inside a memory-resident
  ``syncronVar`` (overflow).  The same handlers run on both; the engine's
  :meth:`SyncEngine._get_state` decides where state lives and charges the
  Master SE's DRAM read+write on the memory path.
- ``local_waitlist`` holds core ids (condition variables hold
  ``(core, lock_var)`` pairs).  ``global_waitlist`` holds tagged tuples:
  ``("se", se_id)`` for aggregated hierarchical waiters and
  ``("ovf", core_id, se_id[, lock_var])`` for per-core waiters redirected by
  an overflowed local SE.
- Grants to cores are *direct notifications* (Table 4): exactly one waiting
  core is woken per grant; nobody spins.
"""

from __future__ import annotations

from repro.core.messages import Message, Opcode
from repro.sim.syncif import SyncUsageError


class ProtocolError(SyncUsageError):
    """A message arrived that a correct program could not have produced."""


class ProtocolMixin:
    """Opcode handlers; mixed into :class:`~repro.core.engine.SyncEngine`."""

    #: empty slots so slotted engines composed from this mixin stay dict-free.
    __slots__ = ()

    # ==================================================================
    # Dispatch
    # ==================================================================
    def dispatch(self, msg: Message) -> None:
        # _HANDLERS is built once at module load; every opcode is mapped, so
        # the hot path is a single dict hit (KeyError would be kernel misuse).
        try:
            handler = _HANDLERS[msg.opcode]
        except KeyError:  # pragma: no cover - all opcodes are mapped
            raise ProtocolError(f"no handler for {msg.opcode}") from None
        handler(self, msg)

    # ==================================================================
    # Locks (Sec. 3.2 walk-through)
    # ==================================================================
    def _on_lock_acquire_local(self, msg: Message) -> None:
        state, in_memory = self._get_state(msg, acquire=True)
        if state is None:
            return  # redirected to the Master SE by the overflow path
        state.local_waitlist.append(msg.core)
        if self.is_master(msg.var):
            self._lock_try_grant_master(state, msg.var, in_memory)
        else:
            if state.has_control and state.local_owner is None:
                self._lock_grant_local(state, msg.var)
            elif not state.has_control and not state.pending_global:
                state.pending_global = True
                self.send_se(self.master_of(msg.var), Opcode.LOCK_ACQUIRE_GLOBAL, msg.var)

    def _on_lock_acquire_global(self, msg: Message) -> None:
        state, in_memory = self._get_state(msg, acquire=True)
        if state is None:
            return
        state.global_waitlist.append(("se", msg.src_se))
        self._lock_try_grant_master(state, msg.var, in_memory)

    def _on_lock_acquire_overflow(self, msg: Message) -> None:
        state, in_memory = self._get_state(msg, acquire=True)
        if state is None:
            return
        state.overflow_ses.add(msg.src_se)
        if in_memory:
            self._mark_syncronvar_overflow(msg.var, msg.src_se)
        state.global_waitlist.append(("ovf", msg.core, msg.src_se))
        self._lock_try_grant_master(state, msg.var, in_memory)

    def _lock_try_grant_master(self, state, var, in_memory: bool) -> None:
        """Master-side arbitration: local waiters first (Sec. 3.2), unless
        the Sec. 4.4.2 fairness counter forces a transfer."""
        if state.local_owner is not None or state.owner_se is not None:
            return
        threshold = self.config.fairness_threshold
        force_transfer = (
            threshold > 0
            and state.local_grant_counter >= threshold
            and state.global_waitlist
        )
        if state.local_waitlist and not force_transfer:
            self._lock_grant_local(state, var)
        elif state.global_waitlist:
            state.local_grant_counter = 0
            self._lock_grant_global_head(state, var)
        else:
            self._maybe_free_state(state, var, in_memory)

    def _lock_grant_local(self, state, var) -> None:
        core = state.local_waitlist.popleft()
        state.local_owner = core
        state.local_grant_counter += 1
        self.send_grant(core)

    def _lock_grant_global_head(self, state, var) -> None:
        item = state.global_waitlist.popleft()
        if item[0] == "se":
            state.owner_se = item
            self.send_se(item[1], Opcode.LOCK_GRANT_GLOBAL, var)
        else:  # ("ovf", core, se): grant straight to the remote core
            state.owner_se = item
            self.send_se(item[2], Opcode.LOCK_GRANT_OVERFLOW, var, core=item[1])

    def _on_lock_grant_global(self, msg: Message) -> None:
        entry = self.st.lookup(msg.var.addr)
        if entry is None:
            raise ProtocolError(f"lock grant for unknown variable {msg.var.name}")
        entry.has_control = True
        entry.pending_global = False
        if entry.local_owner is None and entry.local_waitlist:
            self._lock_grant_local(entry, msg.var)

    def _on_lock_grant_overflow(self, msg: Message) -> None:
        # The overflowed SE simply forwards the grant to its local core.
        self.send_grant(msg.core)

    def _on_lock_release_local(self, msg: Message) -> None:
        entry = self.st.lookup(msg.var.addr)
        if entry is None:
            self._lock_release_no_entry(msg)
            return
        if entry.local_owner != msg.core:
            if not self.is_master(msg.var):
                # The core was granted through the overflow path (no local
                # entry existed then); a fresh ST entry has appeared since.
                # The Master SE still tracks the overflow ownership, so the
                # release must travel the overflow route.
                self._redirect_overflow(msg, Opcode.LOCK_RELEASE_OVERFLOW)
                return
            raise ProtocolError(
                f"core {msg.core} released lock {msg.var.name} owned by "
                f"{entry.local_owner}"
            )
        entry.local_owner = None
        if self.is_master(msg.var):
            self._lock_try_grant_master(entry, msg.var, in_memory=False)
            return
        # Non-master: keep serving local requests while any exist
        # (Sec. 3.2), unless fairness forces handing control back.
        threshold = self.config.fairness_threshold
        force_transfer = threshold > 0 and entry.local_grant_counter >= threshold
        if entry.local_waitlist and not force_transfer:
            self._lock_grant_local(entry, msg.var)
            return
        entry.has_control = False
        entry.local_grant_counter = 0
        self.send_se(self.master_of(msg.var), Opcode.LOCK_RELEASE_GLOBAL, msg.var)
        if entry.local_waitlist:
            # fairness transfer with waiters left: immediately re-request.
            entry.pending_global = True
            self.send_se(self.master_of(msg.var), Opcode.LOCK_ACQUIRE_GLOBAL, msg.var)
        else:
            self.st.release_if_idle(entry)

    def _lock_release_no_entry(self, msg: Message) -> None:
        """A release with no ST entry: the variable is memory-serviced."""
        if self.is_master(msg.var):
            state, in_memory = self._get_state(msg, acquire=False)
            if state is None:
                return
            if state.local_owner != msg.core:
                raise ProtocolError(
                    f"overflow release of {msg.var.name} by non-owner {msg.core}"
                )
            state.local_owner = None
            self._lock_try_grant_master(state, msg.var, in_memory)
        else:
            self._redirect_overflow(msg, Opcode.LOCK_RELEASE_OVERFLOW)

    def _on_lock_release_global(self, msg: Message) -> None:
        state, in_memory = self._get_state(msg, acquire=False)
        if state is None:
            return
        if state.owner_se != ("se", msg.src_se):
            raise ProtocolError(
                f"SE {msg.src_se} released lock {msg.var.name} held by "
                f"{state.owner_se}"
            )
        state.owner_se = None
        self._lock_try_grant_master(state, msg.var, in_memory)

    def _on_lock_release_overflow(self, msg: Message) -> None:
        state, in_memory = self._get_state(msg, acquire=False)
        if state is None:
            return
        if not (state.owner_se and state.owner_se[0] == "ovf"
                and state.owner_se[1] == msg.core):
            raise ProtocolError(
                f"overflow release of {msg.var.name} by core {msg.core}, "
                f"owner is {state.owner_se}"
            )
        state.owner_se = None
        self._lock_try_grant_master(state, msg.var, in_memory)

    # ==================================================================
    # Barriers
    # ==================================================================
    def _on_barrier_wait_within_unit(self, msg: Message) -> None:
        state, in_memory = self._get_state(msg, acquire=True)
        if state is None:
            return  # redirected
        state.expected = msg.info
        state.arrived += 1
        state.local_waitlist.append(msg.core)
        if state.arrived >= state.expected:
            self._barrier_complete(state, msg.var, in_memory)

    def _on_barrier_wait_across_units(self, msg: Message) -> None:
        total = msg.info
        hierarchical = total >= self.mech.total_clients
        if not hierarchical and not self.is_master(msg.var):
            # One-level communication (Sec. 4.1.2): when fewer cores than the
            # whole system participate, local SEs statelessly re-direct all
            # messages to the Master SE, which coordinates globally.
            self.send_se(
                self.master_of(msg.var), Opcode.BARRIER_WAIT_GLOBAL,
                msg.var, core=msg.core, info=total,
            )
            return
        state, in_memory = self._get_state(msg, acquire=True)
        if state is None:
            return  # redirected via the overflow path
        state.expected = total
        state.local_waitlist.append(msg.core)
        state.arrived += 1
        if self.is_master(msg.var):
            state.table_info += 1
            if state.table_info >= total:
                self._barrier_complete(state, msg.var, in_memory)
        else:
            # Two-level: aggregate; one global message per unit (Sec. 3.2).
            if state.arrived >= self.mech.clients_in_unit(self.unit):
                self.send_se(
                    self.master_of(msg.var), Opcode.BARRIER_WAIT_GLOBAL,
                    msg.var, info=(state.arrived, total),
                )

    def _on_barrier_wait_global(self, msg: Message) -> None:
        state, in_memory = self._get_state(msg, acquire=True)
        if state is None:
            return
        if msg.core is not None:
            # one-level mode: an individual redirected core; info is the
            # barrier's total participant count.
            state.expected = msg.info
            state.global_waitlist.append(("ovf", msg.core, msg.src_se))
            state.table_info += 1
        else:
            count, total = msg.info
            state.expected = total
            state.global_waitlist.append(("se", msg.src_se))
            state.table_info += count
        if state.expected and state.table_info >= state.expected:
            self._barrier_complete(state, msg.var, in_memory)

    def _on_barrier_wait_overflow(self, msg: Message) -> None:
        state, in_memory = self._get_state(msg, acquire=True)
        if state is None:
            return
        state.overflow_ses.add(msg.src_se)
        if in_memory:
            self._mark_syncronvar_overflow(msg.var, msg.src_se)
        state.expected = msg.info
        state.global_waitlist.append(("ovf", msg.core, msg.src_se))
        state.table_info += 1
        if state.expected and state.table_info >= state.expected:
            self._barrier_complete(state, msg.var, in_memory)

    def _barrier_complete(self, state, var, in_memory: bool) -> None:
        """All participants arrived: notify everyone, then free the state."""
        for core in state.local_waitlist:
            self.send_grant(core)
        state.local_waitlist.clear()
        for item in state.global_waitlist:
            if item[0] == "se":
                self.send_se(item[1], Opcode.BARRIER_DEPART_GLOBAL, var)
            else:
                self.send_se(
                    item[2], Opcode.BARRIER_DEPARTURE_OVERFLOW, var, core=item[1]
                )
        state.global_waitlist.clear()
        state.arrived = 0
        state.expected = 0
        state.table_info = 0
        self._maybe_free_state(state, var, in_memory)

    def _on_barrier_depart_global(self, msg: Message) -> None:
        entry = self.st.lookup(msg.var.addr)
        if entry is None:
            raise ProtocolError(f"barrier departure for unknown {msg.var.name}")
        for core in entry.local_waitlist:
            self.send_grant(core)
        entry.local_waitlist.clear()
        entry.arrived = 0
        entry.expected = 0
        self.st.release_if_idle(entry)

    def _on_barrier_departure_overflow(self, msg: Message) -> None:
        self.send_grant(msg.core)

    # ==================================================================
    # Semaphores
    # ==================================================================
    def _on_sem_wait_local(self, msg: Message) -> None:
        state, in_memory = self._get_state(msg, acquire=True, sem_init=msg.info)
        if state is None:
            return  # redirected
        if self.is_master(msg.var):
            if state.table_info > 0:
                state.table_info -= 1
                self.send_grant(msg.core)
                self._maybe_free_sem(state, msg.var, in_memory)
            else:
                state.local_waitlist.append(msg.core)
        else:
            state.local_waitlist.append(msg.core)
            self.send_se(
                self.master_of(msg.var), Opcode.SEM_WAIT_GLOBAL, msg.var,
                info=msg.info,
            )

    def _on_sem_wait_global(self, msg: Message) -> None:
        state, in_memory = self._get_state(msg, acquire=True, sem_init=msg.info)
        if state is None:
            return
        if state.table_info > 0:
            state.table_info -= 1
            self.send_se(msg.src_se, Opcode.SEM_GRANT_GLOBAL, msg.var)
            self._maybe_free_sem(state, msg.var, in_memory)
        else:
            state.global_waitlist.append(("se", msg.src_se))

    def _on_sem_wait_overflow(self, msg: Message) -> None:
        state, in_memory = self._get_state(msg, acquire=True, sem_init=msg.info)
        if state is None:
            return
        state.overflow_ses.add(msg.src_se)
        if in_memory:
            self._mark_syncronvar_overflow(msg.var, msg.src_se)
        if state.table_info > 0:
            state.table_info -= 1
            self.send_se(msg.src_se, Opcode.SEM_GRANT_OVERFLOW, msg.var, core=msg.core)
            self._maybe_free_sem(state, msg.var, in_memory)
        else:
            state.global_waitlist.append(("ovf", msg.core, msg.src_se))

    def _on_sem_grant_global(self, msg: Message) -> None:
        entry = self.st.lookup(msg.var.addr)
        if entry is None or not entry.local_waitlist:
            raise ProtocolError(f"semaphore grant with no local waiter ({msg.var.name})")
        self.send_grant(entry.local_waitlist.popleft())
        self.st.release_if_idle(entry)

    def _on_sem_grant_overflow(self, msg: Message) -> None:
        self.send_grant(msg.core)

    def _on_sem_post_local(self, msg: Message) -> None:
        if not self.is_master(msg.var):
            self.send_se(self.master_of(msg.var), Opcode.SEM_POST_GLOBAL, msg.var)
            return
        state, in_memory = self._get_state(msg, acquire=False, sem_init=None)
        if state is None:
            return
        self._sem_post_master(state, msg.var, in_memory)

    def _on_sem_post_global(self, msg: Message) -> None:
        state, in_memory = self._get_state(msg, acquire=False, sem_init=None)
        if state is None:
            return
        self._sem_post_master(state, msg.var, in_memory)

    def _on_sem_post_overflow(self, msg: Message) -> None:
        state, in_memory = self._get_state(msg, acquire=False, sem_init=None)
        if state is None:
            return
        self._sem_post_master(state, msg.var, in_memory)

    def _sem_post_master(self, state, var, in_memory: bool) -> None:
        if state.local_waitlist:
            self.send_grant(state.local_waitlist.popleft())
        elif state.global_waitlist:
            item = state.global_waitlist.popleft()
            if item[0] == "se":
                self.send_se(item[1], Opcode.SEM_GRANT_GLOBAL, var)
            else:
                self.send_se(item[2], Opcode.SEM_GRANT_OVERFLOW, var, core=item[1])
        else:
            state.table_info += 1
        self._maybe_free_sem(state, var, in_memory)

    def _maybe_free_sem(self, state, var, in_memory: bool) -> None:
        """A semaphore's state is releasable once it is back at its initial
        value with nobody waiting (the count would otherwise be lost)."""
        initial = self.mech.sem_initial.get(var.addr)
        if (
            initial is not None
            and state.table_info == initial
            and not state.local_waitlist
            and not state.global_waitlist
        ):
            state.table_info = 0
            self._maybe_free_state(state, var, in_memory)
        elif in_memory:
            pass  # stays resident in memory until it drains

    # ==================================================================
    # Condition variables
    # ==================================================================
    def _on_cond_wait_local(self, msg: Message) -> None:
        lock_var = msg.info  # the associated lock (Fig. 5 MessageInfo)
        state, in_memory = self._get_state(msg, acquire=True)
        if state is not None:
            state.local_waitlist.append((msg.core, lock_var))
            if not self.is_master(msg.var):
                self.send_se(self.master_of(msg.var), Opcode.COND_WAIT_GLOBAL, msg.var)
        # Whether buffered here or redirected to the Master SE, the caller's
        # lock must be released now (pthread_cond_wait semantics); the
        # enqueue above happens in the same SE service slot, so no signal
        # can slip between enqueue and release.
        self._internal_request(
            Message(Opcode.LOCK_RELEASE_LOCAL, lock_var, core=msg.core)
        )

    def _on_cond_wait_global(self, msg: Message) -> None:
        state, in_memory = self._get_state(msg, acquire=True)
        if state is None:
            return
        state.global_waitlist.append(("se", msg.src_se))

    def _on_cond_wait_overflow(self, msg: Message) -> None:
        state, in_memory = self._get_state(msg, acquire=True)
        if state is None:
            return
        state.overflow_ses.add(msg.src_se)
        if in_memory:
            self._mark_syncronvar_overflow(msg.var, msg.src_se)
        state.global_waitlist.append(("ovf", msg.core, msg.src_se, msg.info))

    def _on_cond_signal_local(self, msg: Message) -> None:
        if not self.is_master(msg.var):
            self.send_se(self.master_of(msg.var), Opcode.COND_SIGNAL_GLOBAL, msg.var)
            return
        self._cond_signal_master(msg, wake_all=False)

    def _on_cond_signal_global(self, msg: Message) -> None:
        self._cond_signal_master(msg, wake_all=False)

    def _on_cond_signal_overflow(self, msg: Message) -> None:
        self._cond_signal_master(msg, wake_all=False)

    def _on_cond_broadcast_local(self, msg: Message) -> None:
        if not self.is_master(msg.var):
            self.send_se(self.master_of(msg.var), Opcode.COND_BROAD_GLOBAL, msg.var)
            return
        self._cond_signal_master(msg, wake_all=True)

    def _on_cond_broadcast_global(self, msg: Message) -> None:
        self._cond_signal_master(msg, wake_all=True)

    def _on_cond_broadcast_overflow(self, msg: Message) -> None:
        self._cond_signal_master(msg, wake_all=True)

    def _cond_signal_master(self, msg: Message, wake_all: bool) -> None:
        entry = self.st.lookup(msg.var.addr)
        sv = self.store.lookup(msg.var.addr)
        if entry is None and sv is None:
            return  # no waiters: the signal is lost (POSIX semantics)
        if entry is not None:
            state, in_memory = entry, False
        else:
            state, in_memory = sv.state, True
            self._charge_syncronvar_access(msg.var)
        woken = True
        while woken:
            woken = self._cond_wake_one(state, msg.var)
            if not wake_all:
                break
        self._maybe_free_state(state, msg.var, in_memory)

    def _cond_wake_one(self, state, var) -> bool:
        """Wake one waiter: locals first, then remote SEs (priority as in
        the lock).  Returns False when nobody was waiting."""
        if state.local_waitlist:
            core, lock_var = state.local_waitlist.popleft()
            self._internal_request(
                Message(Opcode.LOCK_ACQUIRE_LOCAL, lock_var, core=core)
            )
            return True
        if state.global_waitlist:
            item = state.global_waitlist.popleft()
            if item[0] == "se":
                self.send_se(item[1], Opcode.COND_GRANT_GLOBAL, var)
            else:
                self.send_se(item[2], Opcode.COND_GRANT_OVERFLOW, var,
                             core=item[1], info=item[3])
            return True
        return False

    def _on_cond_grant_global(self, msg: Message) -> None:
        entry = self.st.lookup(msg.var.addr)
        if entry is None or not entry.local_waitlist:
            raise ProtocolError(f"condvar grant with no local waiter ({msg.var.name})")
        core, lock_var = entry.local_waitlist.popleft()
        self.st.release_if_idle(entry)
        self._internal_request(
            Message(Opcode.LOCK_ACQUIRE_LOCAL, lock_var, core=core)
        )

    def _on_cond_grant_overflow(self, msg: Message) -> None:
        # Re-acquire the associated lock on behalf of the woken core.
        self._internal_request(
            Message(Opcode.LOCK_ACQUIRE_LOCAL, msg.info, core=msg.core)
        )

    # ==================================================================
    # Reader-writer locks (generality extension; cf. LCU in Sec. 4.5)
    # ==================================================================
    # Master-coordinated one-level scheme, like the across-units barrier
    # with a partial participant set (Sec. 4.1.2): local SEs statelessly
    # forward requests to the Master SE, which queues and grants.  State
    # reuses the ST entry: ``table_info`` counts active readers,
    # ``local_owner`` holds the active writer, ``global_waitlist`` is the
    # fair FIFO of ("r"/"w", core) waiters — a writer in line blocks later
    # readers, so writers cannot starve.

    def _rw_forward(self, msg: Message, global_opcode: Opcode) -> None:
        self.send_se(
            self.master_of(msg.var), global_opcode, msg.var,
            core=msg.core, info=msg.info,
        )

    def _on_rw_read_acquire_local(self, msg: Message) -> None:
        if not self.is_master(msg.var):
            self._rw_forward(msg, Opcode.RW_READ_ACQUIRE_GLOBAL)
            return
        self._rw_acquire(msg, write=False)

    def _on_rw_read_acquire_global(self, msg: Message) -> None:
        self._rw_acquire(msg, write=False)

    def _on_rw_write_acquire_local(self, msg: Message) -> None:
        if not self.is_master(msg.var):
            self._rw_forward(msg, Opcode.RW_WRITE_ACQUIRE_GLOBAL)
            return
        self._rw_acquire(msg, write=True)

    def _on_rw_write_acquire_global(self, msg: Message) -> None:
        self._rw_acquire(msg, write=True)

    def _rw_acquire(self, msg: Message, write: bool) -> None:
        state, in_memory = self._get_state(msg, acquire=True)
        if state is None:
            return
        queue = state.global_waitlist
        if write:
            if state.local_owner is None and state.table_info == 0 and not queue:
                state.local_owner = msg.core
                self.send_grant(msg.core)
            else:
                queue.append(("w", msg.core))
        else:
            writer_waiting = any(item[0] == "w" for item in queue)
            if state.local_owner is None and not writer_waiting:
                state.table_info += 1
                self.send_grant(msg.core)
            else:
                queue.append(("r", msg.core))

    def _on_rw_read_release_local(self, msg: Message) -> None:
        if not self.is_master(msg.var):
            self._rw_forward(msg, Opcode.RW_READ_RELEASE_GLOBAL)
            return
        self._rw_read_release(msg)

    def _on_rw_read_release_global(self, msg: Message) -> None:
        self._rw_read_release(msg)

    def _on_rw_write_release_local(self, msg: Message) -> None:
        if not self.is_master(msg.var):
            self._rw_forward(msg, Opcode.RW_WRITE_RELEASE_GLOBAL)
            return
        self._rw_write_release(msg)

    def _on_rw_write_release_global(self, msg: Message) -> None:
        self._rw_write_release(msg)

    def _rw_read_release(self, msg: Message) -> None:
        state, in_memory = self._get_state(msg, acquire=False)
        if state is None:
            return
        if state.table_info <= 0:
            raise ProtocolError(
                f"read release of {msg.var.name} with no active readers"
            )
        state.table_info -= 1
        self._rw_wake(state, msg.var, in_memory)

    def _rw_write_release(self, msg: Message) -> None:
        state, in_memory = self._get_state(msg, acquire=False)
        if state is None:
            return
        if state.local_owner != msg.core:
            raise ProtocolError(
                f"write release of {msg.var.name} by core {msg.core}, "
                f"owner is {state.local_owner}"
            )
        state.local_owner = None
        self._rw_wake(state, msg.var, in_memory)

    def _rw_wake(self, state, var, in_memory: bool) -> None:
        """Grant the FIFO head: one writer, or every leading reader."""
        queue = state.global_waitlist
        if state.local_owner is None and queue:
            if queue[0][0] == "w":
                if state.table_info == 0:
                    _kind, core = queue.popleft()
                    state.local_owner = core
                    self.send_grant(core)
            else:
                while queue and queue[0][0] == "r":
                    _kind, core = queue.popleft()
                    state.table_info += 1
                    self.send_grant(core)
        self._rw_maybe_free(state, var, in_memory)

    def _rw_maybe_free(self, state, var, in_memory: bool) -> None:
        """Readers are tracked in ``table_info``, which blocks the generic
        release check by design; free explicitly once truly idle."""
        if state.table_info == 0:
            self._maybe_free_state(state, var, in_memory)

    # ==================================================================
    # Indexing-counter maintenance
    # ==================================================================
    def _on_decrease_indexing_counter(self, msg: Message) -> None:
        self.end_overflow_episode(msg.var.addr)


_HANDLERS = {
    Opcode.LOCK_ACQUIRE_LOCAL: ProtocolMixin._on_lock_acquire_local,
    Opcode.LOCK_ACQUIRE_GLOBAL: ProtocolMixin._on_lock_acquire_global,
    Opcode.LOCK_ACQUIRE_OVERFLOW: ProtocolMixin._on_lock_acquire_overflow,
    Opcode.LOCK_GRANT_GLOBAL: ProtocolMixin._on_lock_grant_global,
    Opcode.LOCK_GRANT_OVERFLOW: ProtocolMixin._on_lock_grant_overflow,
    Opcode.LOCK_RELEASE_LOCAL: ProtocolMixin._on_lock_release_local,
    Opcode.LOCK_RELEASE_GLOBAL: ProtocolMixin._on_lock_release_global,
    Opcode.LOCK_RELEASE_OVERFLOW: ProtocolMixin._on_lock_release_overflow,
    Opcode.BARRIER_WAIT_LOCAL_WITHIN_UNIT: ProtocolMixin._on_barrier_wait_within_unit,
    Opcode.BARRIER_WAIT_LOCAL_ACROSS_UNITS: ProtocolMixin._on_barrier_wait_across_units,
    Opcode.BARRIER_WAIT_GLOBAL: ProtocolMixin._on_barrier_wait_global,
    Opcode.BARRIER_WAIT_OVERFLOW: ProtocolMixin._on_barrier_wait_overflow,
    Opcode.BARRIER_DEPART_GLOBAL: ProtocolMixin._on_barrier_depart_global,
    Opcode.BARRIER_DEPARTURE_OVERFLOW: ProtocolMixin._on_barrier_departure_overflow,
    Opcode.SEM_WAIT_LOCAL: ProtocolMixin._on_sem_wait_local,
    Opcode.SEM_WAIT_GLOBAL: ProtocolMixin._on_sem_wait_global,
    Opcode.SEM_WAIT_OVERFLOW: ProtocolMixin._on_sem_wait_overflow,
    Opcode.SEM_GRANT_GLOBAL: ProtocolMixin._on_sem_grant_global,
    Opcode.SEM_GRANT_OVERFLOW: ProtocolMixin._on_sem_grant_overflow,
    Opcode.SEM_POST_LOCAL: ProtocolMixin._on_sem_post_local,
    Opcode.SEM_POST_GLOBAL: ProtocolMixin._on_sem_post_global,
    Opcode.SEM_POST_OVERFLOW: ProtocolMixin._on_sem_post_overflow,
    Opcode.COND_WAIT_LOCAL: ProtocolMixin._on_cond_wait_local,
    Opcode.COND_WAIT_GLOBAL: ProtocolMixin._on_cond_wait_global,
    Opcode.COND_WAIT_OVERFLOW: ProtocolMixin._on_cond_wait_overflow,
    Opcode.COND_SIGNAL_LOCAL: ProtocolMixin._on_cond_signal_local,
    Opcode.COND_SIGNAL_GLOBAL: ProtocolMixin._on_cond_signal_global,
    Opcode.COND_SIGNAL_OVERFLOW: ProtocolMixin._on_cond_signal_overflow,
    Opcode.COND_BROAD_LOCAL: ProtocolMixin._on_cond_broadcast_local,
    Opcode.COND_BROAD_GLOBAL: ProtocolMixin._on_cond_broadcast_global,
    Opcode.COND_BROAD_OVERFLOW: ProtocolMixin._on_cond_broadcast_overflow,
    Opcode.COND_GRANT_GLOBAL: ProtocolMixin._on_cond_grant_global,
    Opcode.COND_GRANT_OVERFLOW: ProtocolMixin._on_cond_grant_overflow,
    Opcode.RW_READ_ACQUIRE_LOCAL: ProtocolMixin._on_rw_read_acquire_local,
    Opcode.RW_READ_ACQUIRE_GLOBAL: ProtocolMixin._on_rw_read_acquire_global,
    Opcode.RW_READ_RELEASE_LOCAL: ProtocolMixin._on_rw_read_release_local,
    Opcode.RW_READ_RELEASE_GLOBAL: ProtocolMixin._on_rw_read_release_global,
    Opcode.RW_WRITE_ACQUIRE_LOCAL: ProtocolMixin._on_rw_write_acquire_local,
    Opcode.RW_WRITE_ACQUIRE_GLOBAL: ProtocolMixin._on_rw_write_acquire_global,
    Opcode.RW_WRITE_RELEASE_LOCAL: ProtocolMixin._on_rw_write_release_local,
    Opcode.RW_WRITE_RELEASE_GLOBAL: ProtocolMixin._on_rw_write_release_global,
    Opcode.DECREASE_INDEXING_COUNTER: ProtocolMixin._on_decrease_indexing_counter,
}
