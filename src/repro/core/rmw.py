"""Atomic read-modify-write extension (paper Sec. 4.4.1).

The paper notes SynCron extends naturally to simple atomic rmw operations by
adding a lightweight ALU to the SE, with the Master SE executing the
operation for a variable based on its address.  This module implements that
future-work extension: a small ALU opcode set and an :class:`RmwExtension`
that routes rmw requests to the Master SE, charges the SE service time plus
one ALU cycle, and maintains the memory values.

It deliberately bypasses the ST (rmw needs no waiting list — each request
completes immediately at the Master SE), which is why the paper calls it
straightforward.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.core.messages import REQUEST_BYTES, RESPONSE_BYTES

#: opcode -> pure function (current_value, operand) -> new_value.
RMW_OPS: Dict[str, Callable[[int, int], int]] = {
    "fetch_add": lambda cur, operand: cur + operand,
    "fetch_and": lambda cur, operand: cur & operand,
    "fetch_or": lambda cur, operand: cur | operand,
    "fetch_xor": lambda cur, operand: cur ^ operand,
    "swap": lambda cur, operand: operand,
    "fetch_max": lambda cur, operand: max(cur, operand),
    "fetch_min": lambda cur, operand: min(cur, operand),
}

#: one ALU cycle at the SE's 1 GHz clock, in core cycles.
ALU_CORE_CYCLES = 3


class RmwExtension:
    """SE-side atomic rmw operations for a SynCron-style mechanism."""

    def __init__(self, mechanism):
        self.mech = mechanism
        self.sim = mechanism.sim
        self.stats = mechanism.stats
        self._values: Dict[int, int] = {}
        self.operations_executed = 0

    # ------------------------------------------------------------------
    def value(self, addr: int) -> int:
        return self._values.get(addr, 0)

    def rmw(self, core, addr: int, op: str, operand: int,
            callback: Callable[[int], None]) -> None:
        """Execute ``op`` atomically at the Master SE of ``addr``.

        ``callback`` receives the *old* value (fetch semantics) when the
        response message reaches the core.
        """
        fn = RMW_OPS.get(op)
        if fn is None:
            raise ValueError(f"unknown rmw op {op!r}; choose from {sorted(RMW_OPS)}")
        master_unit = self.mech.system.addrmap.unit_of(addr)
        now = self.sim.now
        inter = self.mech.interconnect

        # Request: core -> Master SE (local or crossing the link).
        latency = inter.transfer_latency(core.unit_id, master_unit, now, REQUEST_BYTES)
        if core.unit_id == master_unit:
            self.stats.sync_messages_local += 1
        else:
            self.stats.sync_messages_global += 1

        # Atomicity: serialize through the Master SE's service queue.
        se = self.mech.se(master_unit)
        arrival = now + latency
        start = max(arrival, se._last_arrival.get(("rmw", core.core_id), 0) + 1)
        tenant = getattr(core, "tstats", None)

        def execute() -> None:
            # Runs as its own event: restore the requester's tenant context
            # so the response transfer is attributed correctly.
            self.stats.active = tenant
            old = self._values.get(addr, 0)
            self._values[addr] = fn(old, operand)
            self.operations_executed += 1
            done = self.sim.now + se.service_cycles + ALU_CORE_CYCLES
            back = inter.transfer_latency(
                master_unit, core.unit_id, done, RESPONSE_BYTES
            )
            if core.unit_id == master_unit:
                self.stats.sync_messages_local += 1
            else:
                self.stats.sync_messages_global += 1
            self.sim.schedule_at(done + back, callback, old)

        self.sim.schedule_at(start, execute)
