"""Indexing counters (paper Sec. 4.2.3).

When the ST is full, variables are serviced via main memory.  Each SE keeps a
small array of counters (256 in the evaluated configuration) indexed by the
least-significant bits of the variable's (line) address:

- an acquire-type message for a variable with no ST entry and a full ST
  increments the variable's counter;
- a release-type message for a memory-serviced variable decrements it;
- a variable is considered "currently serviced via memory" while its counter
  is greater than zero.

Different variables may alias to the same counter; aliasing is safe for
correctness (a variable is conservatively treated as memory-serviced) but can
cost performance — exactly the behaviour the paper describes.
"""

from __future__ import annotations

from typing import List


class IndexingCounters:
    """The per-SE counter array."""

    def __init__(self, num_counters: int = 256, line_bytes: int = 64):
        if num_counters < 1:
            raise ValueError("need at least one counter")
        self.num_counters = num_counters
        self.line_bytes = line_bytes
        self._counters: List[int] = [0] * num_counters
        self.aliased_hits = 0  # diagnostics: nonzero counter lookups

    # ------------------------------------------------------------------
    def index_of(self, addr: int) -> int:
        """8 LSBs of the line address in the evaluated config (Table 5)."""
        return (addr // self.line_bytes) % self.num_counters

    def increment(self, addr: int) -> int:
        idx = self.index_of(addr)
        self._counters[idx] += 1
        return self._counters[idx]

    def decrement(self, addr: int) -> int:
        idx = self.index_of(addr)
        if self._counters[idx] == 0:
            raise ValueError(
                f"indexing counter {idx} underflow (addr {addr:#x}); "
                "release without matching acquire"
            )
        self._counters[idx] -= 1
        return self._counters[idx]

    def is_memory_serviced(self, addr: int) -> bool:
        """True while the variable (or an alias) is serviced via memory."""
        nonzero = self._counters[self.index_of(addr)] > 0
        if nonzero:
            self.aliased_hits += 1
        return nonzero

    def value(self, addr: int) -> int:
        return self._counters[self.index_of(addr)]

    @property
    def total_active(self) -> int:
        return sum(self._counters)
