"""SE area/power model and qualitative comparison (paper Tables 4 and 8).

The paper sizes the SE with Aladdin (SPU, 40 nm, 1 GHz) and CACTI (ST and
indexing counters) and compares against an ARM Cortex-A7.  Those are
constants-plus-arithmetic, which we reproduce here, with linear scaling in
the SRAM structure sizes so ST-size ablations can report area too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

# Table 8 reference points (40 nm).
SPU_AREA_MM2 = 0.0141
ST_AREA_MM2_64_ENTRIES = 0.0112
INDEXING_AREA_MM2_256 = 0.0208
SE_POWER_MW = 2.7

ARM_CORTEX_A7_AREA_MM2 = 0.45  # 28 nm, incl. 32 KB L1
ARM_CORTEX_A7_POWER_MW = 100.0

#: Table 5: ST is 1192 B at 64 entries; counters are 2304 B at 256 entries.
ST_BYTES_PER_ENTRY = 1192 / 64
INDEXING_BYTES_PER_COUNTER = 2304 / 256


@dataclass(frozen=True)
class AreaReport:
    spu_mm2: float
    st_mm2: float
    indexing_mm2: float
    power_mw: float

    @property
    def total_mm2(self) -> float:
        return self.spu_mm2 + self.st_mm2 + self.indexing_mm2

    @property
    def fraction_of_cortex_a7_area(self) -> float:
        return self.total_mm2 / ARM_CORTEX_A7_AREA_MM2

    @property
    def fraction_of_cortex_a7_power(self) -> float:
        return self.power_mw / ARM_CORTEX_A7_POWER_MW


def se_area(st_entries: int = 64, indexing_counters: int = 256) -> AreaReport:
    """Area/power of one SE, scaling the SRAM structures linearly.

    Linear scaling is a first-order CACTI approximation — adequate because
    both structures are far below the sizes where peripheral overheads
    dominate.
    """
    if st_entries < 1 or indexing_counters < 1:
        raise ValueError("structure sizes must be positive")
    st = ST_AREA_MM2_64_ENTRIES * (st_entries / 64)
    idx = INDEXING_AREA_MM2_256 * (indexing_counters / 256)
    scale = (SPU_AREA_MM2 + st + idx) / (
        SPU_AREA_MM2 + ST_AREA_MM2_64_ENTRIES + INDEXING_AREA_MM2_256
    )
    return AreaReport(
        spu_mm2=SPU_AREA_MM2,
        st_mm2=st,
        indexing_mm2=idx,
        power_mw=SE_POWER_MW * scale,
    )


def table8_rows(st_entries: int = 64, indexing_counters: int = 256) -> List[Dict[str, str]]:
    """Render Table 8 (SE vs ARM Cortex-A7)."""
    report = se_area(st_entries, indexing_counters)
    return [
        {
            "component": "SE (Synchronization Engine)",
            "technology": "40nm",
            "area": (
                f"SPU: {report.spu_mm2:.4f}mm2, ST: {report.st_mm2:.4f}mm2, "
                f"Indexing Counters: {report.indexing_mm2:.4f}mm2, "
                f"Total: {report.total_mm2:.4f}mm2"
            ),
            "power": f"{report.power_mw:.1f} mW",
        },
        {
            "component": "ARM Cortex A7",
            "technology": "28nm",
            "area": f"32KB L1 Cache, Total: {ARM_CORTEX_A7_AREA_MM2}mm2",
            "power": f"{ARM_CORTEX_A7_POWER_MW:.0f} mW",
        },
    ]


def table4_comparison() -> List[Dict[str, str]]:
    """The qualitative comparison of Table 4 (SynCron vs SSB/LCU/MiSAR)."""
    return [
        {"scheme": "SSB", "primitives": "1", "isa_extensions": "2",
         "spin_wait": "yes", "direct_notification": "no",
         "target_system": "uniform", "overflow": "partially integrated"},
        {"scheme": "LCU", "primitives": "1", "isa_extensions": "2",
         "spin_wait": "yes", "direct_notification": "yes",
         "target_system": "uniform", "overflow": "partially integrated"},
        {"scheme": "MiSAR", "primitives": "3", "isa_extensions": "7",
         "spin_wait": "no", "direct_notification": "yes",
         "target_system": "uniform", "overflow": "handled by programmer"},
        {"scheme": "SynCron", "primitives": "4", "isa_extensions": "2",
         "spin_wait": "no", "direct_notification": "yes",
         "target_system": "non-uniform", "overflow": "fully integrated"},
    ]
