"""The in-memory ``syncronVar`` structure (paper Sec. 4.3.1 / Fig. 9).

When STs overflow, the Master SE coordinates a variable through a generic
structure allocated in its local main memory::

    struct syncronVar_t {
        uint16_t Waitlist[NUM_SES];   // one bit per core of each unit
        uint64_t VarInfo;             // primitive-specific payload
        uint8_t  OverflowInfo;        // which SEs have overflowed (bitmask)
    }

Only the Master SE reads or writes the structure (the correctness rule of
Sec. 4.3.2); overflowed local SEs reach it only through overflow messages.

Implementation note: the *logical* content of a ``syncronVar`` (waiting
lists + primitive payload) is identical to an ST entry's, so we store the
protocol state as a :class:`~repro.core.sync_table.STEntry` inside the
wrapper and let the same protocol handlers operate on both.  What the
wrapper adds is (i) the ``OverflowInfo`` bitmask tracking which SEs have
overflowed for this variable, and (ii) the structure's size in bytes, which
sizes the DRAM traffic the Master SE pays on every overflow access.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.sync_table import STEntry


@dataclass
class SyncronVar:
    """One ``syncronVar`` structure resident in the Master SE's memory."""

    addr: int
    num_ses: int
    state: STEntry = None
    #: bitmask of SEs currently overflowed for this variable (OverflowInfo).
    overflow_info: int = 0

    def __post_init__(self):
        if self.state is None:
            self.state = STEntry(addr=self.addr, var=None)

    # ------------------------------------------------------------------
    @property
    def size_bytes(self) -> int:
        """2 bytes per SE waitlist + 8 (VarInfo) + 1 (OverflowInfo)."""
        return 2 * self.num_ses + 8 + 1

    def set_overflowed(self, se_id: int) -> None:
        self.overflow_info |= 1 << se_id

    def clear_overflowed(self, se_id: int) -> None:
        self.overflow_info &= ~(1 << se_id)

    def is_overflowed(self, se_id: int) -> bool:
        return bool(self.overflow_info & (1 << se_id))

    def overflowed_ses(self) -> List[int]:
        return [s for s in range(self.num_ses) if self.overflow_info & (1 << s)]


class SyncronVarStore:
    """The Master-SE-side view of all overflow structures in its memory.

    The driver allocates ``syncronVar`` structures at variable creation
    (Table 2: ``create_syncvar``); we materialize them lazily on first
    overflow, which is equivalent for timing because allocation is not on
    any measured path.
    """

    def __init__(self, num_ses: int):
        self.num_ses = num_ses
        self._vars: Dict[int, SyncronVar] = {}

    def get_or_create(self, addr: int, var=None) -> SyncronVar:
        sv = self._vars.get(addr)
        if sv is None:
            sv = SyncronVar(addr=addr, num_ses=self.num_ses)
            sv.state.var = var
            self._vars[addr] = sv
        elif var is not None and sv.state.var is None:
            sv.state.var = var
        return sv

    def lookup(self, addr: int) -> Optional[SyncronVar]:
        return self._vars.get(addr)

    def drop(self, addr: int) -> None:
        self._vars.pop(addr, None)

    def __len__(self) -> int:
        return len(self._vars)

    def __contains__(self, addr: int) -> bool:
        return addr in self._vars
