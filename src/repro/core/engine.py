"""The Synchronization Engine device and the SynCron mechanism.

:class:`SyncEngine` is the hardware unit of paper Sec. 4.2 / Fig. 6: an SPU
(here: a single-server queue with the paper's 12 SE-cycle service time), a
64-entry Synchronization Table, 256 indexing counters, and — when acting as
a variable's Master SE — the ``syncronVar`` store in its local memory for
overflow management.  Message semantics live in
:class:`~repro.core.protocol.ProtocolMixin`.

:class:`SynCronMechanism` is the system-facing object: it injects core
requests into the local SE (hierarchical communication: cores *only* talk to
their local SE), wires SEs to each other over the interconnect, and wakes
cores when grants arrive.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Optional

from repro.core.indexing import IndexingCounters
from repro.core.messages import (
    LOCAL_OPCODES,
    Message,
    Opcode,
    OVERFLOW_OPCODES,
    REQUEST_BYTES,
    RESPONSE_BYTES,
)
from repro.core.protocol import ProtocolError, ProtocolMixin
from repro.core.sync_table import SynchronizationTable
from repro.core.syncronvar import SyncronVarStore
from repro.sim.clock import core_cycles_from_se_cycles
from repro.sim.program import (
    BARRIER_WAIT_ACROSS_UNITS,
    BARRIER_WAIT_WITHIN_UNIT,
    COND_BROADCAST,
    COND_SIGNAL,
    COND_WAIT,
    LOCK_ACQUIRE,
    LOCK_RELEASE,
    RW_READ_ACQUIRE,
    RW_READ_RELEASE,
    RW_WRITE_ACQUIRE,
    RW_WRITE_RELEASE,
    SEM_POST,
    SEM_WAIT,
)
from repro.sim.syncif import MechanismBase, SyncVar

#: SyncOp name -> the local opcode a core's message carries.
_REQUEST_OPCODES = {
    LOCK_ACQUIRE: Opcode.LOCK_ACQUIRE_LOCAL,
    LOCK_RELEASE: Opcode.LOCK_RELEASE_LOCAL,
    BARRIER_WAIT_WITHIN_UNIT: Opcode.BARRIER_WAIT_LOCAL_WITHIN_UNIT,
    BARRIER_WAIT_ACROSS_UNITS: Opcode.BARRIER_WAIT_LOCAL_ACROSS_UNITS,
    SEM_WAIT: Opcode.SEM_WAIT_LOCAL,
    SEM_POST: Opcode.SEM_POST_LOCAL,
    COND_WAIT: Opcode.COND_WAIT_LOCAL,
    COND_SIGNAL: Opcode.COND_SIGNAL_LOCAL,
    COND_BROADCAST: Opcode.COND_BROAD_LOCAL,
    RW_READ_ACQUIRE: Opcode.RW_READ_ACQUIRE_LOCAL,
    RW_READ_RELEASE: Opcode.RW_READ_RELEASE_LOCAL,
    RW_WRITE_ACQUIRE: Opcode.RW_WRITE_ACQUIRE_LOCAL,
    RW_WRITE_RELEASE: Opcode.RW_WRITE_RELEASE_LOCAL,
}

#: local opcode -> overflow opcode used when an overflowed local SE
#: re-directs a core's message to the Master SE (Sec. 4.3.2).
_REDIRECT_OPCODES = {
    Opcode.LOCK_ACQUIRE_LOCAL: Opcode.LOCK_ACQUIRE_OVERFLOW,
    Opcode.LOCK_RELEASE_LOCAL: Opcode.LOCK_RELEASE_OVERFLOW,
    Opcode.BARRIER_WAIT_LOCAL_WITHIN_UNIT: Opcode.BARRIER_WAIT_OVERFLOW,
    Opcode.BARRIER_WAIT_LOCAL_ACROSS_UNITS: Opcode.BARRIER_WAIT_OVERFLOW,
    Opcode.SEM_WAIT_LOCAL: Opcode.SEM_WAIT_OVERFLOW,
    Opcode.SEM_POST_LOCAL: Opcode.SEM_POST_OVERFLOW,
    Opcode.COND_WAIT_LOCAL: Opcode.COND_WAIT_OVERFLOW,
    Opcode.COND_SIGNAL_LOCAL: Opcode.COND_SIGNAL_OVERFLOW,
    Opcode.COND_BROAD_LOCAL: Opcode.COND_BROAD_OVERFLOW,
}

class SyncEngine(ProtocolMixin):
    """One SE, integrated in the compute die of one NDP unit.

    (No ``__slots__`` here on purpose: there is one SE per unit — a handful
    of instances — and tests monkeypatch engine methods per instance.)
    """

    def __init__(self, mech: "SynCronMechanism", se_id: int):
        self.mech = mech
        self.sim = mech.sim
        self.config = mech.config
        self.stats = mech.stats
        self.se_id = se_id
        self.unit = se_id  # one SE per unit; ids coincide
        #: interned FIFO-clamp key (one tuple per SE, not one per message).
        self.sender_token = ("se", se_id)

        self.st = SynchronizationTable(self.config.st_entries)
        self.counters = IndexingCounters(
            self.config.indexing_counters, self.config.cache_line_bytes
        )
        self.store = SyncronVarStore(num_ses=self.config.num_units)
        self.service_cycles = core_cycles_from_se_cycles(
            self.config.se_service_se_cycles
        )

        self._queue = deque()
        self._busy = False
        self._extra = 0  # memory cycles charged while handling one message
        #: variables this (non-master) SE currently redirects to the master.
        self._redirected = set()
        #: per-sender FIFO clamp so analytic network latencies never reorder
        #: messages from the same source.
        self._last_arrival: Dict[object, int] = {}
        self.messages_handled = 0

    # ------------------------------------------------------------------
    # Topology helpers
    # ------------------------------------------------------------------
    def is_master(self, var: SyncVar) -> bool:
        return var.unit == self.se_id

    def master_of(self, var: SyncVar) -> int:
        return var.unit

    # ------------------------------------------------------------------
    # Message intake: a single-server queue (the SPU's buffer, Fig. 6)
    # ------------------------------------------------------------------
    def receive(self, msg: Message, arrival: int, sender: object = None) -> None:
        if sender is not None:
            clamped = max(arrival, self._last_arrival.get(sender, 0) + 1)
            self._last_arrival[sender] = clamped
            arrival = clamped
        self.sim.schedule_at(arrival, self._enqueue, msg)

    def _enqueue(self, msg: Message) -> None:
        self._queue.append(msg)
        if not self._busy:
            self._busy = True
            self._start_next()

    def _start_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        msg = self._queue.popleft()
        self.sim.schedule(self.service_cycles, self._finish, msg)

    def _finish(self, msg: Message) -> None:
        self._extra = 0
        self.messages_handled += 1
        stats = self.stats
        stats.record_st_occupancy(self.se_id, self.st.occupied)
        # Everything this dispatch does (messages, syncronVar accesses,
        # server-core loads/stores) is on behalf of the variable's tenant.
        stats.active = msg.var.owner if msg.var is not None else None
        self.dispatch(msg)
        if self._extra > 0:
            self.sim.schedule(self._extra, self._start_next)
        else:
            self._start_next()

    # ------------------------------------------------------------------
    # State residency: Fig. 8 control flow
    # ------------------------------------------------------------------
    def _get_state(self, msg: Message, acquire: bool, sem_init: Optional[int] = None):
        """Locate (or create) protocol state for ``msg``'s variable.

        Returns ``(state, in_memory)``; returns ``(None, False)`` when this
        (non-master, overflowed) SE redirected the message to the Master SE.
        """
        addr = msg.var.addr
        entry = self.st.lookup(addr)
        if entry is not None:
            return entry, False

        master = self.is_master(msg.var)
        resident = master and addr in self.store
        overflow = (
            resident
            or self.st.is_full
            or addr in self._redirected
            or self.counters.is_memory_serviced(addr)
        )
        if not overflow:
            entry = self.st.allocate(msg.var)
            self.stats.count_st_allocation()
            if sem_init is not None:
                entry.table_info = sem_init
            return entry, False

        if not master:
            self._redirect_overflow(msg)
            return None, False

        # Master SE: service via main memory (syncronVar, Sec. 4.3.1).
        fresh = not resident
        sv = self.store.get_or_create(addr, msg.var)
        if fresh and sem_init is not None:
            sv.state.table_info = sem_init
        self._charge_syncronvar_access(msg.var)
        if msg.opcode in LOCAL_OPCODES:
            # The master's own local requests serviced via memory maintain
            # the indexing counters per message (Sec. 4.2.3).
            self.stats.st_overflow_requests += 1
            if acquire:
                self.counters.increment(addr)
                sv.state.counter_debt += 1
            elif sv.state.counter_debt > 0:
                self.counters.decrement(addr)
                sv.state.counter_debt -= 1
        return sv.state, True

    def _redirect_overflow(self, msg: Message, opcode: Optional[Opcode] = None) -> None:
        """Non-master overflow: re-direct the core's message to the Master SE
        with an overflow opcode; mark the episode in the indexing counters."""
        if opcode is None:
            opcode = _REDIRECT_OPCODES[msg.opcode]
        self.stats.st_overflow_requests += 1
        if msg.opcode not in (Opcode.LOCK_RELEASE_LOCAL,):
            self.begin_overflow_episode(msg.var.addr)
        self.send_se(
            self.master_of(msg.var), opcode, msg.var, core=msg.core, info=msg.info
        )

    def begin_overflow_episode(self, addr: int) -> None:
        if addr not in self._redirected:
            self._redirected.add(addr)
            self.counters.increment(addr)

    def end_overflow_episode(self, addr: int) -> None:
        if addr in self._redirected:
            self._redirected.discard(addr)
            self.counters.decrement(addr)

    def _charge_syncronvar_access(self, var: SyncVar) -> None:
        """Read-modify-write of the syncronVar in this unit's local memory.

        The read is on the SPU's critical path; the write-back goes to an
        open row through the write buffer, off the response path (it is
        still charged to the DRAM bank and to traffic/energy).

        With ``overflow_target="shared_cache"`` (the Sec. 4.6 conventional-
        NUMA adaptation) the structure lives in a shared cache instead:
        the SPU pays the cache's hit latency and no DRAM bank is touched.
        """
        now = self.sim.now + self._extra
        if self.config.overflow_target == "shared_cache":
            self.stats.sync_memory_accesses += 2
            self.stats.extra["llc_sync_accesses"] += 2
            self.stats.cache_hits += 2
            self._extra += self.config.shared_cache_hit_cycles
            return
        latency = self.mech.memsys.device_access(
            self.unit, var.addr, is_write=False, now=now, for_sync=True
        )
        self.mech.memsys.device_access(
            self.unit, var.addr, is_write=True, now=now + latency, for_sync=True
        )
        self._extra += latency

    def _mark_syncronvar_overflow(self, var: SyncVar, se_id: int) -> None:
        sv = self.store.lookup(var.addr)
        if sv is not None:
            sv.set_overflowed(se_id)

    # ------------------------------------------------------------------
    # State release
    # ------------------------------------------------------------------
    def _maybe_free_state(self, state, var, in_memory: bool) -> None:
        if not state.is_idle():
            return
        if state.table_info:
            return  # a semaphore's live count must not be dropped
        for se_id in sorted(state.overflow_ses):
            self.send_se(se_id, Opcode.DECREASE_INDEXING_COUNTER, var)
        state.overflow_ses.clear()
        if in_memory:
            while state.counter_debt > 0:
                self.counters.decrement(var.addr)
                state.counter_debt -= 1
            self.store.drop(var.addr)
        else:
            if self.st.release_if_idle(state):
                self.stats.count_st_release()

    # ------------------------------------------------------------------
    # Outbound messages
    # ------------------------------------------------------------------
    def send_se(self, dst_se: int, opcode: Opcode, var: SyncVar,
                core: Optional[int] = None, info=0) -> None:
        if dst_se == self.se_id:
            raise ProtocolError(f"SE {self.se_id} sending {opcode.name} to itself")
        msg = Message(opcode, var, core=core, src_se=self.se_id, info=info)
        if opcode in OVERFLOW_OPCODES:
            self.stats.sync_messages_overflow += 1
        else:
            self.stats.sync_messages_global += 1
        depart = self.sim.now + self._extra
        latency = self.mech.interconnect.transfer_latency(
            self.unit, dst_se, depart, msg.bytes
        )
        self.mech.se(dst_se).receive(msg, depart + latency, sender=self.sender_token)

    def send_grant(self, core_id: int) -> None:
        """Direct notification of one waiting core (Table 4).

        Under SynCron proper the target is always in this SE's unit; the
        flat variant and the Central baseline also grant remote cores, which
        crosses the inter-unit link.
        """
        depart = self.sim.now + self._extra
        dst_unit = self.mech.core_unit(core_id)
        if dst_unit == self.unit:
            self.stats.sync_messages_local += 1
        else:
            self.stats.sync_messages_global += 1
        latency = self.mech.interconnect.transfer_latency(
            self.unit, dst_unit, depart, RESPONSE_BYTES
        )
        self.sim.schedule_at(depart + latency, self.mech.wake, core_id)

    def _internal_request(self, msg: Message) -> None:
        """The SE issues a request on behalf of a core (condition variables:
        releasing / re-acquiring the associated lock).  Routing is owned by
        the mechanism: hierarchical designs handle it at this SE, the flat
        variant must target the lock's Master SE."""
        self.mech.inject_internal(self, msg)


class SynCronMechanism(MechanismBase):
    """SynCron: hierarchical hardware synchronization (the paper's design)."""

    name = "syncron"

    def __init__(self, system):
        super().__init__(system)
        self.memsys = system.memsys
        self.ses = [SyncEngine(self, se_id) for se_id in range(self.config.num_units)]
        self.sem_initial: Dict[int, int] = {}
        self._pending: Dict[int, Callable[[], None]] = {}
        self._rmw_ext = None  # built on first use (Sec. 4.4.1 extension)

    # ------------------------------------------------------------------
    def se(self, se_id: int) -> SyncEngine:
        return self.ses[se_id]

    @property
    def total_clients(self) -> int:
        return self.config.total_clients

    def clients_in_unit(self, unit: int) -> int:
        return self.config.client_contexts_per_unit

    # ------------------------------------------------------------------
    def _prepare(self, core, op: str, var: SyncVar, info) -> Message:
        self._admit(core, op, var)
        if op == SEM_WAIT:
            self.sem_initial.setdefault(var.addr, info)
        return Message(_REQUEST_OPCODES[op], var, core=core.core_id, info=info)

    def _inject(self, core, msg: Message) -> None:
        self.stats.sync_messages_local += 1
        latency = self.interconnect.local_latency(
            core.unit_id, self.sim.now, REQUEST_BYTES
        )
        self.ses[core.unit_id].receive(
            msg, self.sim.now + latency, sender=core.sender_token
        )

    def request(self, core, op, var, info, callback) -> None:
        if core.core_id in self._pending:
            raise ProtocolError(f"core {core.core_id} already has a pending request")
        msg = self._prepare(core, op, var, info)
        self._pending[core.core_id] = callback
        self._inject(core, msg)

    def request_async(self, core, op, var, info) -> int:
        msg = self._prepare(core, op, var, info)
        self._inject(core, msg)
        # req_async commits once the message is issued (Sec. 4.1).
        return self.config.async_issue_cycles

    def inject_internal(self, se: SyncEngine, msg: Message) -> None:
        """Route an SE-initiated request (hierarchical: stays at that SE)."""
        se.sim.schedule_at(se.sim.now + se._extra, se._enqueue, msg)

    def wake(self, core_id: int) -> None:
        callback = self._pending.pop(core_id, None)
        if callback is None:
            raise ProtocolError(f"grant for core {core_id} with no pending request")
        callback()

    # ------------------------------------------------------------------
    def destroy_var(self, var: SyncVar) -> None:
        """Table 2 ``destroy_syncvar``: drop any quiescent state."""
        for se in self.ses:
            entry = se.st.lookup(var.addr)
            if entry is not None:
                entry.table_info = 0
                se.st.release_if_idle(entry)
            se.store.drop(var.addr)
        self.sem_initial.pop(var.addr, None)

    def core_unit(self, core_id: int) -> int:
        return self.system.cores[core_id].unit_id

    # ------------------------------------------------------------------
    def rmw(self, core, addr, op, operand, callback) -> None:
        """Sec. 4.4.1: execute an atomic rmw at the Master SE's ALU."""
        if self._rmw_ext is None:
            from repro.core.rmw import RmwExtension

            self._rmw_ext = RmwExtension(self)
        self.stats.extra["rmw_ops"] += 1
        self._rmw_ext.rmw(core, addr, op, operand, callback)

    def rmw_value(self, addr: int) -> int:
        """Current memory value at an rmw-managed address (for tests and
        workload verification)."""
        return self._rmw_ext.value(addr) if self._rmw_ext else 0

    # Diagnostics -------------------------------------------------------
    def pending_cores(self):
        return sorted(self._pending)
