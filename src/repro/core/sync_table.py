"""The Synchronization Table (ST), paper Sec. 4.2.2 / Fig. 7.

Each SE has a small fully-associative table (64 entries in the evaluated
configuration).  An entry buffers one active synchronization variable:

- the variable's 64-bit address (our key),
- the *global waiting list*: one bit per SE of the system (used only when
  this SE is the variable's Master SE),
- the *local waiting list*: one bit per NDP core of this unit,
- a free/occupied state bit,
- a 64-bit ``TableInfo`` field whose meaning is primitive-specific
  (lock owner, barrier arrival count, semaphore resources, lock address of a
  condition variable).

The hardware's bit-queues do not encode arrival order; grants happen "in
sequence".  We keep FIFO deques (a deterministic refinement of the same
information — each id appears at most once, matching the 1-bit-per-core
budget) so simulations are reproducible.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, Optional


class STFullError(Exception):
    """Raised when allocation is attempted on a fully-occupied ST."""


@dataclass
class STEntry:
    """One occupied ST entry (Fig. 7)."""

    addr: int
    var: "object"
    #: FIFO of local core ids waiting on this variable (local waiting list).
    local_waitlist: Deque[int] = field(default_factory=deque)
    #: FIFO of SE ids waiting on this variable (global waiting list; only
    #: meaningful at the Master SE).
    global_waitlist: Deque[int] = field(default_factory=deque)
    #: primitive-specific payload (TableInfo, Fig. 7).
    table_info: int = 0

    # -- protocol scratch state (registers the SPU keeps per transaction) --
    #: lock: local core currently owning the lock, if granted locally.
    local_owner: Optional[int] = None
    #: lock: SE currently holding lock control at the Master (global id).
    owner_se: Optional[int] = None
    #: lock (non-master SE): whether this SE currently holds control.
    has_control: bool = False
    #: lock (non-master SE): a global acquire has been sent and not answered.
    pending_global: bool = False
    #: barrier: number of local arrivals so far.
    arrived: int = 0
    #: barrier: expected arrivals (from MessageInfo).
    expected: int = 0
    #: Sec. 4.4.2 fairness: consecutive local grants.
    local_grant_counter: int = 0
    #: Master-side: SE ids currently in overflow for this variable (mirrors
    #: the syncronVar OverflowInfo bits when the master still has an entry).
    overflow_ses: set = field(default_factory=set)
    #: Master-side: how many indexing-counter increments this memory-resident
    #: state has outstanding (balanced when the state is freed).
    counter_debt: int = 0

    def is_idle(self) -> bool:
        """True when nothing references the entry and it can be freed."""
        return (
            not self.local_waitlist
            and not self.global_waitlist
            and self.local_owner is None
            and self.owner_se is None
            and not self.has_control
            and not self.pending_global
            and self.arrived == 0
        )


class SynchronizationTable:
    """A fixed-capacity table of :class:`STEntry`, keyed by address."""

    def __init__(self, entries: int):
        if entries < 1:
            raise ValueError("ST needs at least one entry")
        self.capacity = entries
        self._entries: Dict[int, STEntry] = {}
        # lifetime statistics
        self.allocations = 0
        self.releases = 0
        self.peak_occupancy = 0

    # ------------------------------------------------------------------
    def lookup(self, addr: int) -> Optional[STEntry]:
        return self._entries.get(addr)

    def allocate(self, var) -> STEntry:
        """Reserve a new entry for ``var``; raises :class:`STFullError`."""
        if var.addr in self._entries:
            raise ValueError(f"variable {var.name} already has an ST entry")
        if self.is_full:
            raise STFullError(f"ST full ({self.capacity} entries)")
        entry = STEntry(addr=var.addr, var=var)
        self._entries[var.addr] = entry
        self.allocations += 1
        if self.occupied > self.peak_occupancy:
            self.peak_occupancy = self.occupied
        return entry

    def release(self, addr: int) -> None:
        entry = self._entries.pop(addr, None)
        if entry is None:
            raise KeyError(f"no ST entry for address {addr:#x}")
        self.releases += 1

    def release_if_idle(self, entry: STEntry) -> bool:
        """Free the entry when the protocol no longer needs it."""
        if entry.addr in self._entries and entry.is_idle():
            self.release(entry.addr)
            return True
        return False

    # ------------------------------------------------------------------
    @property
    def occupied(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    def __iter__(self) -> Iterator[STEntry]:
        return iter(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)
