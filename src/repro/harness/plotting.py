"""Terminal plotting: render experiment rows the way the paper draws them.

The reproduction's primary output is tables (:mod:`repro.harness.reporting`),
but the paper's figures are *plots* — grouped bars (Fig. 12/14/15), line
series over a swept parameter (Fig. 10/16/17), scaling curves (Fig. 11/13).
This module renders those shapes as Unicode charts so a terminal run can be
eyeballed against the paper directly::

    speedup vs Central (pr.wk)
    central  |########                        | 1.00
    hier     |##########                      | 1.19
    syncron  |############                    | 1.47
    ideal    |#############                   | 1.62

All functions take the same ``rows`` (list of dicts) the experiment
functions return and are pure string builders — no terminal control codes,
so output is pipe- and log-friendly.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

#: glyph used for filled bar segments.
BAR_CHAR = "#"
#: glyphs for multi-series line charts, assigned in series order.
SERIES_MARKS = "ox+*@%&$"


def _fmt(value: float, width: int = 0) -> str:
    text = f"{value:.3g}" if isinstance(value, float) else str(value)
    return text.rjust(width) if width else text


def _numeric(value) -> Optional[float]:
    """Finite float, or None for anything unplottable (strings, NaN, ...)."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    value = float(value)
    return value if math.isfinite(value) else None


def bar_chart(
    items: Dict[str, float],
    title: str = "",
    width: int = 40,
    max_value: Optional[float] = None,
) -> str:
    """Horizontal bar chart of label -> value.

    ``max_value`` pins the scale (useful when comparing charts side by
    side); by default the largest value fills the full width.
    """
    if not items:
        return f"{title}\n(no data)"
    numeric = {label: _numeric(value) for label, value in items.items()}
    plottable = [v for v in numeric.values() if v is not None]
    scale = max_value if max_value is not None else max(plottable, default=0.0)
    scale = max(scale, 1e-12)
    label_width = max(len(str(label)) for label in items)
    lines = [title] if title else []
    for label, value in items.items():
        clean = numeric[label]
        if clean is None:  # NaN/inf/non-numeric: empty bar, raw value shown
            bar = " " * width
        else:
            filled = int(round(width * min(max(clean, 0.0), scale) / scale))
            bar = (BAR_CHAR * filled).ljust(width)
        lines.append(f"{str(label).ljust(label_width)} |{bar}| {_fmt(value)}")
    return "\n".join(lines)


def grouped_bar_chart(
    rows: List[Dict],
    group_key: str,
    series: Sequence[str],
    title: str = "",
    width: int = 30,
) -> str:
    """One bar block per row (grouped by ``group_key``), one bar per series.

    The shape of the paper's Fig. 12/14/15: applications on the category
    axis, mechanisms as the bars within each group.
    """
    if not rows:
        return f"{title}\n(no data)"
    scale = max(
        (v for row in rows for s in series
         if (v := _numeric(row.get(s))) is not None),
        default=1.0,
    )
    blocks = [title] if title else []
    for row in rows:
        blocks.append(str(row.get(group_key, "")))
        blocks.append(
            bar_chart(
                {s: row[s] for s in series if _numeric(row.get(s)) is not None},
                width=width,
                max_value=scale,
            )
        )
    return "\n".join(blocks)


def line_chart(
    rows: List[Dict],
    x_key: str,
    series: Sequence[str],
    title: str = "",
    width: int = 56,
    height: int = 12,
    log_x: bool = False,
) -> str:
    """Multi-series scatter/line chart on a character grid.

    The shape of the paper's sweep figures (Fig. 10/11/16/17): the swept
    parameter on x, one mark per series.  ``log_x`` matches the paper's
    logarithmic interval axes.
    """
    points = []
    for row in rows:
        x = _numeric(row.get(x_key))
        if x is None:
            continue
        for s in series:
            y = _numeric(row.get(s))
            if y is not None:
                points.append((x, s, y))
    if not points:
        return f"{title}\n(no data)"
    # a log axis needs strictly positive x values; fall back to linear
    # rather than crash when a sweep includes 0 (e.g. interval=0).
    if log_x and any(x <= 0 for x, _s, _y in points):
        log_x = False

    def x_of(value: float) -> float:
        return math.log10(value) if log_x else value

    xs = [x_of(x) for x, _s, _y in points]
    ys = [y for _x, _s, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, series_name, y in points:
        col = int((x_of(x) - x_lo) / x_span * (width - 1))
        row_i = height - 1 - int((y - y_lo) / y_span * (height - 1))
        mark = SERIES_MARKS[list(series).index(series_name) % len(SERIES_MARKS)]
        cell = grid[row_i][col]
        grid[row_i][col] = "+" if cell not in (" ", mark) else mark

    lines = [title] if title else []
    y_label_width = max(len(_fmt(y_hi)), len(_fmt(y_lo)))
    for i, grid_row in enumerate(grid):
        if i == 0:
            label = _fmt(y_hi, y_label_width)
        elif i == height - 1:
            label = _fmt(y_lo, y_label_width)
        else:
            label = " " * y_label_width
        lines.append(f"{label} |{''.join(grid_row)}|")
    x_axis = f"{' ' * y_label_width} +{'-' * width}+"
    lines.append(x_axis)
    x_left, x_right = _fmt(min(x for x, _s, _y in points)), _fmt(
        max(x for x, _s, _y in points)
    )
    pad = width - len(x_left) - len(x_right)
    lines.append(f"{' ' * (y_label_width + 2)}{x_left}{' ' * max(pad, 1)}{x_right}")
    legend = "  ".join(
        f"{SERIES_MARKS[i % len(SERIES_MARKS)]}={name}"
        for i, name in enumerate(series)
    )
    lines.append(f"{' ' * (y_label_width + 2)}{legend}")
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """One-line trend glyph string (eight levels)."""
    glyphs = "▁▂▃▄▅▆▇█"
    values = [v for v in values if _numeric(v) is not None]
    if not values:
        return ""
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    return "".join(
        glyphs[min(int((v - lo) / span * (len(glyphs) - 1)), len(glyphs) - 1)]
        for v in values
    )


def stacked_bar_chart(
    rows: List[Dict],
    group_key: str,
    components: Sequence[str],
    title: str = "",
    width: int = 40,
) -> str:
    """Normalized stacked bars (the paper's Fig. 14/15 breakdown shape).

    Each row becomes one bar of fixed ``width`` split proportionally among
    ``components``; a legend maps component glyphs.
    """
    if not rows:
        return f"{title}\n(no data)"
    glyphs = "#=+:."
    label_width = max(len(str(row.get(group_key, ""))) for row in rows)
    lines = [title] if title else []
    legend = "  ".join(
        f"{glyphs[i % len(glyphs)]}={name}" for i, name in enumerate(components)
    )
    lines.append(legend)
    for row in rows:
        shares = {c: _numeric(row.get(c, 0.0)) or 0.0 for c in components}
        total = sum(shares.values())
        label = str(row.get(group_key, "")).ljust(label_width)
        if total <= 0:
            lines.append(f"{label} |{' ' * width}|")
            continue
        bar = ""
        for i, component in enumerate(components):
            bar += glyphs[i % len(glyphs)] * int(round(shares[component] / total * width))
        bar = bar[:width].ljust(width)
        lines.append(f"{label} |{bar}|")
    return "\n".join(lines)
