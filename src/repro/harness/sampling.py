"""Sampled simulation: run K of M work rounds, extrapolate, bound the error.

Pure-Python cycle simulation costs ~10^5-10^6 events/s, so an exact run of a
long steady-state workload spends most of its wall-clock repeating the same
behaviour.  This module trades exactness for time **explicitly**: it executes
two shortened runs of a workload whose length is controlled by one integer
knob (the *round count*), fits a per-round marginal rate to every additive
counter, extrapolates to the full length, and reports a conservative error
bound per counter alongside each estimate.

Only workloads whose length is a plain-data constructor knob are sampleable
(:data:`SAMPLE_KNOBS`): ``primitive`` (``rounds``) and ``structure``
(``ops_per_core``).  Everything else — graph apps, co-runs, measurements —
runs exactly even when sampling is enabled, and the record says so.

The model
---------
Steady-state counters are affine in the round count: ``c(K) = a + r*K``
where ``a`` is startup (barrier setup, cache warmup, first-touch DRAM rows)
and ``r`` the steady per-round rate.  Three shortened runs pin the model::

    K2 = ceil(fraction * M)    K1 = max(2, K2 // 2)    K0 = max(1, K1 // 2)
    r  = (c2 - c1) / (K2 - K1)          # late marginal rate
    estimate(M) = c2 + r * (M - K2)

If the counter really is affine the estimate is exact.  The reported bound
combines two signals of non-affinity, both zero for a pure steady-state
counter:

- *startup dispersion* — how far the marginal rate ``r`` disagrees with the
  average rate ``c2 / K2`` (a big constant ``a`` makes extrapolation from
  averages unreliable), and
- *rate drift* — how much the marginal rate itself moved between the early
  window (K0 -> K1) and the late window (K1 -> K2), extrapolated
  quadratically (a data structure filling up makes each round costlier,
  which a straight line underestimates)::

    drift  = (r - r_early) / ((K2 - K0) / 2)           # per round^2
    bound  = safety * ((M - K2) * |r - c2/K2|
                       + 0.5 * |drift| * (M - K2)^2)
             + rel_floor * |estimate| + abs_floor

Counters that are levels rather than accumulations (``*_pct`` occupancy and
overflow ratios) are not extrapolated: the estimate is the K2 value and the
bound is the worst observed drift across the three sampled runs, same
floors.

Sampled results are **never cached**: the content-addressed store must only
ever hold exact physics (:mod:`repro.harness.runner` forces the cache off
and the single-worker path on while a sampling fraction is active).
``repro sample-check`` runs sampled-vs-exact side by side and fails if any
counter's observed error escapes its reported bound.
"""

from __future__ import annotations

import contextlib
import math
import os
from typing import Any, Dict, Optional, Tuple

from repro.harness.specs import RunSpec
from repro.sim.energy import EnergyBreakdown
from repro.workloads.base import RunMetrics, run_workload

#: sampleable workload -> the constructor knob that scales its length.
SAMPLE_KNOBS: Dict[str, str] = {
    "primitive": "rounds",
    "structure": "ops_per_core",
}

#: default bound parameters (deliberately conservative: the promise is
#: coverage, not tightness — tuned so seed-driven op mixes like the
#: hashtable's stay covered, see `repro sample-check --structures`).
SAFETY = 3.0
REL_FLOOR = 0.02
ABS_FLOOR = 8.0


@contextlib.contextmanager
def _pinned_scale(scale: str):
    """Pin REPRO_SCALE so knob defaults resolve as the spec captured them."""
    previous = os.environ.get("REPRO_SCALE")
    os.environ["REPRO_SCALE"] = scale
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("REPRO_SCALE", None)
        else:
            os.environ["REPRO_SCALE"] = previous


def supports_sampling(spec: RunSpec) -> bool:
    """True when ``spec``'s workload has a round-count knob to shorten."""
    return not spec.is_measurement() and spec.workload in SAMPLE_KNOBS


def resolve_rounds(spec: RunSpec) -> int:
    """The full round count M the spec would run (explicit arg or default).

    Defaults are resolved under the spec's captured ``scale`` so the answer
    matches what the exact run would actually do.
    """
    knob = SAMPLE_KNOBS[spec.workload]
    args = spec.args_dict()
    if args.get(knob) is not None:
        return int(args[knob])
    with _pinned_scale(spec.scale):
        if spec.workload == "primitive":
            return 50  # PrimitiveMicrobench's constructor default
        from repro.workloads.base import scaled
        from repro.workloads.datastructures import ALL_STRUCTURES

        cls = ALL_STRUCTURES[args["structure"]]
        return scaled(cls.DEFAULT_OPS)


def sample_plan(total: int, fraction: float) -> Tuple[int, int, int]:
    """The three sampled round counts (K0, K1, K2) for length ``total``."""
    if not 0.0 < fraction < 1.0:
        raise ValueError(f"sampling fraction must be in (0, 1), got {fraction}")
    k2 = min(max(3, math.ceil(total * fraction)), total)
    k1 = max(2, k2 // 2)
    k0 = max(1, k1 // 2)
    if not k0 < k1 < k2 < total:
        raise ValueError(
            f"cannot sample {fraction} of {total} rounds: need "
            f"1 <= K0 < K1 < K2 < M (got K0={k0}, K1={k1}, K2={k2})"
        )
    return k0, k1, k2


def _reduced_spec(spec: RunSpec, rounds: int) -> RunSpec:
    args = spec.args_dict()
    args[SAMPLE_KNOBS[spec.workload]] = rounds
    return RunSpec.make(
        spec.workload, mechanism=spec.mechanism, args=args,
        preset=spec.preset, overrides=spec.overrides_dict(),
        seed=spec.seed, run_scale=spec.scale,
    )


def _is_level(name: str) -> bool:
    """Level counters (occupancy %, ratios) are carried, not extrapolated."""
    return name.endswith("_pct") or name.endswith("fairness")


def flatten_metrics(metrics: RunMetrics) -> Dict[str, float]:
    """Every numeric counter of a run under one flat namespace."""
    flat: Dict[str, float] = {
        "cycles": float(metrics.cycles),
        "operations": float(metrics.operations),
        "energy.cache_pj": metrics.energy.cache_pj,
        "energy.network_pj": metrics.energy.network_pj,
        "energy.memory_pj": metrics.energy.memory_pj,
        "bytes_inside_units": float(metrics.bytes_inside_units),
        "bytes_across_units": float(metrics.bytes_across_units),
        "sync_requests": float(metrics.sync_requests),
        "overflow_request_pct": metrics.overflow_request_pct,
        "st_occupancy_max_pct": metrics.st_occupancy_max_pct,
        "st_occupancy_avg_pct": metrics.st_occupancy_avg_pct,
    }
    for key, value in metrics.stats.items():
        if isinstance(value, (int, float)):
            flat[f"stats.{key}"] = float(value)
    return flat


def extrapolate(c0: float, c1: float, c2: float, k0: int, k1: int, k2: int,
                total: int, level: bool,
                safety: float = SAFETY) -> Tuple[float, float]:
    """One counter's (estimate, error bound) at ``total`` rounds."""
    if level:
        estimate = c2
        bound = safety * max(abs(c2 - c1), abs(c1 - c0))
    else:
        rate = (c2 - c1) / (k2 - k1)
        early_rate = (c1 - c0) / (k1 - k0)
        drift = (rate - early_rate) / ((k2 - k0) / 2.0)
        estimate = c2 + rate * (total - k2)
        tail = total - k2
        bound = safety * (tail * abs(rate - c2 / k2)
                          + 0.5 * abs(drift) * tail * tail)
    return estimate, bound + REL_FLOOR * abs(estimate) + ABS_FLOOR


def _rebuild_metrics(spec: RunSpec, base: RunMetrics,
                     counters: Dict[str, Dict[str, float]]) -> RunMetrics:
    """An extrapolated RunMetrics shaped exactly like an exact run's."""
    def est(name: str) -> float:
        return counters[name]["estimate"]

    stats = dict(base.stats)
    for name, cell in counters.items():
        if name.startswith("stats."):
            stats[name[len("stats."):]] = cell["estimate"]
    return RunMetrics(
        mechanism=base.mechanism,
        cycles=max(int(round(est("cycles"))), 0),
        operations=max(int(round(est("operations"))), 0),
        energy=EnergyBreakdown(
            cache_pj=est("energy.cache_pj"),
            network_pj=est("energy.network_pj"),
            memory_pj=est("energy.memory_pj"),
        ),
        bytes_inside_units=max(int(round(est("bytes_inside_units"))), 0),
        bytes_across_units=max(int(round(est("bytes_across_units"))), 0),
        sync_requests=max(int(round(est("sync_requests"))), 0),
        overflow_request_pct=est("overflow_request_pct"),
        st_occupancy_max_pct=est("st_occupancy_max_pct"),
        st_occupancy_avg_pct=est("st_occupancy_avg_pct"),
        stats=stats,
    )


def run_sampled(spec: RunSpec, fraction: float,
                safety: float = SAFETY) -> Tuple[RunMetrics, Dict[str, Any]]:
    """Execute ``spec`` in sampled mode.

    Returns the extrapolated :class:`RunMetrics` plus a report dict with
    the sampling plan, the simulation effort actually spent
    (``executed_events``), and per-counter ``{"estimate", "bound"}`` cells.
    Raises :class:`ValueError` when the spec is not sampleable or the
    fraction leaves no room for two distinct sample points.
    """
    if not supports_sampling(spec):
        raise ValueError(
            f"workload {spec.workload!r} is not sampleable; "
            f"choose from {sorted(SAMPLE_KNOBS)}"
        )
    total = resolve_rounds(spec)
    plan = sample_plan(total, fraction)
    with _pinned_scale(spec.scale):
        config = spec.config()
        runs = [
            run_workload(_reduced_spec(spec, k).build_workload,
                         config, spec.mechanism)
            for k in plan
        ]
    flats = [flatten_metrics(run) for run in runs]
    k0, k1, k2 = plan
    counters = {}
    for name in flats[2]:
        estimate, bound = extrapolate(
            flats[0].get(name, 0.0), flats[1].get(name, 0.0), flats[2][name],
            k0, k1, k2, total, level=_is_level(name), safety=safety,
        )
        counters[name] = {"estimate": estimate, "bound": bound}
    executed = int(sum(f["stats.kernel.events_processed"] for f in flats))
    metrics = _rebuild_metrics(spec, runs[2], counters)
    report = {
        "sampled": True,
        "knob": SAMPLE_KNOBS[spec.workload],
        "total_rounds": total,
        "sampled_rounds": list(plan),
        "fraction": fraction,
        "safety": safety,
        "executed_events": executed,
        "counters": counters,
    }
    return metrics, report
