"""Plain-text rendering of experiment results.

The benchmark harness prints each figure/table as an aligned text table —
the same rows/series the paper plots — so a run's output can be compared to
the paper side by side (EXPERIMENTS.md records that comparison).
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(rows: List[Dict], columns: Sequence[str] = None,
                 title: str = "", floatfmt: str = "{:.3f}") -> str:
    """Render dict-rows as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)"
    if columns is None:
        # Union of keys across ALL rows, preserving first-seen order:
        # heterogeneous rows (a key absent from the first row, present in
        # later ones) must not lose columns.
        seen = {}
        for row in rows:
            for key in row:
                if not key.startswith("_") and key not in seen:
                    seen[key] = None
        columns = list(seen)
    if not columns:
        return f"{title}\n(no columns)"

    def cell(value) -> str:
        if isinstance(value, float):
            return floatfmt.format(value)
        if isinstance(value, dict):
            return "/".join(floatfmt.format(v) for v in value.values())
        return str(value)

    table = [[cell(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), *(len(r[i]) for r in table))
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("-" * len(header))
    for r in table:
        lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def geomean(values: Sequence[float]) -> float:
    import math

    values = [v for v in values if v > 0]
    if not values:
        return float("nan")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def summarize_speedups(rows: List[Dict], mechanism: str, baseline: str) -> Dict[str, float]:
    """avg / max speedup of ``mechanism`` over ``baseline`` across rows."""
    ratios = [row[mechanism] / row[baseline] for row in rows
              if baseline in row and mechanism in row]
    return {
        "avg": geomean(ratios),
        "max": max(ratios) if ratios else float("nan"),
        "min": min(ratios) if ratios else float("nan"),
    }
