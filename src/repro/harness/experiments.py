"""Per-figure experiment reproductions (evaluation Section 6).

Every public function regenerates one table or figure of the paper and
returns structured rows; ``benchmarks/`` wraps each in a pytest-benchmark
target and prints the same series the paper plots.  Absolute numbers differ
from the paper (different simulator, scaled-down inputs — see
EXPERIMENTS.md); the *shape* (who wins, crossover positions) is the
reproduction target.

Each figure is now a *sweep declaration*: it builds a list of
:class:`~repro.harness.specs.RunSpec` and feeds
:func:`~repro.harness.runner.run_sweep`, which deduplicates, consults the
result cache, and fans misses out across ``--jobs`` worker processes.  Row
assembly happens afterwards from the returned metrics, so parallel and
serial execution produce bit-identical rows.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.harness.runner import run_sweep
from repro.harness.specs import RunSpec, SweepSpec, split_combo
from repro.sim.config import MEMORY_TECHNOLOGIES, PRESETS, ndp_2_5d
from repro.sim.topo.faults import parse_fault_spec, parse_link_profile
from repro.workloads.base import scaled
from repro.workloads.datastructures import ALL_STRUCTURES
from repro.workloads.graphs import bfs_partition, load_dataset, random_partition
from repro.workloads.graphs.partition import edge_cut
from repro.workloads.microbench import PRIMITIVES

#: the mechanisms Figs. 10-19 compare.
MECHANISMS = ("central", "hier", "syncron", "ideal")

#: the paper's 26 application-input combinations (Fig. 12).
GRAPH_DATASETS = ("wk", "sl", "sx", "co")
TS_DATASETS = ("air", "pow")
APP_INPUTS: List[str] = [
    f"{kernel}.{dataset}"
    for kernel in ("bfs", "cc", "sssp", "pr", "tf", "tc")
    for dataset in GRAPH_DATASETS
] + [f"ts.{dataset}" for dataset in TS_DATASETS]


def _app_spec(combo: str, mechanism: str, overrides: Optional[dict] = None,
              partitioner: Optional[str] = None) -> RunSpec:
    args = {"combo": combo}
    if partitioner is not None:
        args["partitioner"] = partitioner
    return RunSpec.make("app", mechanism, args=args, overrides=overrides)


def _units_overrides(num_units: int) -> dict:
    return {"num_units": num_units}


# ======================================================================
# Fig. 10 — synchronization primitives vs instruction interval
# ======================================================================
FIG10_INTERVALS = {
    "lock": (50, 100, 200, 400, 1000, 2000, 5000),
    "barrier": (20, 50, 100, 200, 500, 1000, 2000),
    "semaphore": (100, 200, 400, 1000, 2000, 5000, 10000),
    "condvar": (200, 400, 1000, 2000, 5000, 10000, 50000),
}


def fig10(primitive: str, intervals: Optional[Sequence[int]] = None,
          mechanisms: Sequence[str] = MECHANISMS,
          rounds: Optional[int] = None) -> List[Dict]:
    """Speedup (vs Central) of each mechanism at each interval."""
    if primitive not in PRIMITIVES:
        raise ValueError(f"primitive must be one of {PRIMITIVES}")
    intervals = intervals or FIG10_INTERVALS[primitive]
    rounds = rounds if rounds is not None else scaled(25)
    specs = [
        RunSpec.make("primitive", mech,
                     args={"primitive": primitive, "interval": interval,
                           "rounds": rounds})
        for interval in intervals
        for mech in mechanisms
    ]
    results = iter(run_sweep(SweepSpec.of(f"fig10:{primitive}", specs)))
    rows = []
    for interval in intervals:
        runs = {mech: next(results) for mech in mechanisms}
        base = runs[mechanisms[0]].cycles
        row = {"interval": interval}
        for mech, metrics in runs.items():
            row[mech] = base / metrics.cycles
            row[f"{mech}_cycles"] = metrics.cycles
        rows.append(row)
    return rows


# ======================================================================
# Fig. 11 — data-structure throughput vs core count
# ======================================================================
def fig11(structure: str, core_steps: Sequence[int] = (15, 30, 45, 60),
          mechanisms: Sequence[str] = MECHANISMS) -> List[Dict]:
    """Throughput (Mops/s) per mechanism as NDP units are added."""
    units_per_step = [max(cores // 15, 1) for cores in core_steps]
    specs = [
        RunSpec.make("structure", mech, args={"structure": structure},
                     overrides=_units_overrides(units))
        for units in units_per_step
        for mech in mechanisms
    ]
    results = iter(run_sweep(SweepSpec.of(f"fig11:{structure}", specs)))
    rows = []
    for cores, units in zip(core_steps, units_per_step):
        row = {"cores": cores, "units": units}
        for mech in mechanisms:
            metrics = next(results)
            row[mech] = metrics.ops_per_second / 1e6
            row[f"{mech}_cycles"] = metrics.cycles
        rows.append(row)
    return rows


# ======================================================================
# Fig. 12 — real applications, speedup over Central
# ======================================================================
def fig12(combos: Sequence[str] = tuple(APP_INPUTS),
          mechanisms: Sequence[str] = MECHANISMS) -> List[Dict]:
    specs = [
        _app_spec(combo, mech) for combo in combos for mech in mechanisms
    ]
    results = iter(run_sweep(SweepSpec.of("fig12", specs)))
    rows = []
    for combo in combos:
        runs = {mech: next(results) for mech in mechanisms}
        base = runs["central"].cycles if "central" in runs else runs[mechanisms[0]].cycles
        row = {"app": combo}
        for mech, metrics in runs.items():
            row[mech] = base / metrics.cycles
            row[f"{mech}_cycles"] = metrics.cycles
        rows.append(row)
    return rows


def headline_summary(rows: List[Dict]) -> Dict[str, float]:
    """The Sec. 6.1.3 headline numbers from fig12-style rows."""
    import statistics

    def geo(values):
        return statistics.geometric_mean(values) if values else float("nan")

    return {
        "syncron_vs_central": geo([r["syncron"] / r["central"] for r in rows]),
        "syncron_vs_hier": geo([r["syncron"] / r["hier"] for r in rows]),
        "syncron_overhead_vs_ideal_pct": 100.0 * (
            geo([r["ideal"] / r["syncron"] for r in rows]) - 1.0
        ),
    }


# ======================================================================
# Fig. 13 — SynCron scalability with NDP units
# ======================================================================
def fig13(combos: Sequence[str] = ("bfs.sl", "cc.sx", "sssp.co", "pr.wk",
                                   "tf.sl", "tc.sx", "ts.air", "ts.pow"),
          unit_steps: Sequence[int] = (1, 2, 3, 4)) -> List[Dict]:
    specs = [
        _app_spec(combo, "syncron", overrides=_units_overrides(units))
        for combo in combos
        for units in unit_steps
    ]
    results = iter(run_sweep(SweepSpec.of("fig13", specs)))
    rows = []
    for combo in combos:
        cycles = {units: next(results).cycles for units in unit_steps}
        base = cycles[unit_steps[0]]
        row = {"app": combo}
        for units in unit_steps:
            row[f"{units}_units"] = base / cycles[units]
        rows.append(row)
    return rows


# ======================================================================
# Fig. 14 / Fig. 15 — energy breakdown and data movement
# ======================================================================
def fig14(combos: Sequence[str] = ("bfs.sl", "cc.sx", "sssp.co", "pr.wk",
                                   "tf.sl", "tc.sx", "ts.air", "ts.pow"),
          mechanisms: Sequence[str] = MECHANISMS) -> List[Dict]:
    """Energy by component, normalized to Central's total per app."""
    specs = [
        _app_spec(combo, mech) for combo in combos for mech in mechanisms
    ]
    results = iter(run_sweep(SweepSpec.of("fig14", specs)))
    rows = []
    for combo in combos:
        runs = {mech: next(results) for mech in mechanisms}
        baseline = runs["central"].energy
        row = {"app": combo}
        for mech, metrics in runs.items():
            row[mech] = metrics.energy.normalized(baseline)
        rows.append(row)
    return rows


def fig15(combos: Sequence[str] = ("bfs.sl", "cc.sx", "sssp.co", "pr.wk",
                                   "tf.sl", "tc.sx", "ts.air", "ts.pow"),
          mechanisms: Sequence[str] = MECHANISMS) -> List[Dict]:
    """Bytes moved inside/across NDP units, normalized to Central."""
    specs = [
        _app_spec(combo, mech) for combo in combos for mech in mechanisms
    ]
    results = iter(run_sweep(SweepSpec.of("fig15", specs)))
    rows = []
    for combo in combos:
        runs = {mech: next(results) for mech in mechanisms}
        base_total = runs["central"].total_bytes or 1
        row = {"app": combo}
        for mech, metrics in runs.items():
            row[mech] = {
                "inside": metrics.bytes_inside_units / base_total,
                "across": metrics.bytes_across_units / base_total,
                "total": metrics.total_bytes / base_total,
            }
        rows.append(row)
    return rows


# ======================================================================
# Fig. 16 / Fig. 17 — sensitivity to inter-unit link latency
# ======================================================================
FIG16_LATENCIES_NS = (40, 100, 200, 500, 1000, 2000, 4500, 9000)


def fig16(structures: Sequence[str] = ("stack", "priority_queue"),
          latencies_ns: Sequence[float] = FIG16_LATENCIES_NS,
          mechanisms: Sequence[str] = MECHANISMS) -> List[Dict]:
    specs = [
        RunSpec.make("structure", mech, args={"structure": structure},
                     overrides={"link_latency_ns": float(latency)})
        for structure in structures
        for latency in latencies_ns
        for mech in mechanisms
    ]
    results = iter(run_sweep(SweepSpec.of("fig16", specs)))
    rows = []
    for structure in structures:
        for latency in latencies_ns:
            row = {"structure": structure, "latency_ns": latency}
            for mech in mechanisms:
                row[mech] = next(results).ops_per_second / 1e6
            rows.append(row)
    return rows


def fig17(latencies_ns: Sequence[float] = (40, 100, 200, 500),
          mechanisms: Sequence[str] = ("central", "hier", "syncron"),
          combo: str = "pr.wk") -> List[Dict]:
    """Slowdown vs Ideal (lower is better), per link latency."""
    specs = [
        _app_spec(combo, mech, overrides={"link_latency_ns": float(latency)})
        for latency in latencies_ns
        for mech in ("ideal", *mechanisms)
    ]
    results = iter(run_sweep(SweepSpec.of("fig17", specs)))
    rows = []
    for latency in latencies_ns:
        ideal = next(results)
        row = {"latency_ns": latency, "ideal_cycles": ideal.cycles}
        for mech in mechanisms:
            row[mech] = next(results).cycles / ideal.cycles
        rows.append(row)
    return rows


# ======================================================================
# Fig. 18 — memory technologies
# ======================================================================
def fig18(combos: Sequence[str] = ("cc.wk", "pr.wk", "ts.pow"),
          mechanisms: Sequence[str] = MECHANISMS) -> List[Dict]:
    memories = tuple(MEMORY_TECHNOLOGIES)
    specs = [
        _app_spec(combo, mech, overrides={"memory": memory_name})
        for combo in combos
        for memory_name in memories
        for mech in mechanisms
    ]
    results = iter(run_sweep(SweepSpec.of("fig18", specs)))
    rows = []
    for combo in combos:
        for memory_name in memories:
            runs = {mech: next(results) for mech in mechanisms}
            base = runs["central"].cycles
            row = {"app": combo, "memory": memory_name}
            for mech, metrics in runs.items():
                row[mech] = base / metrics.cycles
            rows.append(row)
    return rows


# ======================================================================
# Fig. 19 — data placement (METIS-substitute partitioning)
# ======================================================================
def fig19(datasets: Sequence[str] = GRAPH_DATASETS,
          mechanisms: Sequence[str] = MECHANISMS) -> List[Dict]:
    config = ndp_2_5d()
    partitionings = ("random", "metis")
    specs = [
        _app_spec(f"pr.{dataset}", mech, partitioner=label)
        for dataset in datasets
        for label in partitionings
        for mech in mechanisms
    ]
    results = iter(run_sweep(SweepSpec.of("fig19", specs)))
    rows = []
    for dataset in datasets:
        graph = load_dataset(dataset)
        cut_random = edge_cut(graph, random_partition(graph, config.num_units, seed=7))
        cut_metis = edge_cut(graph, bfs_partition(graph, config.num_units))
        for label in partitionings:
            runs = {mech: next(results) for mech in mechanisms}
            base = runs["central"].cycles
            row = {
                "dataset": dataset,
                "partitioning": label,
                "edge_cut_random": cut_random,
                "edge_cut_metis": cut_metis,
            }
            for mech, metrics in runs.items():
                row[mech] = base / metrics.cycles
            row["max_st_occupancy_pct"] = runs["syncron"].st_occupancy_max_pct
            rows.append(row)
    return rows


# ======================================================================
# Fig. 20 / Fig. 21 — hierarchical vs flat
# ======================================================================
def fig20(combos: Optional[Sequence[str]] = None) -> List[Dict]:
    """SynCron speedup normalized to flat on graph workloads."""
    combos = combos or [c for c in APP_INPUTS if not c.startswith("ts.")]
    specs = [
        _app_spec(combo, mech)
        for combo in combos
        for mech in ("syncron_flat", "syncron")
    ]
    results = iter(run_sweep(SweepSpec.of("fig20", specs)))
    rows = []
    for combo in combos:
        flat, hier = next(results), next(results)
        rows.append({
            "app": combo,
            "syncron_vs_flat": flat.cycles / hier.cycles,
        })
    return rows


def fig21a(latencies_ns: Sequence[float] = (40, 100, 200, 500)) -> List[Dict]:
    specs = [
        _app_spec(f"ts.{dataset}", mech,
                  overrides={"link_latency_ns": float(latency)})
        for dataset in TS_DATASETS
        for latency in latencies_ns
        for mech in ("syncron_flat", "syncron")
    ]
    results = iter(run_sweep(SweepSpec.of("fig21a", specs)))
    rows = []
    for dataset in TS_DATASETS:
        for latency in latencies_ns:
            flat, hier = next(results), next(results)
            rows.append({
                "app": f"ts.{dataset}",
                "latency_ns": latency,
                "syncron_vs_flat": flat.cycles / hier.cycles,
            })
    return rows


def fig21b(latencies_ns: Sequence[float] = (40, 100, 200, 500),
           core_counts: Sequence[int] = (30, 60)) -> List[Dict]:
    specs = [
        RunSpec.make("structure", mech, args={"structure": "queue"},
                     overrides={"num_units": cores // 15,
                                "link_latency_ns": float(latency)})
        for cores in core_counts
        for latency in latencies_ns
        for mech in ("syncron_flat", "syncron")
    ]
    results = iter(run_sweep(SweepSpec.of("fig21b", specs)))
    rows = []
    for cores in core_counts:
        for latency in latencies_ns:
            flat, hier = next(results), next(results)
            rows.append({
                "cores": cores,
                "latency_ns": latency,
                "syncron_vs_flat": flat.cycles / hier.cycles,
            })
    return rows


# ======================================================================
# Fig. 22 — ST size sensitivity
# ======================================================================
def fig22(combos: Sequence[str] = ("cc.wk", "pr.wk", "ts.air", "ts.pow"),
          st_sizes: Sequence[int] = (64, 48, 32, 16, 8)) -> List[Dict]:
    specs = [
        _app_spec(combo, "syncron", overrides={"st_entries": st})
        for combo in combos
        for st in st_sizes
    ]
    results = iter(run_sweep(SweepSpec.of("fig22", specs)))
    rows = []
    for combo in combos:
        cycles = {}
        overflow = {}
        for st in st_sizes:
            metrics = next(results)
            cycles[st] = metrics.cycles
            overflow[st] = metrics.overflow_request_pct
        base = cycles[st_sizes[0]]
        row = {"app": combo}
        for st in st_sizes:
            row[f"ST_{st}"] = cycles[st] / base
            row[f"ST_{st}_overflow_pct"] = overflow[st]
        rows.append(row)
    return rows


# ======================================================================
# Fig. 23 — overflow management schemes
# ======================================================================
def fig23(st_sizes: Sequence[int] = (16, 32, 48, 64, 128, 256)) -> List[Dict]:
    schemes = ("syncron", "syncron_central_ovrfl", "syncron_distrib_ovrfl")
    specs = [
        RunSpec.make("structure", scheme, args={"structure": "bst_fg"},
                     overrides={"st_entries": st})
        for st in st_sizes
        for scheme in schemes
    ]
    results = iter(run_sweep(SweepSpec.of("fig23", specs)))
    rows = []
    for st in st_sizes:
        row = {"st_entries": st}
        for scheme in schemes:
            metrics = next(results)
            row[scheme] = metrics.ops_per_ms
            row[f"{scheme}_overflow_pct"] = metrics.overflow_request_pct
        rows.append(row)
    return rows


# ======================================================================
# Topology sensitivity — mechanism x fabric x unit count (extension)
# ======================================================================
#: every fabric the topology subsystem provides (repro.sim.topo).
ALL_TOPOLOGIES = ("all_to_all", "ring", "mesh2d", "torus2d")


def topo_sensitivity(topologies: Sequence[str] = ALL_TOPOLOGIES,
                     unit_steps: Sequence[int] = (4, 16),
                     mechanisms: Sequence[str] = ("hier", "syncron"),
                     interval: int = 200,
                     rounds: Optional[int] = None) -> List[Dict]:
    """Slowdown of each fabric vs the ideal all-to-all interconnect.

    The paper evaluates on an implicit all-to-all fabric (a dedicated
    channel per unit pair); this extension re-runs a cross-unit-heavy
    lock microbenchmark on routed ring/mesh/torus fabrics at growing unit
    counts, where multi-hop distance and shared-channel contention are
    real.  Units are slimmed to 3 clients each so the 16-unit points stay
    tractable; the traffic pattern (every unit hammering unit 0's master
    SE) is the worst case for route sharing.

    Rows: one per (units, topology); per mechanism, ``<mech>`` is the
    slowdown relative to all-to-all at the same unit count (1.0 for
    all-to-all itself) and ``<mech>_cycles`` the raw makespan.
    """
    if "all_to_all" not in topologies:  # the normalization baseline
        topologies = ("all_to_all", *topologies)
    rounds = rounds if rounds is not None else scaled(8)
    sweep = SweepSpec.matrix(
        "topo_sensitivity",
        workloads=[("primitive", {"primitive": "lock", "interval": interval,
                                  "rounds": rounds})],
        mechanisms=tuple(mechanisms),
        vary={"num_units": tuple(int(u) for u in unit_steps),
              "topology": tuple(topologies)},
        base_overrides={"cores_per_unit": 4, "client_cores_per_unit": 3},
    )
    results = iter(run_sweep(sweep))
    # matrix order: vary combos (num_units outer, topology inner), then
    # mechanisms innermost.
    cycles: Dict[tuple, int] = {}
    for units in unit_steps:
        for topo in topologies:
            for mech in mechanisms:
                cycles[(units, topo, mech)] = next(results).cycles
    rows = []
    for units in unit_steps:
        for topo in topologies:
            row: Dict[str, object] = {
                "units": units,
                "topology": topo,
                "label": f"{topo}@{units}u",
            }
            for mech in mechanisms:
                makespan = cycles[(units, topo, mech)]
                baseline = cycles[(units, "all_to_all", mech)]
                row[mech] = makespan / baseline if baseline else float("inf")
                row[f"{mech}_cycles"] = makespan
            rows.append(row)
    return rows


# ======================================================================
# Graceful degradation — mechanism x fabric x fault severity (extension)
# ======================================================================
#: default severities: fraction of physical channels failed permanently.
DEGRADATION_SEVERITIES = (0.0, 0.0625, 0.125, 0.25)


def degradation(topologies: Sequence[str] = ("ring", "mesh2d"),
                severities: Sequence[float] = DEGRADATION_SEVERITIES,
                mechanisms: Sequence[str] = ("central", "syncron"),
                num_units: int = 8,
                interval: int = 200,
                rounds: Optional[int] = None,
                fault_seed: int = 1,
                policy: str = "static",
                window: int = 8_000,
                faults: Optional[str] = None,
                link_profile: Optional[str] = None) -> List[Dict]:
    """How each mechanism degrades as the fabric loses links.

    Sweeps mechanism x fabric x fault severity over the cross-unit-heavy
    lock microbenchmark of :func:`topo_sensitivity`.  Severity is the
    fraction of physical channels failed permanently at seed-derived times
    within ``window`` cycles (early enough to land mid-run at these sizes);
    all mechanisms at one (topology, severity) share the exact same
    seed-derived :class:`~repro.sim.topo.faults.FaultPlan`, so the
    comparison isolates the mechanism.  Rate-derived plans are
    connectivity-guarded — the fabric degrades but never partitions.

    Rows: one per (topology, severity).  Per mechanism, ``<mech>`` is the
    slowdown vs the same mechanism on the same fabric with no faults, plus
    ``<mech>_cycles`` / ``<mech>_reroutes`` / ``<mech>_detour_bit_hops``
    from the run's counters; ``links_failed`` / ``hop_inflation`` describe
    the surviving geometry (via the ``fabric_probe`` measurement).

    ``faults`` / ``policy`` / ``link_profile`` expose the CLI knobs: an
    explicit ``--faults`` spec (parsed, applied to *every* cell on top of
    the severity), the routing policy, and a ``--link-profile`` spec.
    """
    severities = tuple(float(s) for s in severities)
    if 0.0 not in severities:  # the normalization baseline
        severities = (0.0, *severities)
    rounds = rounds if rounds is not None else scaled(6)
    base: Dict[str, object] = {
        "num_units": int(num_units),
        "cores_per_unit": 4,
        "client_cores_per_unit": 3,
        "fault_seed": int(fault_seed),
        "fault_window_cycles": int(window),
        "routing_policy": policy,
    }
    if faults:
        base.update(parse_fault_spec(faults))
    if link_profile:
        base["link_profile"] = parse_link_profile(link_profile)
    sweep = SweepSpec.matrix(
        "degradation",
        workloads=[("primitive", {"primitive": "lock", "interval": interval,
                                  "rounds": rounds})],
        mechanisms=tuple(mechanisms),
        vary={"topology": tuple(topologies),
              "fault_link_rate": severities},
        base_overrides=base,
    )
    results = iter(run_sweep(sweep))
    # matrix order: vary combos (topology outer, severity inner), then
    # mechanisms innermost.
    metrics: Dict[tuple, object] = {}
    for topo in topologies:
        for severity in severities:
            for mech in mechanisms:
                metrics[(topo, severity, mech)] = next(results)
    probes = iter(run_sweep(SweepSpec.of("degradation_probe", [
        RunSpec.make("fabric_probe", mechanism=mechanisms[0],
                     overrides={**base, "topology": topo,
                                "fault_link_rate": severity})
        for topo in topologies for severity in severities
    ])))
    rows = []
    for topo in topologies:
        for severity in severities:
            probe = next(probes)
            row: Dict[str, object] = {
                "topology": topo,
                "severity": severity,
                "label": f"{topo}@{severity:g}",
                "links_failed": int(probe["links_failed"]),
                "hop_inflation": round(probe["hop_inflation"], 4),
            }
            for mech in mechanisms:
                run = metrics[(topo, severity, mech)]
                healthy = metrics[(topo, 0.0, mech)]
                row[mech] = (run.cycles / healthy.cycles
                             if healthy.cycles else float("inf"))
                row[f"{mech}_cycles"] = run.cycles
                row[f"{mech}_reroutes"] = int(run.stats["reroutes"])
                row[f"{mech}_detour_bit_hops"] = int(
                    run.stats["detour_bit_hops"])
            rows.append(row)
    return rows


# ======================================================================
# Co-run interference — tenant groups x mechanisms x fabrics (extension)
# ======================================================================
#: default mechanisms for the interference matrix: Central funnels every
#: tenant through one shared server core (strong interference), SynCron's
#: per-unit SEs isolate unit-aligned tenants (the contrast worth plotting).
CORUN_MECHANISMS = ("central", "syncron")


def tenant_desc(desc: str, interval: int = 200, rounds: int = 25) -> Dict:
    """Shorthand tenant description: ``lock`` (primitive), ``bfs.wk``
    (application combo), ``stack`` (data structure)."""
    if desc in PRIMITIVES:
        return {"workload": "primitive",
                "args": {"primitive": desc, "interval": interval,
                         "rounds": rounds}}
    if "." in desc:
        split_combo(desc)  # validates, raises a friendly error
        return {"workload": "app", "args": {"combo": desc}}
    if desc in ALL_STRUCTURES:
        return {"workload": "structure", "args": {"structure": desc}}
    raise ValueError(
        f"unknown tenant workload {desc!r}; use a primitive "
        f"({sorted(PRIMITIVES)}), an app combo like 'bfs.wk', or a "
        f"structure ({sorted(ALL_STRUCTURES)})"
    )


def _unit_slices(num_units: int, counts: Sequence[int]) -> List[tuple]:
    """Contiguous unit slices of the given sizes (must sum to <= units)."""
    if sum(counts) > num_units:
        raise ValueError(
            f"unit split {tuple(counts)} exceeds the {num_units}-unit system"
        )
    slices, start = [], 0
    for count in counts:
        if count < 1:
            raise ValueError("every tenant needs at least one unit")
        slices.append(tuple(range(start, start + count)))
        start += count
    return slices


def _even_unit_split(num_units: int, n_tenants: int) -> List[int]:
    share, extra = divmod(num_units, n_tenants)
    if share == 0:
        raise ValueError(
            f"{n_tenants} tenants need at least {n_tenants} units, "
            f"got {num_units}"
        )
    return [share + (1 if i < extra else 0) for i in range(n_tenants)]


def _tenant_group(descs: Sequence[str], interval: int, rounds: int,
                  unit_slices: Optional[Sequence[tuple]] = None,
                  core_slices: Optional[Sequence[tuple]] = None) -> List[Dict]:
    """Named tenant descriptions for one co-run group.

    Partitioned either unit-granularly (``unit_slices``) or core-granularly
    (``core_slices``, explicit core-id tuples — tenants then share units,
    SEs, crossbars, and DRAM, the interference-heavy shape).  Slices are
    explicit so a tenant's solo baseline can run on *exactly* the cores it
    occupied in the co-run.
    """
    tenants = []
    for i, desc in enumerate(descs):
        name = desc if descs.index(desc) == i else f"{desc}#{i}"
        tenant = {"name": name,
                  **tenant_desc(desc, interval=interval, rounds=rounds)}
        if unit_slices is not None:
            tenant["units"] = list(unit_slices[i])
        elif core_slices is not None:
            tenant["core_ids"] = list(core_slices[i])
        tenants.append(tenant)
    return tenants


def interference(groups: Sequence = (("lock", "bfs.wk"), ("lock", "stack")),
                 mechanisms: Sequence[str] = CORUN_MECHANISMS,
                 topologies: Sequence[str] = ("all_to_all", "ring"),
                 interval: int = 200,
                 rounds: Optional[int] = None,
                 unit_split: Optional[Sequence[int]] = None,
                 core_split: Optional[Sequence[int]] = None,
                 preset: str = "ndp_2_5d",
                 base_overrides: Optional[Dict] = None) -> List[Dict]:
    """Per-tenant slowdown vs running alone, across mechanisms x fabrics.

    Each *group* is a tuple of tenant shorthands (see :func:`tenant_desc`);
    a group may also be given as a ``+``-joined string (``"lock+bfs.wk"``,
    the CLI form).  The machine's units are split contiguously among the
    group's tenants (evenly unless ``unit_split`` gives explicit counts;
    ``core_split`` instead assigns client-core counts, making tenants share
    units — and therefore SEs, ST capacity, crossbars, and DRAM banks).
    Every cell simulates the co-run plus each tenant *alone on the same
    slice*, so the reported slowdown isolates interference through the
    shared resources from the capacity loss of partitioning itself.  All
    runs are cacheable ``corun`` specs; solo runs shared between cells
    deduplicate automatically.
    """
    groups = [
        tuple(g.split("+")) if isinstance(g, str) else tuple(g)
        for g in groups
    ]
    if unit_split is not None and core_split is not None:
        raise ValueError("give unit_split or core_split, not both")
    rounds = rounds if rounds is not None else scaled(10)
    overrides = dict(base_overrides or {})
    base_cfg = PRESETS[preset]()
    num_units = overrides.get("num_units", base_cfg.num_units)
    total_clients = (
        num_units
        * overrides.get("client_cores_per_unit",
                        base_cfg.client_cores_per_unit)
        * overrides.get("threads_per_core", base_cfg.threads_per_core)
    )

    def corun_spec(tenants, mech, topo):
        return RunSpec.make(
            "corun", mech, args={"tenants": tenants}, preset=preset,
            overrides={**overrides, "topology": topo},
        )

    cells = []  # (group, tenants, topo, mech)
    specs: List[RunSpec] = []
    for group in groups:
        if core_split is not None:
            if len(core_split) != len(group):
                raise ValueError(
                    f"core split {tuple(core_split)} does not match "
                    f"group {group}"
                )
            if sum(core_split) > total_clients:
                raise ValueError(
                    f"core split {tuple(core_split)} exceeds the "
                    f"{total_clients} client cores of this configuration"
                )
            # Explicit contiguous id ranges (what the deterministic
            # partitioner would assign) so each solo baseline reuses the
            # tenant's exact co-run slice.
            starts = [sum(core_split[:i]) for i in range(len(core_split))]
            core_slices = [
                tuple(range(start, start + count))
                for start, count in zip(starts, core_split)
            ]
            tenants = _tenant_group(group, interval, rounds,
                                    core_slices=core_slices)
        else:
            counts = list(unit_split) if unit_split else _even_unit_split(
                num_units, len(group))
            if len(counts) != len(group):
                raise ValueError(
                    f"unit split {counts} does not match group {group}"
                )
            tenants = _tenant_group(
                group, interval, rounds,
                unit_slices=_unit_slices(num_units, counts),
            )
        for topo in topologies:
            for mech in mechanisms:
                cells.append((group, tenants, topo, mech))
                specs.append(corun_spec(tenants, mech, topo))
                specs.extend(
                    corun_spec([tenant], mech, topo) for tenant in tenants
                )

    results = iter(run_sweep(SweepSpec.of("interference", specs)))
    rows = []
    for group, tenants, topo, mech in cells:
        corun = next(results)
        row: Dict[str, object] = {
            "pair": "+".join(group),
            "topology": topo,
            "mechanism": mech,
            "makespan": corun.cycles,
            "fairness": corun.stats.get("tenant_summary.fairness", 1.0),
        }
        for tenant in tenants:
            solo = next(results)
            name = tenant["name"]
            together = corun.stats[f"tenant.{name}.cycles"]
            alone = solo.stats[f"tenant.{name}.cycles"]
            row[f"{name}_slowdown"] = together / alone if alone else float("inf")
            row[f"{name}_cycles"] = together
            row[f"{name}_alone_cycles"] = alone
        rows.append(row)
    return rows


def isolation_check(descs: Sequence[str] = ("lock",),
                    mechanisms: Sequence[str] = ("syncron", "hier", "central"),
                    topologies: Sequence[str] = ("all_to_all",),
                    interval: int = 200,
                    rounds: Optional[int] = None,
                    preset: str = "ndp_2_5d",
                    base_overrides: Optional[Dict] = None) -> List[Dict]:
    """Bit-identity of a whole-machine single tenant vs the plain run.

    The co-run path's sanity anchor: one tenant owning all cores must
    reproduce the single-workload simulation exactly — same cycles, same
    energy breakdown, same byte counters — under every requested mechanism
    and fabric.  Returns one row per (workload, mechanism, topology) with
    an ``identical`` verdict; the CI smoke run and
    ``repro corun --check-isolation`` fail when any row is False.
    """
    rounds = rounds if rounds is not None else scaled(10)
    specs: List[RunSpec] = []
    cells = []
    for desc in descs:
        tenant = {"name": desc, **tenant_desc(desc, interval, rounds)}
        for topo in topologies:
            overrides = {**(base_overrides or {}), "topology": topo}
            for mech in mechanisms:
                cells.append((desc, mech, topo))
                specs.append(RunSpec.make(
                    tenant["workload"], mech, args=tenant["args"],
                    preset=preset, overrides=overrides,
                ))
                specs.append(RunSpec.make(
                    "corun", mech, args={"tenants": [tenant]}, preset=preset,
                    overrides=overrides,
                ))
    results = iter(run_sweep(SweepSpec.of("isolation_check", specs)))
    rows = []
    for desc, mech, topo in cells:
        solo, corun = next(results), next(results)
        identical = (
            solo.cycles == corun.cycles
            and solo.energy == corun.energy
            and solo.bytes_inside_units == corun.bytes_inside_units
            and solo.bytes_across_units == corun.bytes_across_units
        )
        rows.append({
            "workload": desc,
            "mechanism": mech,
            "topology": topo,
            "solo_cycles": solo.cycles,
            "corun_cycles": corun.cycles,
            "identical": identical,
        })
    return rows


# ======================================================================
# Table 7 — ST occupancy across real applications
# ======================================================================
def table7(combos: Sequence[str] = tuple(APP_INPUTS)) -> List[Dict]:
    specs = [_app_spec(combo, "syncron") for combo in combos]
    results = iter(run_sweep(SweepSpec.of("table7", specs)))
    rows = []
    for combo in combos:
        metrics = next(results)
        rows.append({
            "app": combo,
            "max_pct": metrics.st_occupancy_max_pct,
            "avg_pct": metrics.st_occupancy_avg_pct,
        })
    return rows
