"""Per-figure experiment reproductions (evaluation Section 6).

Every public function regenerates one table or figure of the paper and
returns structured rows; ``benchmarks/`` wraps each in a pytest-benchmark
target and prints the same series the paper plots.  Absolute numbers differ
from the paper (different simulator, scaled-down inputs — see
EXPERIMENTS.md); the *shape* (who wins, crossover positions) is the
reproduction target.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.sim.config import MEMORY_TECHNOLOGIES, SystemConfig, ndp_2_5d
from repro.workloads.base import RunMetrics, run_workload, scaled
from repro.workloads.datastructures import (
    ALL_STRUCTURES,
    BSTFineGrainedWorkload,
    PriorityQueueWorkload,
    QueueWorkload,
    StackWorkload,
)
from repro.workloads.graphs import ALL_KERNELS, bfs_partition, load_dataset, random_partition
from repro.workloads.graphs.partition import edge_cut
from repro.workloads.microbench import PRIMITIVES, PrimitiveMicrobench
from repro.workloads.timeseries import TimeSeriesWorkload

#: the mechanisms Figs. 10-19 compare.
MECHANISMS = ("central", "hier", "syncron", "ideal")

#: the paper's 26 application-input combinations (Fig. 12).
GRAPH_DATASETS = ("wk", "sl", "sx", "co")
TS_DATASETS = ("air", "pow")
APP_INPUTS: List[str] = [
    f"{kernel}.{dataset}"
    for kernel in ("bfs", "cc", "sssp", "pr", "tf", "tc")
    for dataset in GRAPH_DATASETS
] + [f"ts.{dataset}" for dataset in TS_DATASETS]


def _app_factory(combo: str) -> Callable:
    """Zero-arg factory for an application-input combination."""
    app, dataset = combo.split(".")
    if app == "ts":
        return lambda: TimeSeriesWorkload(dataset)
    kernel_cls = ALL_KERNELS[app]
    return lambda: kernel_cls(dataset=dataset)


def _units_config(num_units: int, base: Optional[SystemConfig] = None) -> SystemConfig:
    cfg = base or ndp_2_5d()
    return cfg.with_(num_units=num_units)


# ======================================================================
# Fig. 10 — synchronization primitives vs instruction interval
# ======================================================================
FIG10_INTERVALS = {
    "lock": (50, 100, 200, 400, 1000, 2000, 5000),
    "barrier": (20, 50, 100, 200, 500, 1000, 2000),
    "semaphore": (100, 200, 400, 1000, 2000, 5000, 10000),
    "condvar": (200, 400, 1000, 2000, 5000, 10000, 50000),
}


def fig10(primitive: str, intervals: Optional[Sequence[int]] = None,
          mechanisms: Sequence[str] = MECHANISMS,
          rounds: Optional[int] = None) -> List[Dict]:
    """Speedup (vs Central) of each mechanism at each interval."""
    if primitive not in PRIMITIVES:
        raise ValueError(f"primitive must be one of {PRIMITIVES}")
    intervals = intervals or FIG10_INTERVALS[primitive]
    rounds = rounds if rounds is not None else scaled(25)
    config = ndp_2_5d()
    rows = []
    for interval in intervals:
        row = {"interval": interval}
        runs = {
            mech: run_workload(
                lambda: PrimitiveMicrobench(primitive, interval, rounds=rounds),
                config, mech,
            )
            for mech in mechanisms
        }
        base = runs[mechanisms[0]].cycles
        for mech, metrics in runs.items():
            row[mech] = base / metrics.cycles
            row[f"{mech}_cycles"] = metrics.cycles
        rows.append(row)
    return rows


# ======================================================================
# Fig. 11 — data-structure throughput vs core count
# ======================================================================
def fig11(structure: str, core_steps: Sequence[int] = (15, 30, 45, 60),
          mechanisms: Sequence[str] = MECHANISMS) -> List[Dict]:
    """Throughput (Mops/s) per mechanism as NDP units are added."""
    cls = ALL_STRUCTURES[structure]
    rows = []
    for cores in core_steps:
        units = max(cores // 15, 1)
        config = _units_config(units)
        row = {"cores": cores, "units": units}
        for mech in mechanisms:
            metrics = run_workload(cls, config, mech)
            row[mech] = metrics.ops_per_second / 1e6
            row[f"{mech}_cycles"] = metrics.cycles
        rows.append(row)
    return rows


# ======================================================================
# Fig. 12 — real applications, speedup over Central
# ======================================================================
def fig12(combos: Sequence[str] = tuple(APP_INPUTS),
          mechanisms: Sequence[str] = MECHANISMS) -> List[Dict]:
    config = ndp_2_5d()
    rows = []
    for combo in combos:
        factory = _app_factory(combo)
        runs = {mech: run_workload(factory, config, mech) for mech in mechanisms}
        base = runs["central"].cycles if "central" in runs else runs[mechanisms[0]].cycles
        row = {"app": combo}
        for mech, metrics in runs.items():
            row[mech] = base / metrics.cycles
            row[f"{mech}_cycles"] = metrics.cycles
        rows.append(row)
    return rows


def headline_summary(rows: List[Dict]) -> Dict[str, float]:
    """The Sec. 6.1.3 headline numbers from fig12-style rows."""
    import statistics

    def geo(values):
        return statistics.geometric_mean(values) if values else float("nan")

    return {
        "syncron_vs_central": geo([r["syncron"] / r["central"] for r in rows]),
        "syncron_vs_hier": geo([r["syncron"] / r["hier"] for r in rows]),
        "syncron_overhead_vs_ideal_pct": 100.0 * (
            geo([r["ideal"] / r["syncron"] for r in rows]) - 1.0
        ),
    }


# ======================================================================
# Fig. 13 — SynCron scalability with NDP units
# ======================================================================
def fig13(combos: Sequence[str] = ("bfs.sl", "cc.sx", "sssp.co", "pr.wk",
                                   "tf.sl", "tc.sx", "ts.air", "ts.pow"),
          unit_steps: Sequence[int] = (1, 2, 3, 4)) -> List[Dict]:
    rows = []
    for combo in combos:
        factory = _app_factory(combo)
        cycles = {}
        for units in unit_steps:
            metrics = run_workload(factory, _units_config(units), "syncron")
            cycles[units] = metrics.cycles
        base = cycles[unit_steps[0]]
        row = {"app": combo}
        for units in unit_steps:
            row[f"{units}_units"] = base / cycles[units]
        rows.append(row)
    return rows


# ======================================================================
# Fig. 14 / Fig. 15 — energy breakdown and data movement
# ======================================================================
def fig14(combos: Sequence[str] = ("bfs.sl", "cc.sx", "sssp.co", "pr.wk",
                                   "tf.sl", "tc.sx", "ts.air", "ts.pow"),
          mechanisms: Sequence[str] = MECHANISMS) -> List[Dict]:
    """Energy by component, normalized to Central's total per app."""
    config = ndp_2_5d()
    rows = []
    for combo in combos:
        factory = _app_factory(combo)
        runs = {mech: run_workload(factory, config, mech) for mech in mechanisms}
        baseline = runs["central"].energy
        row = {"app": combo}
        for mech, metrics in runs.items():
            row[mech] = metrics.energy.normalized(baseline)
        rows.append(row)
    return rows


def fig15(combos: Sequence[str] = ("bfs.sl", "cc.sx", "sssp.co", "pr.wk",
                                   "tf.sl", "tc.sx", "ts.air", "ts.pow"),
          mechanisms: Sequence[str] = MECHANISMS) -> List[Dict]:
    """Bytes moved inside/across NDP units, normalized to Central."""
    config = ndp_2_5d()
    rows = []
    for combo in combos:
        factory = _app_factory(combo)
        runs = {mech: run_workload(factory, config, mech) for mech in mechanisms}
        base_total = runs["central"].total_bytes or 1
        row = {"app": combo}
        for mech, metrics in runs.items():
            row[mech] = {
                "inside": metrics.bytes_inside_units / base_total,
                "across": metrics.bytes_across_units / base_total,
                "total": metrics.total_bytes / base_total,
            }
        rows.append(row)
    return rows


# ======================================================================
# Fig. 16 / Fig. 17 — sensitivity to inter-unit link latency
# ======================================================================
FIG16_LATENCIES_NS = (40, 100, 200, 500, 1000, 2000, 4500, 9000)


def fig16(structures: Sequence[str] = ("stack", "priority_queue"),
          latencies_ns: Sequence[float] = FIG16_LATENCIES_NS,
          mechanisms: Sequence[str] = MECHANISMS) -> List[Dict]:
    rows = []
    for structure in structures:
        cls = ALL_STRUCTURES[structure]
        for latency in latencies_ns:
            config = ndp_2_5d(link_latency_ns=float(latency))
            row = {"structure": structure, "latency_ns": latency}
            for mech in mechanisms:
                metrics = run_workload(cls, config, mech)
                row[mech] = metrics.ops_per_second / 1e6
            rows.append(row)
    return rows


def fig17(latencies_ns: Sequence[float] = (40, 100, 200, 500),
          mechanisms: Sequence[str] = ("central", "hier", "syncron"),
          combo: str = "pr.wk") -> List[Dict]:
    """Slowdown vs Ideal (lower is better), per link latency."""
    rows = []
    for latency in latencies_ns:
        config = ndp_2_5d(link_latency_ns=float(latency))
        factory = _app_factory(combo)
        ideal = run_workload(factory, config, "ideal")
        row = {"latency_ns": latency, "ideal_cycles": ideal.cycles}
        for mech in mechanisms:
            metrics = run_workload(factory, config, mech)
            row[mech] = metrics.cycles / ideal.cycles
        rows.append(row)
    return rows


# ======================================================================
# Fig. 18 — memory technologies
# ======================================================================
def fig18(combos: Sequence[str] = ("cc.wk", "pr.wk", "ts.pow"),
          mechanisms: Sequence[str] = MECHANISMS) -> List[Dict]:
    rows = []
    for combo in combos:
        factory = _app_factory(combo)
        for memory_name, timing in MEMORY_TECHNOLOGIES.items():
            config = ndp_2_5d().with_(memory=timing)
            runs = {mech: run_workload(factory, config, mech) for mech in mechanisms}
            base = runs["central"].cycles
            row = {"app": combo, "memory": memory_name}
            for mech, metrics in runs.items():
                row[mech] = base / metrics.cycles
            rows.append(row)
    return rows


# ======================================================================
# Fig. 19 — data placement (METIS-substitute partitioning)
# ======================================================================
def fig19(datasets: Sequence[str] = GRAPH_DATASETS,
          mechanisms: Sequence[str] = MECHANISMS) -> List[Dict]:
    from repro.workloads.graphs.kernels import PageRankWorkload

    config = ndp_2_5d()
    rows = []
    for dataset in datasets:
        graph = load_dataset(dataset)
        cut_random = edge_cut(graph, random_partition(graph, config.num_units, seed=7))
        cut_metis = edge_cut(graph, bfs_partition(graph, config.num_units))
        for label, partitioner in (
            ("random", lambda g, parts: random_partition(g, parts, seed=7)),
            ("metis", bfs_partition),
        ):
            def factory(partitioner=partitioner):
                return PageRankWorkload(dataset=dataset, partitioner=partitioner)

            runs = {mech: run_workload(factory, config, mech) for mech in mechanisms}
            base = runs["central"].cycles
            row = {
                "dataset": dataset,
                "partitioning": label,
                "edge_cut_random": cut_random,
                "edge_cut_metis": cut_metis,
            }
            for mech, metrics in runs.items():
                row[mech] = base / metrics.cycles
            row["max_st_occupancy_pct"] = runs["syncron"].st_occupancy_max_pct
            rows.append(row)
    return rows


# ======================================================================
# Fig. 20 / Fig. 21 — hierarchical vs flat
# ======================================================================
def fig20(combos: Optional[Sequence[str]] = None) -> List[Dict]:
    """SynCron speedup normalized to flat on graph workloads."""
    combos = combos or [c for c in APP_INPUTS if not c.startswith("ts.")]
    config = ndp_2_5d()
    rows = []
    for combo in combos:
        factory = _app_factory(combo)
        flat = run_workload(factory, config, "syncron_flat")
        hier = run_workload(factory, config, "syncron")
        rows.append({
            "app": combo,
            "syncron_vs_flat": flat.cycles / hier.cycles,
        })
    return rows


def fig21a(latencies_ns: Sequence[float] = (40, 100, 200, 500)) -> List[Dict]:
    rows = []
    for dataset in TS_DATASETS:
        for latency in latencies_ns:
            config = ndp_2_5d(link_latency_ns=float(latency))
            factory = lambda: TimeSeriesWorkload(dataset)
            flat = run_workload(factory, config, "syncron_flat")
            hier = run_workload(factory, config, "syncron")
            rows.append({
                "app": f"ts.{dataset}",
                "latency_ns": latency,
                "syncron_vs_flat": flat.cycles / hier.cycles,
            })
    return rows


def fig21b(latencies_ns: Sequence[float] = (40, 100, 200, 500),
           core_counts: Sequence[int] = (30, 60)) -> List[Dict]:
    rows = []
    for cores in core_counts:
        units = cores // 15
        for latency in latencies_ns:
            config = ndp_2_5d(num_units=units, link_latency_ns=float(latency))
            flat = run_workload(QueueWorkload, config, "syncron_flat")
            hier = run_workload(QueueWorkload, config, "syncron")
            rows.append({
                "cores": cores,
                "latency_ns": latency,
                "syncron_vs_flat": flat.cycles / hier.cycles,
            })
    return rows


# ======================================================================
# Fig. 22 — ST size sensitivity
# ======================================================================
def fig22(combos: Sequence[str] = ("cc.wk", "pr.wk", "ts.air", "ts.pow"),
          st_sizes: Sequence[int] = (64, 48, 32, 16, 8)) -> List[Dict]:
    rows = []
    for combo in combos:
        factory = _app_factory(combo)
        cycles = {}
        overflow = {}
        for st in st_sizes:
            config = ndp_2_5d(st_entries=st)
            metrics = run_workload(factory, config, "syncron")
            cycles[st] = metrics.cycles
            overflow[st] = metrics.overflow_request_pct
        base = cycles[st_sizes[0]]
        row = {"app": combo}
        for st in st_sizes:
            row[f"ST_{st}"] = cycles[st] / base
            row[f"ST_{st}_overflow_pct"] = overflow[st]
        rows.append(row)
    return rows


# ======================================================================
# Fig. 23 — overflow management schemes
# ======================================================================
def fig23(st_sizes: Sequence[int] = (16, 32, 48, 64, 128, 256)) -> List[Dict]:
    schemes = ("syncron", "syncron_central_ovrfl", "syncron_distrib_ovrfl")
    rows = []
    for st in st_sizes:
        config = ndp_2_5d(st_entries=st)
        row = {"st_entries": st}
        for scheme in schemes:
            metrics = run_workload(BSTFineGrainedWorkload, config, scheme)
            row[scheme] = metrics.ops_per_ms
            row[f"{scheme}_overflow_pct"] = metrics.overflow_request_pct
        rows.append(row)
    return rows


# ======================================================================
# Table 7 — ST occupancy across real applications
# ======================================================================
def table7(combos: Sequence[str] = tuple(APP_INPUTS)) -> List[Dict]:
    config = ndp_2_5d()
    rows = []
    for combo in combos:
        metrics = run_workload(_app_factory(combo), config, "syncron")
        rows.append({
            "app": combo,
            "max_pct": metrics.st_occupancy_max_pct,
            "avg_pct": metrics.st_occupancy_avg_pct,
        })
    return rows
