"""Sweep execution: pull-based multi-worker executor + content store.

Every harness figure and the CLI ``sweep`` subcommand funnel through
:func:`run_sweep` / :func:`run_specs`: specs are deduplicated by cache key,
hits are served from a content-addressed :class:`~repro.harness.store.ResultStore`,
and only the misses are simulated.  Because every simulation is
deterministic (explicit seeds everywhere — see
:func:`repro.workloads.base.stable_name_seed`), any worker layout produces
bit-identical rows, and a warm-store re-run executes zero simulations.

Execution is a **pull-based work queue**, not an up-front partition: every
worker process sees the whole pending matrix and repeatedly (1) skips keys
whose result already landed in the store, (2) claims one key on the
:class:`~repro.harness.store.LeaseBoard`, (3) simulates it, (4) publishes
the result durably, then releases the lease.  Slow specs therefore never
serialize a whole chunk behind one worker, a crashed worker's claims
expire and are re-run by survivors, and N *independent processes or
hosts* pointed at one shared store (``--store shared:/mnt/x
--worker-id host1``) drain a matrix cooperatively with exactly-once
execution — duplicate completions are resolved by the store's
first-durable-write-wins rule with bit-identity verification.

The default store is ``dir:$REPRO_CACHE_DIR`` (default ``.repro-cache/``),
sharded one-file-per-result; a legacy PR-2 ``results.jsonl`` found there is
ingested transparently.  Keys cover the full resolved
:class:`~repro.sim.config.SystemConfig`, workload kwargs, mechanism, seed
and scale — but NOT the simulator's code, so run ``repro cache gc`` after
bumping :data:`repro.harness.specs.CACHE_FORMAT_VERSION` (or delete the
directory / pass ``--no-cache``) when simulation behaviour changes.

Caching defaults OFF for library calls (tests must never observe stale
physics) and ON in the CLI.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import shutil
import tempfile
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.harness.specs import RunSpec, SweepSpec
from repro.harness.store import (
    Heartbeat,
    LeaseBoard,
    ResultStore,
    SharedVolumeStore,
    open_store,
)
from repro.telemetry import get_telemetry, strip_volatile_stats
from repro.workloads.base import RunMetrics, run_workload

#: what a run produces: RunMetrics for workload specs, a plain dict for
#: measurement specs.
RunResult = Union[RunMetrics, Dict]


# ----------------------------------------------------------------------
# Execution options (how the CLI hands --workers/--store to figure code)
# ----------------------------------------------------------------------
@dataclass
class ExecutionOptions:
    """Active sweep-execution policy; figures read it via the module state."""

    workers: int = 1
    cache: bool = False
    cache_dir: Optional[str] = None
    #: store url (``memory:`` / ``dir:PATH`` / ``shared:PATH``); None =
    #: a sharded dir store on :meth:`resolved_cache_dir`.
    store: Optional[str] = None
    #: stable identity for cooperative drains across processes/hosts;
    #: setting it routes even single-worker runs through the claim
    #: protocol so independent invocations never double-execute.
    worker_id: Optional[str] = None
    #: seconds before an unreleased claim is considered dead and re-run.
    lease_ttl: float = 60.0
    #: sampled-simulation fraction in (0, 1): sampleable workloads run
    #: shortened (see :mod:`repro.harness.sampling`) and return extrapolated
    #: metrics with error bounds.  Forces the cache off and the local
    #: single-worker path — approximations are never stored.
    sampling: Optional[float] = None
    #: telemetry output directory (``--telemetry DIR``): the CLI enables
    #: the :mod:`repro.telemetry` bus for the whole command and exports
    #: the event log + snapshot there.  None = telemetry off (default).
    telemetry: Optional[str] = None
    #: run the determinism sanitizer (``--sanitize``): simulators record
    #: per-cycle access sets and flag same-cycle ordering hazards.  Forces
    #: the cache off (the debug run must actually execute) and the local
    #: single-worker path (worker subprocesses would not share the
    #: process-local sanitizer session).
    sanitize: bool = False

    # Back-compat alias: PR-2 called worker processes "jobs".
    @property
    def jobs(self) -> int:
        return self.workers

    def resolved_cache_dir(self) -> Path:
        return Path(
            self.cache_dir
            or os.environ.get("REPRO_CACHE_DIR", ".repro-cache")
        )

    def resolved_store_url(self) -> str:
        return self.store or f"dir:{self.resolved_cache_dir()}"


_OPTIONS = ExecutionOptions()

#: ExecutionOptions fields settable through the helpers below.
_OPTION_FIELDS = ("workers", "cache", "cache_dir", "store", "worker_id",
                  "lease_ttl", "sampling", "telemetry", "sanitize")


def set_execution_options(jobs: Optional[int] = None,
                          cache: Optional[bool] = None,
                          cache_dir: Optional[str] = None,
                          store: Optional[str] = None,
                          worker_id: Optional[str] = None,
                          lease_ttl: Optional[float] = None,
                          workers: Optional[int] = None,
                          sampling: Optional[float] = None,
                          telemetry: Optional[str] = None,
                          sanitize: Optional[bool] = None) -> None:
    if workers is None:
        workers = jobs
    if workers is not None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        _OPTIONS.workers = workers
    if cache is not None:
        _OPTIONS.cache = cache
    if cache_dir is not None:
        _OPTIONS.cache_dir = cache_dir
    if store is not None:
        _OPTIONS.store = store or None
    if worker_id is not None:
        _OPTIONS.worker_id = worker_id or None
    if lease_ttl is not None:
        if lease_ttl <= 0:
            raise ValueError("lease_ttl must be > 0")
        _OPTIONS.lease_ttl = lease_ttl
    if sampling is not None:
        # 0 (or any falsy value) means "turn sampling back off".
        if not sampling:
            _OPTIONS.sampling = None
        else:
            if not 0.0 < sampling < 1.0:
                raise ValueError("sampling fraction must be in (0, 1)")
            _OPTIONS.sampling = float(sampling)
    if telemetry is not None:
        _OPTIONS.telemetry = telemetry or None
    if sanitize is not None:
        _OPTIONS.sanitize = sanitize


def get_execution_options() -> ExecutionOptions:
    return _OPTIONS


@contextlib.contextmanager
def execution_options(jobs: Optional[int] = None, cache: Optional[bool] = None,
                      cache_dir: Optional[str] = None,
                      store: Optional[str] = None,
                      worker_id: Optional[str] = None,
                      lease_ttl: Optional[float] = None,
                      workers: Optional[int] = None,
                      sampling: Optional[float] = None,
                      telemetry: Optional[str] = None,
                      sanitize: Optional[bool] = None):
    """Temporarily override the active execution policy."""
    previous = replace(_OPTIONS)
    try:
        set_execution_options(jobs=jobs, cache=cache, cache_dir=cache_dir,
                              store=store, worker_id=worker_id,
                              lease_ttl=lease_ttl, workers=workers,
                              sampling=sampling, telemetry=telemetry,
                              sanitize=sanitize)
        yield _OPTIONS
    finally:
        for name in _OPTION_FIELDS:
            setattr(_OPTIONS, name, getattr(previous, name))


# ----------------------------------------------------------------------
# Stats (lets the CLI and tests observe hit/miss/reclaim behaviour)
# ----------------------------------------------------------------------
@dataclass
class RunnerStats:
    """Counters accumulated across run_specs calls (reset explicitly)."""

    requested: int = 0
    executed: int = 0
    cache_hits: int = 0
    deduplicated: int = 0
    #: expired leases taken over from crashed/wedged workers.
    reclaimed: int = 0
    #: specs another cooperating worker completed while we were draining.
    completed_elsewhere: int = 0
    sweeps: List[str] = field(default_factory=list)

    def reset(self) -> None:
        self.requested = 0
        self.executed = 0
        self.cache_hits = 0
        self.deduplicated = 0
        self.reclaimed = 0
        self.completed_elsewhere = 0
        self.sweeps.clear()

    def summary(self) -> str:
        text = (
            f"{self.requested} runs: {self.executed} simulated, "
            f"{self.cache_hits} served from cache"
        )
        if self.completed_elsewhere:
            text += f", {self.completed_elsewhere} completed by other workers"
        if self.deduplicated:
            text += f", {self.deduplicated} deduplicated"
        if self.reclaimed:
            text += f", {self.reclaimed} leases reclaimed"
        return text


STATS = RunnerStats()


# ----------------------------------------------------------------------
# Single-spec execution (must be a top-level function: workers pickle
# only the RunSpec, which is plain data)
# ----------------------------------------------------------------------
@contextlib.contextmanager
def _scale_env(scale: str):
    """Pin REPRO_SCALE to the spec's captured scale for the whole run."""
    previous = os.environ.get("REPRO_SCALE")
    os.environ["REPRO_SCALE"] = scale
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("REPRO_SCALE", None)
        else:
            os.environ["REPRO_SCALE"] = previous


def execute_spec(spec: RunSpec) -> Dict:
    """Run one spec and return its store record body (kind + result).

    When the active :class:`ExecutionOptions` carry a ``sampling`` fraction
    and the spec's workload is sampleable, the run is shortened and
    extrapolated (:mod:`repro.harness.sampling`); the record then carries a
    ``"sampling"`` report and must never be cached — :func:`run_specs`
    guarantees that by forcing the cache off while sampling is active.
    Non-sampleable specs run exactly, sampling or not.
    """
    from repro.harness.sampling import run_sampled, supports_sampling

    with get_telemetry().span("spec.execute", spec=spec.describe()):
        fraction = get_execution_options().sampling
        if fraction is not None and supports_sampling(spec):
            metrics, report = run_sampled(spec, fraction)
            return {"kind": "metrics", "result": metrics.as_dict(),
                    "spec": spec.describe(), "sampling": report}
        with _scale_env(spec.scale):
            config = spec.config()
            if spec.is_measurement():
                row = spec.measurement_fn()(config, spec.mechanism,
                                            **spec.args_dict())
                return {"kind": "row", "result": dict(row),
                        "spec": spec.describe()}
            metrics = run_workload(spec.build_workload, config, spec.mechanism)
            return {"kind": "metrics", "result": metrics.as_dict(),
                    "spec": spec.describe()}


def _record_to_result(record: Dict) -> RunResult:
    if record["kind"] == "metrics":
        return RunMetrics.from_dict(record["result"])
    return dict(record["result"])


def _storable(body: Dict) -> Dict:
    """A record body fit for the content-addressed store.

    The reserved ``telemetry.*`` stats keys are host wall-clock — not
    reproducible content — so they are stripped before publishing.
    Without them, racing completions of one key stay bit-identical and
    the store's first-durable-write-wins verification holds whether the
    writers ran with telemetry on or off.
    """
    if body.get("kind") != "metrics":
        return body
    stats = body.get("result", {}).get("stats")
    if not isinstance(stats, dict):
        return body
    stripped = strip_volatile_stats(stats)
    if stripped is stats:
        return body
    return {**body, "result": {**body["result"], "stats": stripped}}


# ----------------------------------------------------------------------
# The pull-based drain (claim -> execute -> publish -> release)
# ----------------------------------------------------------------------
#: how long an idle worker sleeps before re-scanning for completed
#: results or expired leases.
DRAIN_POLL_SECONDS = 0.02


def drain(store: ResultStore, board: LeaseBoard,
          work: Dict[str, RunSpec], worker: str,
          poll: float = DRAIN_POLL_SECONDS) -> Dict[str, int]:
    """Pull specs from ``work`` until every key has a durable result.

    The loop makes no assumptions about who else is draining: any number
    of processes/hosts can run it against the same store concurrently.
    Returns this worker's counters (``executed`` / ``reclaimed`` /
    ``completed_elsewhere``).

    Observability: each spec's scan/claim/execute/put phases are telemetry
    spans, and the worker publishes a heartbeat file next to the
    LeaseBoard after every state change (``repro top`` tails those).
    """
    tel = get_telemetry()
    executed = reclaimed = elsewhere = 0
    events_done = 0
    remaining = dict(work)
    heartbeat = Heartbeat(store.root, worker) if store.root is not None \
        else None

    def beat(phase: str, current: Optional[str] = None) -> None:
        if heartbeat is not None:
            heartbeat.update(phase=phase, current=current,
                             total=len(work), remaining=len(remaining),
                             executed=executed, reclaimed=reclaimed,
                             completed_elsewhere=elsewhere,
                             kernel_events=events_done, done=not remaining)

    beat("scan")
    while remaining:
        progressed = False
        for key in list(remaining):
            with tel.span("spec.scan", key=key[:12]):
                done_elsewhere = store.get(key) is not None
            if done_elsewhere:
                del remaining[key]
                elsewhere += 1
                progressed = True
                beat("scan")
                continue
            with tel.span("spec.claim", key=key[:12]):
                lease = board.claim(key, worker)
            if lease is None:
                continue  # validly held by another worker; come back later
            if lease.reclaimed:
                reclaimed += 1
            # the result may have landed between the get and the claim
            if store.get(key) is None:
                spec = remaining[key]
                beat("execute", current=spec.describe())
                body = execute_spec(spec)
                if body.get("kind") == "metrics":
                    stats = body["result"].get("stats", {})
                    events_done += int(stats.get("kernel.events_processed", 0))
                with tel.span("spec.put", key=key[:12]):
                    store.put(key, _storable(body))
                executed += 1
                tel.gauge("sweep.remaining", len(remaining) - 1)
            else:
                elsewhere += 1
            board.release(key)
            del remaining[key]
            progressed = True
            beat("scan")
        if remaining and not progressed:
            beat("wait")
            time.sleep(poll)
    beat("done")
    return {"executed": executed, "reclaimed": reclaimed,
            "completed_elsewhere": elsewhere}


def _drain_worker(task: Tuple[str, str, float,
                              Tuple[Tuple[str, RunSpec], ...]]) -> Dict[str, int]:
    """Worker-process entry point: reopen the store by url and drain."""
    store_url, worker, lease_ttl, work = task
    store = open_store(store_url)
    board = LeaseBoard(store.root, ttl=lease_ttl)
    try:
        return drain(store, board, dict(work), worker)
    finally:
        # Forked workers inherit the parent's enabled bus; persist each
        # worker's aggregate before the pool retires the process.
        get_telemetry().export()


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _drain_parallel(store: ResultStore, work: Dict[str, RunSpec],
                    workers: int, worker_id: str,
                    lease_ttl: float) -> Dict[str, int]:
    """Fan N pull-workers out as processes; every worker sees all keys."""
    tasks = [
        (store.url(), f"{worker_id}/{i}", lease_ttl, tuple(work.items()))
        for i in range(min(workers, len(work)))
    ]
    with _pool_context().Pool(len(tasks)) as pool:
        counters = pool.map(_drain_worker, tasks, chunksize=1)
    totals = {"executed": 0, "reclaimed": 0}
    for c in counters:
        for name in totals:
            totals[name] += c[name]
    # A key our own pool executed reads as "completed elsewhere" to the
    # pool's other members; only a shortfall against the whole work list
    # means an external cooperator (another host/invocation) ran it.
    totals["completed_elsewhere"] = max(0, len(work) - totals["executed"])
    return totals


# ----------------------------------------------------------------------
# Sweep execution
# ----------------------------------------------------------------------
def run_specs(specs: Sequence[RunSpec], jobs: Optional[int] = None,
              cache: Optional[bool] = None,
              cache_dir: Optional[str] = None,
              store: Optional[str] = None,
              workers: Optional[int] = None,
              worker_id: Optional[str] = None,
              lease_ttl: Optional[float] = None) -> List[RunResult]:
    """Execute specs (deduplicated) and return results in spec order.

    All knobs default to the active :class:`ExecutionOptions` (library
    default: one worker, no cache).  ``jobs`` is the PR-2 alias for
    ``workers``.
    """
    options = get_execution_options()
    if workers is None:
        workers = jobs
    workers = options.workers if workers is None else workers
    use_cache = options.cache if cache is None else cache
    worker_id = options.worker_id if worker_id is None else (worker_id or None)
    lease_ttl = options.lease_ttl if lease_ttl is None else lease_ttl
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if options.sampling is not None:
        # Sampled runs are approximations: never let them into the durable
        # store, and keep execution in this process (worker subprocesses
        # would re-import the module and lose the sampling option).
        use_cache = False
        workers = 1
        worker_id = None
    if options.sanitize:
        # Sanitized runs are debug runs: they must actually execute (a
        # cache hit would observe nothing) and the process-local sanitizer
        # session is invisible to worker subprocesses.
        use_cache = False
        workers = 1
        worker_id = None

    keys = [spec.cache_key() for spec in specs]
    result_store: Optional[ResultStore] = None
    if use_cache:
        if store is not None:
            result_store = open_store(store)
        elif cache_dir is not None:
            result_store = open_store(directory=cache_dir)
        else:
            result_store = open_store(options.resolved_store_url())

    # Deduplicate: identical specs simulate once per sweep.  Hits are
    # materialized eagerly; a record that no longer matches the current
    # RunMetrics schema (stale cache after a code change without a
    # CACHE_FORMAT_VERSION bump) falls back to re-simulation.
    results_by_key: Dict[str, RunResult] = {}
    pending: Dict[str, RunSpec] = {}
    seen = set()
    for spec, key in zip(specs, keys):
        if key in seen:
            STATS.deduplicated += 1
            continue
        seen.add(key)
        cached = result_store.get(key) if result_store is not None else None
        if cached is not None:
            try:
                results_by_key[key] = _record_to_result(cached)
            except (TypeError, KeyError, ValueError):
                # intact entry, unreadable schema (code changed without a
                # CACHE_FORMAT_VERSION bump): drop it so the recomputed
                # result can be published without tripping the
                # bit-identity check against the stale winner.
                result_store.discard(key)
                cached = None
            else:
                STATS.cache_hits += 1
        if cached is None:
            pending[key] = spec

    coordinated = pending and (workers > 1 or worker_id is not None)
    if not coordinated:
        # Fast path: one private worker, no coordination overhead.
        for key, spec in pending.items():
            body = execute_spec(spec)
            if result_store is not None:
                result_store.put(key, _storable(body))
            # Return the locally produced body (it keeps the telemetry.*
            # keys the stored record legitimately drops); a racing winner
            # is bit-identical in everything else by the store's contract.
            results_by_key[key] = _record_to_result(body)
            STATS.executed += 1
    else:
        scratch_dir = None
        try:
            if result_store is not None and result_store.root is not None:
                drain_store = result_store
            else:
                # No durable store to coordinate through (cache off, or a
                # memory store): workers meet in an ephemeral shared dir.
                scratch_dir = tempfile.mkdtemp(prefix="repro-drain-")
                drain_store = SharedVolumeStore(scratch_dir)
            base_id = worker_id or f"pid{os.getpid()}"
            if workers > 1:
                counters = _drain_parallel(drain_store, pending, workers,
                                           base_id, lease_ttl)
            else:
                board = LeaseBoard(drain_store.root, ttl=lease_ttl)
                counters = drain(drain_store, board, pending, base_id)
            STATS.executed += counters["executed"]
            STATS.reclaimed += counters["reclaimed"]
            STATS.completed_elsewhere += counters["completed_elsewhere"]
            for key, spec in pending.items():
                record = drain_store.get(key)
                if record is None:  # pragma: no cover - drain guarantees it
                    record = drain_store.put(key, _storable(execute_spec(spec)))
                    STATS.executed += 1
                try:
                    results_by_key[key] = _record_to_result(record)
                except (TypeError, KeyError, ValueError):
                    # another (older) worker wrote a schema we can't read;
                    # recompute locally rather than fail the sweep.
                    body = execute_spec(spec)
                    results_by_key[key] = _record_to_result(body)
                    STATS.executed += 1
                    record = None
                if (record is not None and result_store is not None
                        and result_store is not drain_store):
                    result_store.put(key, record)
        finally:
            if scratch_dir is not None:
                shutil.rmtree(scratch_dir, ignore_errors=True)

    STATS.requested += len(specs)
    return [results_by_key[key] for key in keys]


def probe_specs(specs: Sequence[RunSpec], cache: Optional[bool] = None,
                cache_dir: Optional[str] = None,
                store: Optional[str] = None) -> List[str]:
    """Classify each spec against the store WITHOUT executing anything.

    Returns one status per spec, in order: ``"cached"`` (a valid result is
    already durable), ``"simulate"`` (a cold run would execute it), or
    ``"duplicate"`` (an earlier spec in the sequence shares its cache key).
    This is the ``sweep --dry-run`` backend; with caching disabled every
    non-duplicate spec reports ``"simulate"``.
    """
    options = get_execution_options()
    use_cache = options.cache if cache is None else cache
    result_store: Optional[ResultStore] = None
    if use_cache:
        if store is not None:
            result_store = open_store(store)
        elif cache_dir is not None:
            result_store = open_store(directory=cache_dir)
        else:
            result_store = open_store(options.resolved_store_url())
    statuses = []
    seen = set()
    for spec in specs:
        key = spec.cache_key()
        if key in seen:
            statuses.append("duplicate")
            continue
        seen.add(key)
        cached = result_store.get(key) if result_store is not None else None
        if cached is not None:
            try:
                _record_to_result(cached)
            except (TypeError, KeyError, ValueError):
                cached = None  # stale schema -> a real run would re-simulate
        statuses.append("cached" if cached is not None else "simulate")
    return statuses


def run_sweep(sweep: SweepSpec, jobs: Optional[int] = None,
              cache: Optional[bool] = None,
              cache_dir: Optional[str] = None,
              store: Optional[str] = None,
              workers: Optional[int] = None,
              worker_id: Optional[str] = None,
              lease_ttl: Optional[float] = None) -> List[RunResult]:
    """Execute a named sweep; results align with ``sweep.runs`` order."""
    STATS.sweeps.append(sweep.name)
    return run_specs(sweep.runs, jobs=jobs, cache=cache, cache_dir=cache_dir,
                     store=store, workers=workers, worker_id=worker_id,
                     lease_ttl=lease_ttl)
