"""Sweep execution: parallel workers + on-disk result cache.

Every harness figure and the CLI ``sweep`` subcommand funnel through
:func:`run_sweep` / :func:`run_specs`: specs are deduplicated by cache key,
cache hits are served from a JSONL file, and only the misses are simulated —
serially, or across ``jobs`` worker processes.  Because every simulation is
deterministic (explicit seeds everywhere — see
:func:`repro.workloads.base.stable_name_seed`), parallel and serial
execution produce bit-identical rows, and a warm-cache re-run executes zero
simulations.

The cache lives at ``$REPRO_CACHE_DIR/results.jsonl`` (default
``.repro-cache/``).  Keys cover the full resolved
:class:`~repro.sim.config.SystemConfig`, workload kwargs, mechanism, seed
and scale — but NOT the simulator's code, so delete the directory (or pass
``--no-cache``) after changing simulation behaviour; bumping
:data:`repro.harness.specs.CACHE_FORMAT_VERSION` does the same globally.

Caching defaults OFF for library calls (tests must never observe stale
physics) and ON in the CLI.
"""

from __future__ import annotations

import contextlib
import json
import multiprocessing
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.harness.specs import CACHE_FORMAT_VERSION, RunSpec, SweepSpec
from repro.workloads.base import RunMetrics, run_workload

#: what a run produces: RunMetrics for workload specs, a plain dict for
#: measurement specs.
RunResult = Union[RunMetrics, Dict]


# ----------------------------------------------------------------------
# Execution options (how the CLI hands --jobs/--no-cache to figure code)
# ----------------------------------------------------------------------
@dataclass
class ExecutionOptions:
    """Active sweep-execution policy; figures read it via the module state."""

    jobs: int = 1
    cache: bool = False
    cache_dir: Optional[str] = None

    def resolved_cache_dir(self) -> Path:
        return Path(
            self.cache_dir
            or os.environ.get("REPRO_CACHE_DIR", ".repro-cache")
        )


_OPTIONS = ExecutionOptions()


def set_execution_options(jobs: Optional[int] = None,
                          cache: Optional[bool] = None,
                          cache_dir: Optional[str] = None) -> None:
    if jobs is not None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        _OPTIONS.jobs = jobs
    if cache is not None:
        _OPTIONS.cache = cache
    if cache_dir is not None:
        _OPTIONS.cache_dir = cache_dir


def get_execution_options() -> ExecutionOptions:
    return _OPTIONS


@contextlib.contextmanager
def execution_options(jobs: Optional[int] = None, cache: Optional[bool] = None,
                      cache_dir: Optional[str] = None):
    """Temporarily override the active execution policy."""
    previous = ExecutionOptions(_OPTIONS.jobs, _OPTIONS.cache, _OPTIONS.cache_dir)
    try:
        set_execution_options(jobs=jobs, cache=cache, cache_dir=cache_dir)
        yield _OPTIONS
    finally:
        _OPTIONS.jobs = previous.jobs
        _OPTIONS.cache = previous.cache
        _OPTIONS.cache_dir = previous.cache_dir


# ----------------------------------------------------------------------
# Stats (lets the CLI and tests observe hit/miss behaviour)
# ----------------------------------------------------------------------
@dataclass
class RunnerStats:
    """Counters accumulated across run_specs calls (reset explicitly)."""

    requested: int = 0
    executed: int = 0
    cache_hits: int = 0
    deduplicated: int = 0
    sweeps: List[str] = field(default_factory=list)

    def reset(self) -> None:
        self.requested = 0
        self.executed = 0
        self.cache_hits = 0
        self.deduplicated = 0
        self.sweeps.clear()

    def summary(self) -> str:
        text = (
            f"{self.requested} runs: {self.executed} simulated, "
            f"{self.cache_hits} served from cache"
        )
        if self.deduplicated:
            text += f", {self.deduplicated} deduplicated"
        return text


STATS = RunnerStats()


# ----------------------------------------------------------------------
# Result cache (append-only JSONL keyed by spec hash)
# ----------------------------------------------------------------------
class ResultCache:
    """One JSONL line per completed run; malformed lines are skipped."""

    FILENAME = "results.jsonl"

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)
        self.path = self.directory / self.FILENAME
        self._records: Dict[str, Dict] = {}
        self._load()

    def _load(self) -> None:
        if not self.path.exists():
            return
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # corrupted line -> recompute, never crash
                if (
                    not isinstance(record, dict)
                    or record.get("version") != CACHE_FORMAT_VERSION
                    or "key" not in record
                    or record.get("kind") not in ("metrics", "row")
                    or not isinstance(record.get("result"), dict)
                ):
                    continue
                self._records[record["key"]] = record

    def __len__(self) -> int:
        return len(self._records)

    def get(self, key: str) -> Optional[Dict]:
        return self._records.get(key)

    def put(self, key: str, record: Dict) -> None:
        record = {"version": CACHE_FORMAT_VERSION, "key": key, **record}
        self._records[key] = record
        self.directory.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")


# ----------------------------------------------------------------------
# Single-spec execution (must be a top-level function: workers pickle
# only the RunSpec, which is plain data)
# ----------------------------------------------------------------------
@contextlib.contextmanager
def _scale_env(scale: str):
    """Pin REPRO_SCALE to the spec's captured scale for the whole run."""
    previous = os.environ.get("REPRO_SCALE")
    os.environ["REPRO_SCALE"] = scale
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("REPRO_SCALE", None)
        else:
            os.environ["REPRO_SCALE"] = previous


def execute_spec(spec: RunSpec) -> Dict:
    """Run one spec and return its cache record body (kind + result)."""
    with _scale_env(spec.scale):
        config = spec.config()
        if spec.is_measurement():
            row = spec.measurement_fn()(config, spec.mechanism, **spec.args_dict())
            return {"kind": "row", "result": dict(row),
                    "spec": spec.describe()}
        metrics = run_workload(spec.build_workload, config, spec.mechanism)
        return {"kind": "metrics", "result": metrics.as_dict(),
                "spec": spec.describe()}


def _record_to_result(record: Dict) -> RunResult:
    if record["kind"] == "metrics":
        return RunMetrics.from_dict(record["result"])
    return dict(record["result"])


# ----------------------------------------------------------------------
# Sweep execution
# ----------------------------------------------------------------------
def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def run_specs(specs: Sequence[RunSpec], jobs: Optional[int] = None,
              cache: Optional[bool] = None,
              cache_dir: Optional[str] = None) -> List[RunResult]:
    """Execute specs (deduplicated) and return results in spec order.

    ``jobs``/``cache`` default to the active :class:`ExecutionOptions`
    (library default: serial, no cache).
    """
    options = get_execution_options()
    jobs = options.jobs if jobs is None else jobs
    use_cache = options.cache if cache is None else cache
    if jobs < 1:
        raise ValueError("jobs must be >= 1")

    keys = [spec.cache_key() for spec in specs]
    store = ResultCache(cache_dir or options.resolved_cache_dir()) if use_cache else None

    # Deduplicate: identical specs simulate once per sweep.  Hits are
    # materialized eagerly; a record that no longer matches the current
    # RunMetrics schema (stale cache after a code change without a
    # CACHE_FORMAT_VERSION bump) falls back to re-simulation.
    results_by_key: Dict[str, RunResult] = {}
    pending: List[RunSpec] = []
    pending_keys: List[str] = []
    seen = set()
    for spec, key in zip(specs, keys):
        if key in seen:
            STATS.deduplicated += 1
            continue
        seen.add(key)
        cached = store.get(key) if store is not None else None
        if cached is not None:
            try:
                results_by_key[key] = _record_to_result(cached)
            except (TypeError, KeyError, ValueError):
                cached = None
            else:
                STATS.cache_hits += 1
        if cached is None:
            pending.append(spec)
            pending_keys.append(key)

    if len(pending) > 1 and jobs > 1:
        with _pool_context().Pool(min(jobs, len(pending))) as pool:
            # chunksize=1: simulation times are heavily skewed (a ts combo
            # can cost 50x a tc one), so batching chunks onto one worker
            # serializes the tail.
            bodies = pool.map(execute_spec, pending, chunksize=1)
    else:
        bodies = [execute_spec(spec) for spec in pending]

    for key, body in zip(pending_keys, bodies):
        results_by_key[key] = _record_to_result(body)
        STATS.executed += 1
        if store is not None:
            store.put(key, body)

    STATS.requested += len(specs)
    return [results_by_key[key] for key in keys]


def probe_specs(specs: Sequence[RunSpec], cache: Optional[bool] = None,
                cache_dir: Optional[str] = None) -> List[str]:
    """Classify each spec against the cache WITHOUT executing anything.

    Returns one status per spec, in order: ``"cached"`` (a valid result is
    already on disk), ``"simulate"`` (a cold run would execute it), or
    ``"duplicate"`` (an earlier spec in the sequence shares its cache key).
    This is the ``sweep --dry-run`` backend; with caching disabled every
    non-duplicate spec reports ``"simulate"``.
    """
    options = get_execution_options()
    use_cache = options.cache if cache is None else cache
    store = ResultCache(cache_dir or options.resolved_cache_dir()) if use_cache else None
    statuses = []
    seen = set()
    for spec in specs:
        key = spec.cache_key()
        if key in seen:
            statuses.append("duplicate")
            continue
        seen.add(key)
        cached = store.get(key) if store is not None else None
        if cached is not None:
            try:
                _record_to_result(cached)
            except (TypeError, KeyError, ValueError):
                cached = None  # stale schema -> a real run would re-simulate
        statuses.append("cached" if cached is not None else "simulate")
    return statuses


def run_sweep(sweep: SweepSpec, jobs: Optional[int] = None,
              cache: Optional[bool] = None,
              cache_dir: Optional[str] = None) -> List[RunResult]:
    """Execute a named sweep; results align with ``sweep.runs`` order."""
    STATS.sweeps.append(sweep.name)
    return run_specs(sweep.runs, jobs=jobs, cache=cache, cache_dir=cache_dir)
