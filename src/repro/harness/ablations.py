"""Extension experiments beyond the paper's own figures.

Each function quantifies one of the repository's extension features against
the paper's mechanisms, returning rows in the same shape as
:mod:`repro.harness.experiments`:

- :func:`spin_baselines` — the Sec. 2.2.1 argument, measured: remote-atomics
  spinning and Lamport-bakery software synchronization vs the paper's
  message-passing schemes under a contended lock.
- :func:`overflow_target_sweep` — the Sec. 4.6 conventional-system
  adaptation: ST-overflow state in DRAM vs in a shared cache.
- :func:`rwlock_read_ratio` — the reader-writer lock extension: speedup
  over a plain mutex as the read share of the operation mix grows.
- :func:`fairness_sweep` — the Sec. 4.4.2 fairness threshold: throughput
  cost vs cross-unit grant spread.

All are sweep declarations executed by :mod:`repro.harness.runner`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.harness.runner import run_sweep
from repro.harness.specs import RunSpec, SweepSpec
from repro.workloads.base import scaled

#: mechanisms the spin-baseline comparison covers, slowest first.
SPIN_COMPARISON = ("bakery", "rmw_spin", "central", "hier", "syncron", "ideal")


def spin_baselines(
    core_steps: Sequence[int] = (15, 30, 45, 60),
    mechanisms: Sequence[str] = SPIN_COMPARISON,
    interval: int = 200,
    rounds: int = None,
) -> List[Dict]:
    """Contended-lock throughput of shared-memory spinning vs messaging.

    The Sec. 2.2.1 claims, quantified: bakery pays O(N) loads per retry,
    remote atomics hammer the home unit, and both lose to hierarchical
    message passing as soon as multiple units contend.
    """
    rounds = rounds if rounds is not None else scaled(15)
    units_per_step = [max(cores // 15, 1) for cores in core_steps]
    specs = [
        RunSpec.make("primitive", mech,
                     args={"primitive": "lock", "interval": interval,
                           "rounds": rounds},
                     overrides={"num_units": units})
        for units in units_per_step
        for mech in mechanisms
    ]
    results = iter(run_sweep(SweepSpec.of("ext_spin", specs)))
    rows = []
    for cores, units in zip(core_steps, units_per_step):
        row: Dict[str, object] = {"cores": cores, "units": units}
        for mech in mechanisms:
            metrics = next(results)
            row[mech] = metrics.ops_per_second / 1e6
            row[f"{mech}_global_msgs"] = metrics.stats["sync_messages_global"]
        rows.append(row)
    return rows


def overflow_target_sweep(
    st_sizes: Sequence[int] = (8, 16, 32, 64),
    targets: Sequence[str] = ("memory", "shared_cache"),
) -> List[Dict]:
    """BST_FG throughput per overflow target and ST size (Sec. 4.6).

    Run on the DDR4 (conventional-memory) configuration, where the shared
    cache's latency advantage over a DRAM row access is what the adaptation
    banks on.
    """
    specs = [
        RunSpec.make("structure", "syncron", args={"structure": "bst_fg"},
                     overrides={"st_entries": st, "overflow_target": target,
                                "memory": "DDR4"})
        for st in st_sizes
        for target in targets
    ]
    results = iter(run_sweep(SweepSpec.of("ext_overflow", specs)))
    rows = []
    for st in st_sizes:
        row: Dict[str, object] = {"st_entries": st}
        for target in targets:
            metrics = next(results)
            row[target] = metrics.ops_per_ms
            row[f"{target}_overflow_pct"] = metrics.overflow_request_pct
        rows.append(row)
    return rows


def rwlock_read_ratio(
    read_pcts: Sequence[int] = (0, 50, 90, 100),
    mechanisms: Sequence[str] = ("syncron", "rmw_spin", "ideal"),
    rounds: int = None,
) -> List[Dict]:
    """Reader-writer lock vs plain mutex across read ratios.

    The ``mutex`` column runs the same operation mix under a plain lock
    (every operation exclusive); the rw columns grant readers concurrently.
    The gap should widen as the read share grows.
    """
    rounds = rounds if rounds is not None else scaled(15)
    specs = []
    for read_pct in read_pcts:
        specs.append(RunSpec.make(
            "rwbench", "syncron",
            args={"read_pct": read_pct, "rounds": rounds, "mutex_mode": True},
        ))
        specs.extend(
            RunSpec.make("rwbench", mech,
                         args={"read_pct": read_pct, "rounds": rounds})
            for mech in mechanisms
        )
    results = iter(run_sweep(SweepSpec.of("ext_rwlock", specs)))
    rows = []
    for read_pct in read_pcts:
        row: Dict[str, object] = {"read_pct": read_pct}
        row["mutex"] = next(results).ops_per_second / 1e6
        for mech in mechanisms:
            row[mech] = next(results).ops_per_second / 1e6
        rows.append(row)
    return rows


def unionfind_connectivity(
    datasets: Sequence[str] = ("wk", "sl"),
    mechanisms: Sequence[str] = ("syncron", "ideal"),
    edge_limit: int = None,
) -> List[Dict]:
    """Union-find edge-stream connectivity: rw lock vs mutex per dataset.

    The realistic rw-lock application: finds are read-locked pointer
    chases, unions are write-locked mutations, and dense real streams are
    read-dominated because most edges land inside an existing component.
    """
    edge_limit = edge_limit if edge_limit is not None else scaled(300)
    specs = [
        RunSpec.make("unionfind", mech,
                     args={"dataset": dataset, "edge_limit": edge_limit,
                           "mutex_mode": mutex_mode})
        for dataset in datasets
        for mech in mechanisms
        for mutex_mode in (False, True)
    ]
    results = iter(run_sweep(SweepSpec.of("ext_unionfind", specs)))
    rows = []
    for dataset in datasets:
        row: Dict[str, object] = {"dataset": dataset}
        for mech in mechanisms:
            rw = next(results)
            mutex = next(results)
            row[f"{mech}_rw_ops_ms"] = rw.ops_per_ms
            row[f"{mech}_mutex_ops_ms"] = mutex.ops_per_ms
            row[f"{mech}_rw_speedup"] = mutex.cycles / rw.cycles
        rows.append(row)
    return rows


def fairness_sweep(
    thresholds: Sequence[int] = (0, 1, 4, 16),
    rounds: int = None,
) -> List[Dict]:
    """Throughput vs cross-unit fairness as the Sec. 4.4.2 threshold varies.

    ``unit_finish_spread`` is the gap between the first and last unit to
    finish (in cycles): without fairness transfers, the lock's home unit
    hogs it and remote units finish late.
    """
    rounds = rounds if rounds is not None else scaled(20)
    specs = [
        RunSpec.make("fairness", "syncron", args={"rounds": rounds},
                     overrides={"num_units": 2, "fairness_threshold": threshold})
        for threshold in thresholds
    ]
    results = iter(run_sweep(SweepSpec.of("ext_fairness", specs)))
    rows = []
    for threshold in thresholds:
        point = next(results)
        rows.append({"threshold": threshold, **point})
    return rows


def smt_sweep(
    thread_counts: Sequence[int] = (1, 2, 4),
    rounds_per_core: int = 48,
    mechanisms: Sequence[str] = ("syncron", "ideal"),
) -> List[Dict]:
    """Hardware thread contexts per core (Sec. 4's SMT note), measured.

    Fixed total work per *physical* core, split across its contexts:
    makespan should drop as contexts overlap their synchronization and
    memory stalls, saturating once the shared pipeline (1 IPC) becomes
    the bottleneck.
    """
    specs = [
        RunSpec.make("smt", mech, args={"rounds_per_core": rounds_per_core},
                     overrides={"num_units": 2, "threads_per_core": threads})
        for threads in thread_counts
        for mech in mechanisms
    ]
    results = iter(run_sweep(SweepSpec.of("ext_smt", specs)))
    rows = []
    for threads in thread_counts:
        row: Dict[str, object] = {"threads_per_core": threads}
        for mech in mechanisms:
            row[mech] = next(results)["makespan"]
        rows.append(row)
    return rows


def se_vs_server_latency(
    se_cycles: Sequence[int] = (3, 12, 24, 48, 96),
) -> List[Dict]:
    """How slow can the SE get before it degenerates into Hier?

    Sweeps the SPU's per-message service time on a contended stack and
    reports where SynCron's advantage over the software server disappears —
    the ablation DESIGN.md calls out for the paper's 12-cycle choice.
    """
    specs = [
        RunSpec.make("structure", mech, args={"structure": "stack"},
                     overrides={"se_service_se_cycles": cycles})
        for cycles in se_cycles
        for mech in ("syncron", "hier")
    ]
    results = iter(run_sweep(SweepSpec.of("ext_se_knee", specs)))
    rows = []
    for cycles in se_cycles:
        syncron = next(results)
        hier = next(results)
        rows.append({
            "se_service_cycles": cycles,
            "syncron_ops_ms": syncron.ops_per_ms,
            "hier_ops_ms": hier.ops_per_ms,
            "syncron_vs_hier": hier.cycles / syncron.cycles,
        })
    return rows
