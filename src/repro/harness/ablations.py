"""Extension experiments beyond the paper's own figures.

Each function quantifies one of the repository's extension features against
the paper's mechanisms, returning rows in the same shape as
:mod:`repro.harness.experiments`:

- :func:`spin_baselines` — the Sec. 2.2.1 argument, measured: remote-atomics
  spinning and Lamport-bakery software synchronization vs the paper's
  message-passing schemes under a contended lock.
- :func:`overflow_target_sweep` — the Sec. 4.6 conventional-system
  adaptation: ST-overflow state in DRAM vs in a shared cache.
- :func:`rwlock_read_ratio` — the reader-writer lock extension: speedup
  over a plain mutex as the read share of the operation mix grows.
- :func:`fairness_sweep` — the Sec. 4.4.2 fairness threshold: throughput
  cost vs cross-unit grant spread.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core import api
from repro.sim.config import DDR4, ndp_2_5d
from repro.sim.program import Compute
from repro.sim.system import NDPSystem
from repro.workloads.base import run_workload, scaled
from repro.workloads.datastructures import BSTFineGrainedWorkload, StackWorkload
from repro.workloads.microbench import PrimitiveMicrobench
from repro.workloads.rwbench import RWLockMicrobench

#: mechanisms the spin-baseline comparison covers, slowest first.
SPIN_COMPARISON = ("bakery", "rmw_spin", "central", "hier", "syncron", "ideal")


def spin_baselines(
    core_steps: Sequence[int] = (15, 30, 45, 60),
    mechanisms: Sequence[str] = SPIN_COMPARISON,
    interval: int = 200,
    rounds: int = None,
) -> List[Dict]:
    """Contended-lock throughput of shared-memory spinning vs messaging.

    The Sec. 2.2.1 claims, quantified: bakery pays O(N) loads per retry,
    remote atomics hammer the home unit, and both lose to hierarchical
    message passing as soon as multiple units contend.
    """
    rounds = rounds if rounds is not None else scaled(15)
    rows = []
    for cores in core_steps:
        units = max(cores // 15, 1)
        config = ndp_2_5d(num_units=units)
        row: Dict[str, object] = {"cores": cores, "units": units}
        for mech in mechanisms:
            metrics = run_workload(
                lambda: PrimitiveMicrobench("lock", interval, rounds=rounds),
                config, mech,
            )
            row[mech] = metrics.ops_per_second / 1e6
            row[f"{mech}_global_msgs"] = metrics.stats["sync_messages_global"]
        rows.append(row)
    return rows


def overflow_target_sweep(
    st_sizes: Sequence[int] = (8, 16, 32, 64),
    targets: Sequence[str] = ("memory", "shared_cache"),
) -> List[Dict]:
    """BST_FG throughput per overflow target and ST size (Sec. 4.6).

    Run on the DDR4 (conventional-memory) configuration, where the shared
    cache's latency advantage over a DRAM row access is what the adaptation
    banks on.
    """
    rows = []
    for st in st_sizes:
        row: Dict[str, object] = {"st_entries": st}
        for target in targets:
            config = ndp_2_5d(st_entries=st, overflow_target=target, memory=DDR4)
            metrics = run_workload(BSTFineGrainedWorkload, config, "syncron")
            row[target] = metrics.ops_per_ms
            row[f"{target}_overflow_pct"] = metrics.overflow_request_pct
        rows.append(row)
    return rows


def rwlock_read_ratio(
    read_pcts: Sequence[int] = (0, 50, 90, 100),
    mechanisms: Sequence[str] = ("syncron", "rmw_spin", "ideal"),
    rounds: int = None,
) -> List[Dict]:
    """Reader-writer lock vs plain mutex across read ratios.

    The ``mutex`` column runs the same operation mix under a plain lock
    (every operation exclusive); the rw columns grant readers concurrently.
    The gap should widen as the read share grows.
    """
    rounds = rounds if rounds is not None else scaled(15)
    config = ndp_2_5d()
    rows = []
    for read_pct in read_pcts:
        row: Dict[str, object] = {"read_pct": read_pct}
        mutex = run_workload(
            lambda: RWLockMicrobench(
                read_pct=read_pct, rounds=rounds, mutex_mode=True
            ),
            config, "syncron",
        )
        row["mutex"] = mutex.ops_per_second / 1e6
        for mech in mechanisms:
            metrics = run_workload(
                lambda: RWLockMicrobench(read_pct=read_pct, rounds=rounds),
                config, mech,
            )
            row[mech] = metrics.ops_per_second / 1e6
        rows.append(row)
    return rows


def unionfind_connectivity(
    datasets: Sequence[str] = ("wk", "sl"),
    mechanisms: Sequence[str] = ("syncron", "ideal"),
    edge_limit: int = None,
) -> List[Dict]:
    """Union-find edge-stream connectivity: rw lock vs mutex per dataset.

    The realistic rw-lock application: finds are read-locked pointer
    chases, unions are write-locked mutations, and dense real streams are
    read-dominated because most edges land inside an existing component.
    """
    from repro.workloads.unionfind import UnionFindWorkload

    edge_limit = edge_limit if edge_limit is not None else scaled(300)
    config = ndp_2_5d()
    rows = []
    for dataset in datasets:
        row: Dict[str, object] = {"dataset": dataset}
        for mech in mechanisms:
            rw = run_workload(
                lambda: UnionFindWorkload(dataset, edge_limit=edge_limit),
                config, mech,
            )
            mutex = run_workload(
                lambda: UnionFindWorkload(dataset, mutex_mode=True,
                                          edge_limit=edge_limit),
                config, mech,
            )
            row[f"{mech}_rw_ops_ms"] = rw.ops_per_ms
            row[f"{mech}_mutex_ops_ms"] = mutex.ops_per_ms
            row[f"{mech}_rw_speedup"] = mutex.cycles / rw.cycles
        rows.append(row)
    return rows


def fairness_sweep(
    thresholds: Sequence[int] = (0, 1, 4, 16),
    rounds: int = None,
) -> List[Dict]:
    """Throughput vs cross-unit fairness as the Sec. 4.4.2 threshold varies.

    ``unit_finish_spread`` is the gap between the first and last unit to
    finish (in cycles): without fairness transfers, the lock's home unit
    hogs it and remote units finish late.
    """
    rounds = rounds if rounds is not None else scaled(20)
    rows = []
    for threshold in thresholds:
        config = ndp_2_5d(num_units=2, fairness_threshold=threshold)
        system = NDPSystem(config, mechanism="syncron")
        lock = system.create_syncvar(unit=0, name="fair")
        state = {"count": 0}

        def worker():
            for _ in range(rounds):
                yield api.lock_acquire(lock)
                state["count"] += 1
                yield Compute(40)
                yield api.lock_release(lock)

        makespan = system.run_programs(
            {core.core_id: worker() for core in system.cores}
        )
        unit_finish = {
            unit: max(
                core.finish_time for core in system.cores_in_unit(unit)
            )
            for unit in range(config.num_units)
        }
        rows.append({
            "threshold": threshold,
            "makespan": makespan,
            "unit_finish_spread": max(unit_finish.values()) - min(unit_finish.values()),
            "acquires": state["count"],
        })
    return rows


def smt_sweep(
    thread_counts: Sequence[int] = (1, 2, 4),
    rounds_per_core: int = 48,
    mechanisms: Sequence[str] = ("syncron", "ideal"),
) -> List[Dict]:
    """Hardware thread contexts per core (Sec. 4's SMT note), measured.

    Fixed total work per *physical* core, split across its contexts:
    makespan should drop as contexts overlap their synchronization and
    memory stalls, saturating once the shared pipeline (1 IPC) becomes
    the bottleneck.
    """
    rows = []
    for threads in thread_counts:
        config = ndp_2_5d(num_units=2, threads_per_core=threads)
        row: Dict[str, object] = {"threads_per_core": threads}
        for mech in mechanisms:
            system = NDPSystem(config, mechanism=mech)
            lock = system.create_syncvar(unit=0, name="smt")
            rounds = max(rounds_per_core // threads, 1)

            def worker():
                for _ in range(rounds):
                    yield api.lock_acquire(lock)
                    yield Compute(5)
                    yield api.lock_release(lock)
                    yield Compute(120)

            makespan = system.run_programs(
                {core.core_id: worker() for core in system.cores}
            )
            row[mech] = makespan
        rows.append(row)
    return rows


def se_vs_server_latency(
    se_cycles: Sequence[int] = (3, 12, 24, 48, 96),
) -> List[Dict]:
    """How slow can the SE get before it degenerates into Hier?

    Sweeps the SPU's per-message service time on a contended stack and
    reports where SynCron's advantage over the software server disappears —
    the ablation DESIGN.md calls out for the paper's 12-cycle choice.
    """
    rows = []
    for cycles in se_cycles:
        config = ndp_2_5d(se_service_se_cycles=cycles)
        syncron = run_workload(StackWorkload, config, "syncron")
        hier = run_workload(StackWorkload, config, "hier")
        rows.append({
            "se_service_cycles": cycles,
            "syncron_ops_ms": syncron.ops_per_ms,
            "hier_ops_ms": hier.ops_per_ms,
            "syncron_vs_hier": hier.cycles / syncron.cycles,
        })
    return rows
