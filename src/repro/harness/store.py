"""Content-addressed result store: pluggable backends + lease coordination.

Every completed simulation is stored as ONE immutable object keyed by the
spec's SHA-256 cache key (:meth:`repro.harness.specs.RunSpec.cache_key`).
Three backends implement the same :class:`ResultStore` interface:

- :class:`MemoryStore` (``memory:``) — a plain dict; tests and throwaway
  sweeps.
- :class:`ShardedDirStore` (``dir:PATH``) — one JSON file per entry under
  ``objects/<first-2-hex>/<key>.json`` (256-way hash-prefix fan-out).
  Writes are atomic (temp file + ``os.link``), so readers never observe a
  torn entry; a corrupted file is *quarantined* (moved aside and
  recomputed), never a whole-cache loss the way one bad ``results.jsonl``
  line region used to be.
- :class:`SharedVolumeStore` (``shared:PATH``) — the same layout hardened
  for concurrent writers from different processes/hosts on one shared
  volume: per-shard ``flock`` serialization around the publish step plus
  directory fsyncs so a completed entry is durable before its lease is
  released.

Duplicate completion of the same key is resolved deterministically: the
FIRST durable write wins (``os.link`` onto the final name fails for
everyone else), and later writers verify their result is bit-identical to
the winner — any mismatch raises :class:`StoreIntegrityError`, because two
byte-different results for one spec hash means the simulator broke its
determinism contract.

A store opened on a directory containing the legacy PR-2 ``results.jsonl``
ingests every valid record into the sharded layout transparently and
renames the file to ``results.jsonl.migrated`` (``repro cache migrate``
does the same explicitly and reports counts).

Work distribution uses the sibling :class:`LeaseBoard`: a claim /
lease-expiry / complete protocol on lease files next to the objects, so N
worker processes (or hosts) can drain one sweep matrix cooperatively with
exactly-once execution — see :mod:`repro.harness.runner`.
"""

from __future__ import annotations

import hashlib
import json
import os
import string
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.harness.specs import CACHE_FORMAT_VERSION
from repro.telemetry import get_telemetry

LEGACY_FILENAME = "results.jsonl"
OBJECTS_DIR = "objects"
QUARANTINE_DIR = "quarantine"
LEASES_DIR = "leases"
LOCKS_DIR = "locks"
HEARTBEATS_DIR = "heartbeats"
SHARD_CHARS = 2

#: record kinds the runner produces (RunMetrics vs measurement rows).
RECORD_KINDS = ("metrics", "row")

_HEX = set(string.hexdigits.lower())


class StoreError(Exception):
    """Misuse of the store layer (bad key, unknown backend, ...)."""


class StoreIntegrityError(StoreError):
    """Two byte-different results were produced for one content key."""


# ----------------------------------------------------------------------
# Records
# ----------------------------------------------------------------------
def canonical_bytes(record: Dict) -> bytes:
    """The ONE serialized form of a record (bit-identity comparisons)."""
    return json.dumps(record, sort_keys=True, separators=(",", ":")).encode("utf-8")


def payload_digest(record: Dict) -> str:
    """SHA-256 over the result payload (everything but the envelope)."""
    payload = {k: v for k, v in record.items()
               if k not in ("version", "key", "digest")}
    return hashlib.sha256(canonical_bytes(payload)).hexdigest()


def normalize_record(key: str, body: Dict) -> Dict:
    """Body (kind/result/spec) -> full self-verifying record."""
    payload = {k: v for k, v in body.items()
               if k not in ("version", "key", "digest")}
    record = {"version": CACHE_FORMAT_VERSION, "key": key, **payload}
    record["digest"] = payload_digest(record)
    return record


def record_status(record, key: Optional[str] = None) -> str:
    """Classify a decoded record: ``"ok"`` / ``"stale"`` / ``"corrupt"``.

    ``stale`` means shape-valid but written under another
    :data:`CACHE_FORMAT_VERSION` (``gc`` drops these); everything
    unusable for any version is ``corrupt`` (quarantined on sight).
    """
    if (
        not isinstance(record, dict)
        or record.get("kind") not in RECORD_KINDS
        or not isinstance(record.get("result"), dict)
        or not isinstance(record.get("key"), str)
    ):
        return "corrupt"
    if key is not None and record["key"] != key:
        return "corrupt"
    if "digest" in record and record["digest"] != payload_digest(record):
        return "corrupt"
    if record.get("version") != CACHE_FORMAT_VERSION:
        return "stale"
    return "ok"


def check_key(key: str) -> str:
    """Keys are spec hashes; they double as filenames, so be strict."""
    if not isinstance(key, str) or len(key) < 8 or not set(key) <= _HEX:
        raise StoreError(f"not a content key (hex digest expected): {key!r}")
    return key


# ----------------------------------------------------------------------
# Interface
# ----------------------------------------------------------------------
class ResultStore:
    """Content-addressed result storage; all backends share this API."""

    scheme: str = "abstract"
    #: directory a LeaseBoard can coordinate in (None = cannot coordinate
    #: across processes, e.g. the in-memory backend).
    root: Optional[Path] = None

    def get(self, key: str) -> Optional[Dict]:
        """The valid current-version record for ``key``, or None."""
        raise NotImplementedError

    def put(self, key: str, body: Dict) -> Dict:
        """Durably publish ``body`` under ``key``; returns the WINNING
        record (first durable write wins; a racing loser verifies
        bit-identity and adopts the winner)."""
        raise NotImplementedError

    def discard(self, key: str) -> None:
        """Drop ``key``'s entry (e.g. its schema is unreadable to this
        code version and the caller is about to recompute it)."""
        raise NotImplementedError

    def keys(self) -> Iterator[str]:
        raise NotImplementedError

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def url(self) -> str:
        """A spec string that reopens this store (workers cross process
        boundaries with it)."""
        return f"{self.scheme}:{self.root}" if self.root else f"{self.scheme}:"

    # -- maintenance (the `repro cache` surface) -----------------------
    def stats(self) -> Dict:
        raise NotImplementedError

    def verify(self) -> Dict:
        raise NotImplementedError

    def gc(self) -> Dict:
        raise NotImplementedError


class MemoryStore(ResultStore):
    """Dict-backed store: tests and single-process throwaway sweeps."""

    scheme = "memory"

    def __init__(self):
        self._records: Dict[str, Dict] = {}

    def get(self, key: str) -> Optional[Dict]:
        record = self._records.get(check_key(key))
        if record is None or record_status(record, key) != "ok":
            get_telemetry().count("store.misses")
            return None
        get_telemetry().count("store.hits")
        return record

    def put(self, key: str, body: Dict) -> Dict:
        record = normalize_record(check_key(key), body)
        existing = self._records.get(key)
        if existing is not None and record_status(existing, key) == "ok":
            if canonical_bytes(existing) != canonical_bytes(record):
                raise StoreIntegrityError(
                    f"duplicate completion of {key} is not bit-identical "
                    f"to the stored winner"
                )
            get_telemetry().count("store.duplicates_verified")
            return existing
        self._records[key] = record
        get_telemetry().count("store.publishes")
        return record

    def discard(self, key: str) -> None:
        self._records.pop(check_key(key), None)

    def keys(self) -> Iterator[str]:
        return iter(list(self._records))

    def stats(self) -> Dict:
        ok = sum(1 for r in self._records.values()
                 if record_status(r) == "ok")
        return {"backend": self.scheme, "entries": ok,
                "stale": len(self._records) - ok,
                "bytes": sum(len(canonical_bytes(r))
                             for r in self._records.values()),
                "shards": 0, "quarantined": 0}

    def verify(self) -> Dict:
        ok = stale = 0
        corrupt: List[str] = []
        for key, record in list(self._records.items()):
            status = record_status(record, key)
            if status == "ok":
                ok += 1
            elif status == "stale":
                stale += 1
            else:
                corrupt.append(key)
                del self._records[key]
        return {"checked": ok + stale + len(corrupt), "ok": ok,
                "stale": stale, "corrupt": corrupt,
                "quarantined": len(corrupt),
                "quarantine_total": len(corrupt)}

    def gc(self) -> Dict:
        stale = [k for k, r in self._records.items()
                 if record_status(r, k) == "stale"]
        for key in stale:
            del self._records[key]
        return {"stale_removed": len(stale), "tmp_removed": 0,
                "leases_removed": 0}


# ----------------------------------------------------------------------
# Sharded local-directory backend
# ----------------------------------------------------------------------
class ShardedDirStore(ResultStore):
    """Hash-prefix sharded directory of one-JSON-file-per-result objects."""

    scheme = "dir"
    #: .tmp files older than this are presumed abandoned (gc removes them).
    TMP_MAX_AGE_SECONDS = 300.0

    def __init__(self, root: Union[str, Path], migrate_legacy: bool = True):
        self.root = Path(root)
        self._memo: Dict[str, Dict] = {}
        self.quarantined = 0      # this process, lifetime
        self.migrated = 0
        self.verified_duplicates = 0
        if migrate_legacy:
            self.migrated = self.ingest_jsonl(self.root / LEGACY_FILENAME,
                                              rename=True, missing_ok=True)

    # -- paths ---------------------------------------------------------
    def _objects(self) -> Path:
        return self.root / OBJECTS_DIR

    def _path(self, key: str) -> Path:
        return self._objects() / key[:SHARD_CHARS] / f"{key}.json"

    def path_for(self, key: str) -> Path:
        """Where ``key``'s entry lives (tests, tooling; may not exist)."""
        return self._path(check_key(key))

    def _quarantine(self, path: Path) -> None:
        """Move a damaged file aside (never delete data, never crash)."""
        dest_dir = self.root / QUARANTINE_DIR
        dest_dir.mkdir(parents=True, exist_ok=True)
        dest = dest_dir / path.name
        n = 0
        while dest.exists():
            n += 1
            dest = dest_dir / f"{path.name}.{n}"
        try:
            os.replace(path, dest)
            self.quarantined += 1
            tel = get_telemetry()
            tel.count("store.quarantines")
            tel.event("store.quarantine", path=str(path))
        except FileNotFoundError:
            pass  # another process beat us to it

    # -- read ----------------------------------------------------------
    def _read(self, key: str) -> Tuple[Optional[Dict], str]:
        """(record, status) for the on-disk entry; ("missing") if absent."""
        path = self._path(key)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            return None, "missing"
        try:
            record = json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None, "corrupt"
        return record, record_status(record, key)

    def get(self, key: str) -> Optional[Dict]:
        check_key(key)
        memo = self._memo.get(key)
        if memo is not None:
            get_telemetry().count("store.hits")
            return memo
        record, status = self._read(key)
        if status == "ok":
            self._memo[key] = record
            get_telemetry().count("store.hits")
            return record
        if status == "corrupt":
            self._quarantine(self._path(key))
        get_telemetry().count("store.misses")
        return None  # missing / stale / corrupt all mean "recompute"

    def discard(self, key: str) -> None:
        self._memo.pop(check_key(key), None)
        try:
            os.unlink(self._path(key))
        except FileNotFoundError:
            pass

    # -- write ---------------------------------------------------------
    def _publish(self, tmp: Path, final: Path) -> bool:
        """Atomically give ``tmp``'s bytes the final name; False if the
        name is already taken (first durable write won)."""
        try:
            os.link(tmp, final)
        except FileExistsError:
            return False
        except OSError:
            # filesystem without hard links: os.replace is still atomic,
            # and racing writers of one key write identical bytes.
            os.replace(tmp, final)
            return True
        return True

    def _dir_sync(self, directory: Path) -> None:
        """Hook: the shared-volume backend fsyncs directory entries."""

    def _locked_shard(self, shard_dir: Path):
        """Hook: the shared-volume backend flocks the shard around
        publish; locally, atomic link is already enough."""
        import contextlib
        return contextlib.nullcontext()

    def put(self, key: str, body: Dict) -> Dict:
        tel = get_telemetry()
        if not tel.enabled:
            return self._put(key, body)
        t0 = time.perf_counter()
        try:
            return self._put(key, body)
        finally:
            tel.observe("store.publish_seconds", time.perf_counter() - t0)

    def _put(self, key: str, body: Dict) -> Dict:
        record = normalize_record(check_key(key), body)
        data = canonical_bytes(record) + b"\n"
        final = self._path(key)
        shard_dir = final.parent
        shard_dir.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(prefix=".tmp-", dir=shard_dir)
        tmp = Path(tmp_name)
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
                fh.flush()
                os.fsync(fh.fileno())
            while True:
                with self._locked_shard(shard_dir):
                    if self._publish(tmp, final):
                        self._dir_sync(shard_dir)
                        self._memo[key] = record
                        get_telemetry().count("store.publishes")
                        return record
                    existing, status = self._read(key)
                    if status == "ok":
                        # first durable write won; verify bit-identity.
                        if canonical_bytes(existing) != canonical_bytes(record):
                            raise StoreIntegrityError(
                                f"duplicate completion of {key} is not "
                                f"bit-identical to the stored winner "
                                f"({final})"
                            )
                        self.verified_duplicates += 1
                        get_telemetry().count("store.duplicates_verified")
                        self._memo[key] = existing
                        return existing
                    if status == "stale":
                        # current-version result supersedes an old-version
                        # entry (racing writers produce identical bytes).
                        os.replace(tmp, final)
                        self._dir_sync(shard_dir)
                        self._memo[key] = record
                        get_telemetry().count("store.publishes")
                        return record
                    if status == "corrupt":
                        self._quarantine(final)
                        continue  # name free again -> retry the link
                    # "missing": quarantined/removed under us -> retry
        finally:
            try:
                os.unlink(tmp)
            except FileNotFoundError:
                pass

    # -- enumeration / maintenance -------------------------------------
    def _entry_paths(self) -> Iterator[Path]:
        objects = self._objects()
        if not objects.is_dir():
            return
        for shard in sorted(p for p in objects.iterdir() if p.is_dir()):
            for path in sorted(shard.iterdir()):
                if path.name.endswith(".json") and not path.name.startswith("."):
                    yield path

    def keys(self) -> Iterator[str]:
        for path in self._entry_paths():
            yield path.name[:-len(".json")]

    def stats(self) -> Dict:
        entries = stale = corrupt = total_bytes = 0
        shards = set()
        for path in self._entry_paths():
            shards.add(path.parent.name)
            try:
                total_bytes += path.stat().st_size
            except FileNotFoundError:
                continue
            record, status = self._read(path.name[:-len(".json")])
            if status == "ok":
                entries += 1
            elif status == "stale":
                stale += 1
            else:
                corrupt += 1
        quarantine = self.root / QUARANTINE_DIR
        quarantined = (sum(1 for _ in quarantine.iterdir())
                       if quarantine.is_dir() else 0)
        board = LeaseBoard(self.root)
        return {"backend": self.scheme, "root": str(self.root),
                "entries": entries, "stale": stale, "corrupt": corrupt,
                "bytes": total_bytes, "shards": len(shards),
                "quarantined": quarantined, "leases": board.active(),
                "migrated_legacy": self.migrated}

    def verify(self) -> Dict:
        """Re-hash every entry; quarantine anything that fails."""
        ok = stale = 0
        corrupt: List[str] = []
        for path in list(self._entry_paths()):
            key = path.name[:-len(".json")]
            record, status = self._read(key)
            if status == "ok":
                ok += 1
            elif status == "stale":
                stale += 1
            elif status != "missing":
                corrupt.append(key)
                self._quarantine(path)
                self._memo.pop(key, None)
        quarantine = self.root / QUARANTINE_DIR
        total = (sum(1 for _ in quarantine.iterdir())
                 if quarantine.is_dir() else 0)
        return {"checked": ok + stale + len(corrupt), "ok": ok,
                "stale": stale, "corrupt": corrupt,
                "quarantined": len(corrupt),
                "quarantine_total": total}

    def gc(self) -> Dict:
        """Drop stale-version entries, abandoned temp files, dead leases."""
        stale_removed = tmp_removed = 0
        now = time.time()
        objects = self._objects()
        if objects.is_dir():
            for shard in list(objects.iterdir()):
                if not shard.is_dir():
                    continue
                for path in list(shard.iterdir()):
                    if path.name.startswith(".tmp-"):
                        try:
                            if now - path.stat().st_mtime > self.TMP_MAX_AGE_SECONDS:
                                path.unlink()
                                tmp_removed += 1
                        except FileNotFoundError:
                            pass
                        continue
                    if not path.name.endswith(".json"):
                        continue
                    key = path.name[:-len(".json")]
                    _record, status = self._read(key)
                    if status == "stale":
                        try:
                            path.unlink()
                            stale_removed += 1
                        except FileNotFoundError:
                            pass
                        self._memo.pop(key, None)
                try:
                    shard.rmdir()  # only succeeds when emptied
                except OSError:
                    pass
        leases_removed = LeaseBoard(self.root).sweep()
        return {"stale_removed": stale_removed, "tmp_removed": tmp_removed,
                "leases_removed": leases_removed}

    # -- legacy migration ----------------------------------------------
    def ingest_jsonl(self, path: Union[str, Path], rename: bool = False,
                     missing_ok: bool = False) -> int:
        """Ingest a PR-2 append-only ``results.jsonl`` into the sharded
        layout (valid current-version lines only; the rest is exactly the
        damage this store exists to contain).  With ``rename`` the source
        is atomically renamed to ``<name>.migrated`` afterwards, so the
        migration happens once even with concurrent openers."""
        path = Path(path)
        try:
            lines = path.read_text(encoding="utf-8").splitlines()
        except FileNotFoundError:
            if missing_ok:
                return 0
            raise StoreError(f"no legacy result file at {path}")
        ingested = 0
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if record_status(record) != "ok":
                continue
            key = record["key"]
            try:
                check_key(key)
            except StoreError:
                continue
            if self.get(key) is None:
                self.put(key, record)
                ingested += 1
        if rename:
            try:
                os.replace(path, path.with_name(path.name + ".migrated"))
            except FileNotFoundError:
                pass  # concurrent opener already renamed it
        return ingested


class SharedVolumeStore(ShardedDirStore):
    """Sharded store hardened for concurrent writers on a shared volume.

    Adds per-shard ``flock`` serialization around the publish step (kept
    on lock files under ``locks/``, so NFS-style volumes that support
    POSIX locks serialize racing hosts) and directory fsyncs, so a
    result is durable on the volume before the runner releases its lease.
    """

    scheme = "shared"

    def _locked_shard(self, shard_dir: Path):
        lock_dir = self.root / LOCKS_DIR
        lock_dir.mkdir(parents=True, exist_ok=True)
        return _flocked(lock_dir / f"{shard_dir.name}.lock")

    def _dir_sync(self, directory: Path) -> None:
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)


class _flocked:
    """``with _flocked(path):`` — advisory exclusive lock (no-op where
    fcntl is unavailable)."""

    def __init__(self, path: Path):
        self.path = path
        self._fh = None

    def __enter__(self):
        try:
            import fcntl
        except ImportError:
            return self
        self._fh = open(self.path, "a+")
        fcntl.flock(self._fh.fileno(), fcntl.LOCK_EX)
        return self

    def __exit__(self, *exc):
        if self._fh is not None:
            import fcntl
            fcntl.flock(self._fh.fileno(), fcntl.LOCK_UN)
            self._fh.close()
            self._fh = None
        return False


# ----------------------------------------------------------------------
# Lease board: the claim / expire / complete protocol
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Lease:
    """A successful claim on one content key."""

    key: str
    generation: int
    worker: str
    expires_at: float
    reclaimed: bool = False  # True when taken over from an expired holder


class LeaseBoard:
    """Lease files next to the objects: ``leases/<key>.g<generation>``.

    Claiming creates the next generation atomically (temp file +
    ``os.link``), so exactly one contender wins each generation.  A lease
    is live until its embedded deadline passes; a crashed or wedged
    holder's key becomes claimable again at generation+1 — the survivor's
    completion then supersedes whatever the zombie later writes (the
    store's first-durable-write-wins rule resolves it deterministically).
    """

    def __init__(self, root: Union[str, Path], ttl: float = 60.0):
        self.dir = Path(root) / LEASES_DIR
        self.ttl = float(ttl)

    # -- inspection ----------------------------------------------------
    def _lease_files(self, key: str) -> List[Tuple[int, Path]]:
        if not self.dir.is_dir():
            return []
        out = []
        prefix = f"{key}.g"
        for path in self.dir.iterdir():
            if not path.name.startswith(prefix):
                continue
            try:
                out.append((int(path.name[len(prefix):]), path))
            except ValueError:
                continue
        return sorted(out)

    def current(self, key: str) -> Optional[Tuple[int, float]]:
        """(generation, expires_at) of the newest lease, or None."""
        while True:
            files = self._lease_files(check_key(key))
            if not files:
                return None
            generation, path = files[-1]
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
                expires = float(data["expires_at"])
            except FileNotFoundError:
                # vanished between scan and read: the holder released it
                # (completion), not damage -- re-scan instead of reporting
                # a phantom expired lease that would read as a reclaim.
                continue
            except (OSError, ValueError, KeyError, json.JSONDecodeError):
                # lease files are link-published (never torn); anything
                # else unreadable is damage -> treat as expired,
                # reclaimable.
                expires = 0.0
            return generation, expires

    def active(self) -> int:
        """Count of keys currently under a live lease."""
        if not self.dir.is_dir():
            return 0
        newest: Dict[str, int] = {}
        for path in self.dir.iterdir():
            key, sep, gen = path.name.rpartition(".g")
            if not sep:
                continue
            try:
                newest[key] = max(newest.get(key, 0), int(gen))
            except ValueError:
                continue
        live = 0
        for key, generation in newest.items():
            try:
                data = json.loads(
                    (self.dir / f"{key}.g{generation:06d}").read_text())
                if float(data["expires_at"]) > time.time():
                    live += 1
            except (OSError, ValueError, KeyError, json.JSONDecodeError):
                continue
        return live

    # -- protocol ------------------------------------------------------
    def _try_create(self, key: str, generation: int, worker: str,
                    ttl: float) -> Optional[Lease]:
        self.dir.mkdir(parents=True, exist_ok=True)
        expires = time.time() + ttl
        body = json.dumps({"worker": worker, "expires_at": expires,
                           "claimed_at": time.time()}).encode("utf-8")
        fd, tmp_name = tempfile.mkstemp(prefix=".tmp-", dir=self.dir)
        tmp = Path(tmp_name)
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(body)
                fh.flush()
                os.fsync(fh.fileno())
            final = self.dir / f"{key}.g{generation:06d}"
            try:
                os.link(tmp, final)
            except FileExistsError:
                return None
            except OSError:
                # no-hardlink filesystem: O_EXCL gives the same atomicity
                try:
                    with open(final, "xb") as fh:
                        fh.write(body)
                except FileExistsError:
                    return None
            return Lease(key=key, generation=generation, worker=worker,
                         expires_at=expires, reclaimed=generation > 1)
        finally:
            try:
                os.unlink(tmp)
            except FileNotFoundError:
                pass

    def claim(self, key: str, worker: str,
              ttl: Optional[float] = None) -> Optional[Lease]:
        """Try to become the executor for ``key``.

        Returns a :class:`Lease` on success, None while another worker
        validly holds it.  An expired (or unreadable) lease is taken over
        at the next generation; losing that takeover race just means
        somebody else is now validly working on the key.
        """
        ttl = self.ttl if ttl is None else float(ttl)
        check_key(key)
        while True:
            current = self.current(key)
            if current is None:
                generation = 1
            else:
                held_generation, expires_at = current
                if expires_at > time.time():
                    return None
                generation = held_generation + 1
            lease = self._try_create(key, generation, worker, ttl)
            if lease is not None:
                if generation > 1:
                    self._drop_generations(key, below=generation)
                tel = get_telemetry()
                tel.count("lease.claims")
                if lease.reclaimed:
                    tel.count("lease.reclaims")
                    tel.event("lease.reclaim", key=key, worker=worker,
                              generation=generation)
                return lease
            # lost the creation race; re-read and re-evaluate.

    def release(self, key: str) -> None:
        """Completion: the result is durable, all leases for the key die."""
        for _generation, path in self._lease_files(key):
            try:
                path.unlink()
            except FileNotFoundError:
                pass

    def _drop_generations(self, key: str, below: int) -> None:
        for generation, path in self._lease_files(key):
            if generation < below:
                try:
                    path.unlink()
                except FileNotFoundError:
                    pass

    def sweep(self) -> int:
        """Remove every expired lease file (``repro cache gc``)."""
        removed = 0
        if not self.dir.is_dir():
            return 0
        now = time.time()
        for path in list(self.dir.iterdir()):
            if path.name.startswith(".tmp-"):
                continue
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
                expires = float(data["expires_at"])
            except (OSError, ValueError, KeyError, json.JSONDecodeError):
                expires = 0.0
            if expires <= now:
                try:
                    path.unlink()
                    removed += 1
                except FileNotFoundError:
                    pass
        return removed


# ----------------------------------------------------------------------
# Worker heartbeats: the live-progress files `repro top` tails
# ----------------------------------------------------------------------
def _heartbeat_name(worker: str) -> str:
    """Worker ids double as filenames; squash anything unsafe."""
    safe = "".join(c if c.isalnum() or c in "-._" else "_" for c in worker)
    return f"{safe or 'worker'}.json"


class Heartbeat:
    """One worker's live progress file: ``heartbeats/<worker>.json``.

    Published next to the :class:`LeaseBoard` so any process with access
    to the store root (``repro top``, dashboards) can observe an in-flight
    sweep without talking to the workers.  Writes are atomic
    (temp + ``os.replace``) so readers never see a torn file; losing a
    heartbeat is harmless — it is observability, not coordination.
    """

    def __init__(self, root: Union[str, Path], worker: str):
        self.dir = Path(root) / HEARTBEATS_DIR
        self.worker = worker
        self.path = self.dir / _heartbeat_name(worker)
        self.started_at = time.time()
        self._state: Dict = {"worker": worker, "pid": os.getpid(),
                             "started_at": self.started_at}

    def update(self, **fields) -> None:
        """Merge ``fields`` into the state and publish it (best effort)."""
        self._state.update(fields)
        self._state["time"] = time.time()
        try:
            self.dir.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(prefix=".tmp-", dir=self.dir)
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(self._state, fh)
            os.replace(tmp_name, self.path)
        except OSError:
            pass  # a full/unwritable volume must never kill the worker


def read_heartbeats(root: Union[str, Path]) -> List[Dict]:
    """All readable heartbeat files under ``root``, sorted by worker."""
    directory = Path(root) / HEARTBEATS_DIR
    if not directory.is_dir():
        return []
    out = []
    for path in sorted(directory.iterdir()):
        if not path.name.endswith(".json"):
            continue
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue  # torn/vanished: best-effort observability
        if isinstance(data, dict):
            out.append(data)
    return sorted(out, key=lambda d: str(d.get("worker", "")))


# ----------------------------------------------------------------------
# Backend registry / URL opening
# ----------------------------------------------------------------------
#: scheme -> backend class; extend to plug in new backends (queue/broker
#: backends slot in here without touching the runner).
STORE_BACKENDS: Dict[str, type] = {
    "memory": MemoryStore,
    "dir": ShardedDirStore,
    "shared": SharedVolumeStore,
}


def open_store(url: Optional[str] = None,
               directory: Union[str, Path, None] = None,
               migrate_legacy: bool = True) -> ResultStore:
    """Open a result store from a spec string.

    ``url`` forms: ``memory:``, ``dir:PATH``, ``shared:PATH``, or a bare
    path (treated as ``dir:``).  With no url, a sharded dir store on
    ``directory`` is opened.
    """
    if not url:
        if directory is None:
            raise StoreError("open_store needs a url or a directory")
        return ShardedDirStore(directory, migrate_legacy=migrate_legacy)
    scheme, sep, rest = url.partition(":")
    if scheme not in STORE_BACKENDS:
        if sep:
            raise StoreError(
                f"unknown store scheme {scheme!r}; choose from "
                f"{sorted(STORE_BACKENDS)}"
            )
        scheme, rest = "dir", url  # bare path
    cls = STORE_BACKENDS[scheme]
    if cls is MemoryStore:
        return MemoryStore()
    target = rest or directory
    if not target:
        raise StoreError(f"store url {url!r} needs a path, e.g. {scheme}:PATH")
    return cls(target, migrate_legacy=migrate_legacy)
