"""Motivational experiments on the coherence substrate (Table 1, Fig. 2).

These reproduce the paper's Section 2 evidence that coherence-based
synchronization does not fit NDP systems:

- :func:`table1` — TTAS and Hierarchical Ticket Lock operation throughput
  on a two-socket CPU (libslock-style microbenchmark): contention collapse
  from 1 → 14 threads and the same-socket vs different-socket gap.
- :func:`fig2` — slowdown of a coarse-lock stack using a MESI-based lock
  (``mesi-lock``) over an ideal zero-cost lock (``ideal-lock``), varying
  (a) cores within one NDP unit and (b) NDP units at constant core count.

Both are sweep declarations over the measurement functions in
:mod:`repro.harness.measurements`, executed (and cached/parallelized) by
:mod:`repro.harness.runner`.
"""

from __future__ import annotations

from typing import Dict, List

from repro.harness.runner import run_sweep
from repro.harness.specs import RunSpec, SweepSpec
from repro.workloads.base import scaled


def table1(ops_per_thread: int = None) -> List[Dict]:
    """Throughput (Mops/s) for the four Table 1 configurations."""
    ops = ops_per_thread if ops_per_thread is not None else scaled(150)
    cases = [
        ("1 thread single-socket", (0,)),
        ("14 threads single-socket", tuple(range(14))),
        ("2 threads same-socket", (0, 1)),
        ("2 threads different-socket", (0, 14)),
    ]
    lock_kinds = ("ttas", "htl")
    specs = [
        RunSpec.make("coherence_lock", "coherent", preset="cpu_numa",
                     args={"lock_kind": lock_kind, "core_ids": core_ids,
                           "ops_per_thread": ops})
        for lock_kind in lock_kinds
        for _label, core_ids in cases
    ]
    results = iter(run_sweep(SweepSpec.of("table1", specs)))
    rows = []
    for lock_kind in lock_kinds:
        row = {"lock": "TTAS lock" if lock_kind == "ttas" else "Hierarchical Ticket lock"}
        for label, _core_ids in cases:
            row[label] = next(results)["mops"]
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Fig. 2: coarse-lock stack, mesi-lock vs ideal-lock
# ----------------------------------------------------------------------
def _stack_spec(num_units: int, cores_per_unit: int, mechanism: str,
                ops_per_core: int) -> RunSpec:
    return RunSpec.make(
        "mesi_stack", mechanism,
        args={"ops_per_core": ops_per_core},
        overrides={
            "num_units": num_units,
            "cores_per_unit": cores_per_unit + 1,
            "client_cores_per_unit": cores_per_unit,
        },
    )


def fig2(ops_per_core: int = None) -> Dict[str, List[Dict]]:
    """Slowdown of mesi-lock over ideal-lock.

    Part (a): 15/30/45/60 cores in one NDP unit.
    Part (b): 1..4 NDP units at 60 total cores.
    """
    ops = ops_per_core if ops_per_core is not None else scaled(20)
    part_a_steps = (15, 30, 45, 60)
    part_b_steps = (1, 2, 3, 4)
    specs = [
        _stack_spec(1, cores, mech, ops)
        for cores in part_a_steps
        for mech in ("ideal", "mesi")
    ] + [
        _stack_spec(units, 60 // units, mech, ops)
        for units in part_b_steps
        for mech in ("ideal", "mesi")
    ]
    results = iter(run_sweep(SweepSpec.of("fig2", specs)))
    part_a = []
    for cores in part_a_steps:
        ideal = next(results)["cycles"]
        mesi = next(results)["cycles"]
        part_a.append({
            "ndp_cores": cores,
            "slowdown": mesi / ideal,
            "ideal_cycles": ideal,
            "mesi_cycles": mesi,
        })
    part_b = []
    for units in part_b_steps:
        ideal = next(results)["cycles"]
        mesi = next(results)["cycles"]
        part_b.append({
            "ndp_units": units,
            "slowdown": mesi / ideal,
            "ideal_cycles": ideal,
            "mesi_cycles": mesi,
        })
    return {"a_cores": part_a, "b_units": part_b}
