"""Motivational experiments on the coherence substrate (Table 1, Fig. 2).

These reproduce the paper's Section 2 evidence that coherence-based
synchronization does not fit NDP systems:

- :func:`table1` — TTAS and Hierarchical Ticket Lock operation throughput
  on a two-socket CPU (libslock-style microbenchmark): contention collapse
  from 1 → 14 threads and the same-socket vs different-socket gap.
- :func:`fig2` — slowdown of a coarse-lock stack using a MESI-based lock
  (``mesi-lock``) over an ideal zero-cost lock (``ideal-lock``), varying
  (a) cores within one NDP unit and (b) NDP units at constant core count.
"""

from __future__ import annotations

from typing import Dict, List

from repro.coherence.driver import (
    CLoad,
    CoherentSystem,
    CStore,
    IdealAcquire,
    IdealRelease,
)
from repro.coherence.locks import (
    HierarchicalTicketLock,
    tas_acquire,
    tas_release,
    ticket_acquire,
    ticket_release,
    ttas_acquire,
    ttas_release,
)
from repro.sim.clock import seconds_from_core_cycles
from repro.sim.config import cpu_numa, ndp_2_5d
from repro.sim.program import Compute
from repro.workloads.base import scaled


def _lock_microbench(system: CoherentSystem, core_ids, lock_kind: str,
                     ops_per_thread: int) -> float:
    """libslock-style benchmark: acquire, tiny CS, release; returns Mops/s."""
    shared = {"count": 0}
    if lock_kind == "ttas":
        lock = system.alloc_line(0)

        def worker():
            for _ in range(ops_per_thread):
                yield from ttas_acquire(lock)
                shared["count"] += 1
                yield Compute(20)
                yield from ttas_release(lock)

        programs = {cid: worker() for cid in core_ids}
    elif lock_kind == "htl":
        htl = HierarchicalTicketLock(system, system.config.num_units)

        def worker(socket):
            for _ in range(ops_per_thread):
                yield from htl.acquire(socket)
                shared["count"] += 1
                yield Compute(20)
                yield from htl.release(socket)

        programs = {
            cid: worker(system.cores[cid].unit_id) for cid in core_ids
        }
    else:
        raise ValueError(f"unknown lock kind {lock_kind!r}")

    cycles = system.run_programs(programs)
    total = ops_per_thread * len(core_ids)
    if shared["count"] != total:
        raise AssertionError("lock microbenchmark lost operations")
    return total / seconds_from_core_cycles(cycles) / 1e6


def table1(ops_per_thread: int = None) -> List[Dict]:
    """Throughput (Mops/s) for the four Table 1 configurations."""
    ops = ops_per_thread if ops_per_thread is not None else scaled(150)
    cases = [
        ("1 thread single-socket", [0]),
        ("14 threads single-socket", list(range(14))),
        ("2 threads same-socket", [0, 1]),
        ("2 threads different-socket", [0, 14]),
    ]
    rows = []
    for lock_kind in ("ttas", "htl"):
        row = {"lock": "TTAS lock" if lock_kind == "ttas" else "Hierarchical Ticket lock"}
        for label, core_ids in cases:
            system = CoherentSystem(cpu_numa())
            row[label] = _lock_microbench(system, core_ids, lock_kind, ops)
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Fig. 2: coarse-lock stack, mesi-lock vs ideal-lock
# ----------------------------------------------------------------------
def _stack_run(num_units: int, cores_per_unit: int, use_mesi_lock: bool,
               ops_per_core: int) -> int:
    """Run the coarse-lock stack on the coherent NDP model; returns cycles."""
    config = ndp_2_5d(
        num_units=num_units,
        cores_per_unit=cores_per_unit + 1,
        client_cores_per_unit=cores_per_unit,
    )
    system = CoherentSystem(config)
    # mesi-lock: a fair coherence-based lock [Herlihy & Shavit] on the MESI
    # directory (ticket-based; a raw TAS lock degrades far worse and would
    # overstate Fig. 2's point).
    ticket_next = system.alloc_line(0)
    ticket_serving = system.alloc_line(0)
    top_addr = system.alloc_line(0)
    stack = [0] * 8
    LOCK_ID = 1

    def worker(core_id):
        unit = system.cores[core_id].unit_id
        # each core's nodes live in its own unit (thread-private data).
        nodes = [system.alloc_line(unit) for _ in range(ops_per_core)]
        for i in range(ops_per_core):
            # prepare the node outside the critical section.
            yield CStore(nodes[i], core_id)
            if use_mesi_lock:
                yield from ticket_acquire(ticket_next, ticket_serving)
            else:
                yield IdealAcquire(LOCK_ID)
            # push: read top, link node, update top.
            yield CLoad(top_addr)
            stack.append(core_id)
            yield CStore(nodes[i], len(stack))
            yield CStore(top_addr, len(stack))
            yield Compute(10)
            if use_mesi_lock:
                yield from ticket_release(ticket_serving)
            else:
                yield IdealRelease(LOCK_ID)

    programs = {c.core_id: worker(c.core_id) for c in system.cores}
    cycles = system.run_programs(programs)
    expected = 8 + ops_per_core * len(system.cores)
    if len(stack) != expected:
        raise AssertionError("stack lost pushes under the lock")
    return cycles


def fig2(ops_per_core: int = None) -> Dict[str, List[Dict]]:
    """Slowdown of mesi-lock over ideal-lock.

    Part (a): 15/30/45/60 cores in one NDP unit.
    Part (b): 1..4 NDP units at 60 total cores.
    """
    ops = ops_per_core if ops_per_core is not None else scaled(20)
    part_a = []
    for cores in (15, 30, 45, 60):
        ideal = _stack_run(1, cores, use_mesi_lock=False, ops_per_core=ops)
        mesi = _stack_run(1, cores, use_mesi_lock=True, ops_per_core=ops)
        part_a.append({
            "ndp_cores": cores,
            "slowdown": mesi / ideal,
            "ideal_cycles": ideal,
            "mesi_cycles": mesi,
        })
    part_b = []
    for units in (1, 2, 3, 4):
        per_unit = 60 // units
        ideal = _stack_run(units, per_unit, use_mesi_lock=False, ops_per_core=ops)
        mesi = _stack_run(units, per_unit, use_mesi_lock=True, ops_per_core=ops)
        part_b.append({
            "ndp_units": units,
            "slowdown": mesi / ideal,
            "ideal_cycles": ideal,
            "mesi_cycles": mesi,
        })
    return {"a_cores": part_a, "b_units": part_b}
