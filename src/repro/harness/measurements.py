"""Measurement functions the sweep runner can execute by registry name.

These are the experiment bodies that drive a system directly instead of
going through :func:`~repro.workloads.base.run_workload` — the Table 1
coherence-lock microbenchmark, the Fig. 2 mesi-lock stack, and the
fairness/SMT ablation points.  Each has the uniform signature

    fn(config: SystemConfig, mechanism: str, **args) -> Dict[str, number]

so :mod:`repro.harness.runner` can execute and cache them exactly like
workload runs.  This module deliberately imports no other harness module
(worker processes import it via the :data:`repro.harness.specs.MEASUREMENTS`
registry).
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.coherence.driver import (
    CLoad,
    CoherentSystem,
    CStore,
    IdealAcquire,
    IdealRelease,
)
from repro.coherence.locks import (
    HierarchicalTicketLock,
    ticket_acquire,
    ticket_release,
    ttas_acquire,
    ttas_release,
)
from repro.core import api
from repro.sim.clock import seconds_from_core_cycles
from repro.sim.config import SystemConfig
from repro.sim.program import Compute
from repro.sim.system import NDPSystem


# ----------------------------------------------------------------------
# Table 1 — coherence-lock throughput on a NUMA CPU
# ----------------------------------------------------------------------
def coherence_lock_case(config: SystemConfig, mechanism: str,
                        lock_kind: str = "ttas",
                        core_ids: Sequence[int] = (0,),
                        ops_per_thread: int = 150) -> Dict[str, float]:
    """libslock-style benchmark: acquire, tiny CS, release; returns Mops/s.

    ``mechanism`` is unused (the coherence substrate has no SE mechanisms);
    it rides along so the spec shape stays uniform.
    """
    system = CoherentSystem(config)
    shared = {"count": 0}
    if lock_kind == "ttas":
        lock = system.alloc_line(0)

        def worker():
            for _ in range(ops_per_thread):
                yield from ttas_acquire(lock)
                shared["count"] += 1
                yield Compute(20)
                yield from ttas_release(lock)

        programs = {cid: worker() for cid in core_ids}
    elif lock_kind == "htl":
        htl = HierarchicalTicketLock(system, system.config.num_units)

        def worker(socket):
            for _ in range(ops_per_thread):
                yield from htl.acquire(socket)
                shared["count"] += 1
                yield Compute(20)
                yield from htl.release(socket)

        programs = {
            cid: worker(system.cores[cid].unit_id) for cid in core_ids
        }
    else:
        raise ValueError(f"unknown lock kind {lock_kind!r}")

    cycles = system.run_programs(programs)
    total = ops_per_thread * len(core_ids)
    if shared["count"] != total:
        raise AssertionError("lock microbenchmark lost operations")
    return {"mops": total / seconds_from_core_cycles(cycles) / 1e6}


# ----------------------------------------------------------------------
# Fig. 2 — coarse-lock stack, mesi-lock vs ideal-lock
# ----------------------------------------------------------------------
def mesi_stack_cycles(config: SystemConfig, mechanism: str,
                      ops_per_core: int = 20) -> Dict[str, int]:
    """Coarse-lock stack on the coherent NDP model; returns the makespan.

    ``mechanism`` selects the lock: ``"mesi"`` runs a fair ticket lock on
    the MESI directory, ``"ideal"`` a zero-cost lock.
    """
    if mechanism not in ("mesi", "ideal"):
        raise ValueError("mesi_stack mechanism must be 'mesi' or 'ideal'")
    use_mesi_lock = mechanism == "mesi"
    system = CoherentSystem(config)
    # mesi-lock: a fair coherence-based lock [Herlihy & Shavit] on the MESI
    # directory (ticket-based; a raw TAS lock degrades far worse and would
    # overstate Fig. 2's point).
    ticket_next = system.alloc_line(0)
    ticket_serving = system.alloc_line(0)
    top_addr = system.alloc_line(0)
    stack = [0] * 8
    LOCK_ID = 1

    def worker(core_id):
        unit = system.cores[core_id].unit_id
        # each core's nodes live in its own unit (thread-private data).
        nodes = [system.alloc_line(unit) for _ in range(ops_per_core)]
        for i in range(ops_per_core):
            # prepare the node outside the critical section.
            yield CStore(nodes[i], core_id)
            if use_mesi_lock:
                yield from ticket_acquire(ticket_next, ticket_serving)
            else:
                yield IdealAcquire(LOCK_ID)
            # push: read top, link node, update top.
            yield CLoad(top_addr)
            stack.append(core_id)
            yield CStore(nodes[i], len(stack))
            yield CStore(top_addr, len(stack))
            yield Compute(10)
            if use_mesi_lock:
                yield from ticket_release(ticket_serving)
            else:
                yield IdealRelease(LOCK_ID)

    programs = {c.core_id: worker(c.core_id) for c in system.cores}
    cycles = system.run_programs(programs)
    expected = 8 + ops_per_core * len(system.cores)
    if len(stack) != expected:
        raise AssertionError("stack lost pushes under the lock")
    return {"cycles": cycles}


# ----------------------------------------------------------------------
# Fairness ablation point (Sec. 4.4.2)
# ----------------------------------------------------------------------
def fairness_point(config: SystemConfig, mechanism: str,
                   rounds: int = 20) -> Dict[str, int]:
    """One fairness-threshold sample: makespan + cross-unit finish spread."""
    system = NDPSystem(config, mechanism=mechanism)
    lock = system.create_syncvar(unit=0, name="fair")
    state = {"count": 0}

    def worker():
        for _ in range(rounds):
            yield api.lock_acquire(lock)
            state["count"] += 1
            yield Compute(40)
            yield api.lock_release(lock)

    makespan = system.run_programs(
        {core.core_id: worker() for core in system.cores}
    )
    unit_finish = {
        unit: max(core.finish_time for core in system.cores_in_unit(unit))
        for unit in range(config.num_units)
    }
    return {
        "makespan": makespan,
        "unit_finish_spread": max(unit_finish.values()) - min(unit_finish.values()),
        "acquires": state["count"],
    }


# ----------------------------------------------------------------------
# SMT ablation point (Sec. 4's hardware-context note)
# ----------------------------------------------------------------------
def smt_point(config: SystemConfig, mechanism: str,
              rounds_per_core: int = 48) -> Dict[str, int]:
    """Makespan with fixed per-physical-core work split across contexts."""
    system = NDPSystem(config, mechanism=mechanism)
    lock = system.create_syncvar(unit=0, name="smt")
    rounds = max(rounds_per_core // config.threads_per_core, 1)

    def worker():
        for _ in range(rounds):
            yield api.lock_acquire(lock)
            yield Compute(5)
            yield api.lock_release(lock)
            yield Compute(120)

    makespan = system.run_programs(
        {core.core_id: worker() for core in system.cores}
    )
    return {"makespan": makespan}


# ----------------------------------------------------------------------
# Degraded-fabric geometry probe (no workload; pure routing)
# ----------------------------------------------------------------------
def fabric_probe(config: SystemConfig, mechanism: str) -> Dict[str, float]:
    """Route inflation of a fabric under its config's *permanent* faults.

    Applies the deterministic :class:`~repro.sim.topo.faults.FaultPlan`'s
    permanent failures instantly (transients are a timing effect, invisible
    to steady-state geometry) and compares every ordered pair's surviving
    route against the pristine table.  ``mechanism`` is unused — fabric
    geometry is mechanism-independent — and rides along so the spec shape
    stays uniform.
    """
    from repro.sim.network import Interconnect
    from repro.sim.stats import SystemStats
    from repro.sim.topo.faults import FaultPlan

    config.validate()
    stats = SystemStats()
    interconnect = Interconnect(config, stats)
    topology = interconnect.topology
    plan = FaultPlan.from_config(config, topology)
    for event in plan.events:
        if not event.permanent:
            continue
        if event.kind == "link":
            interconnect.fail_link(event.target, event.at)
        else:
            interconnect.fail_unit(event.target, event.at)
    pairs = [
        (src, dst)
        for src in range(config.num_units)
        for dst in range(config.num_units)
        if src != dst
    ]
    pristine = sum(topology.hops(src, dst) for src, dst in pairs)
    degraded = sum(interconnect.remote_hops(src, dst) for src, dst in pairs)
    return {
        "pairs": len(pairs),
        "links_failed": len(interconnect.dead_channels),
        "units_failed": len(interconnect.dead_units),
        "plan_events": len(plan.events),
        "plan_skipped": len(plan.skipped),
        "mean_hops": pristine / len(pairs) if pairs else 0.0,
        "mean_hops_degraded": degraded / len(pairs) if pairs else 0.0,
        "hop_inflation": degraded / pristine if pristine else 1.0,
        "reroutes": stats.reroutes,
    }
