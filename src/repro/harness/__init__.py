"""Experiment harness: one function per paper table/figure + reporting."""

from repro.harness import experiments, motivation
from repro.harness.reporting import format_table, geomean, summarize_speedups

__all__ = ["experiments", "motivation", "format_table", "geomean",
           "summarize_speedups"]
