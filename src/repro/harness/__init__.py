"""Experiment harness: spec-driven sweeps, one function per paper figure.

Layering: :mod:`~repro.harness.specs` declares runs,
:mod:`~repro.harness.runner` executes them (parallel workers + result
cache), and :mod:`~repro.harness.experiments` / ``motivation`` /
``ablations`` assemble figure rows from the results.
"""

from repro.harness import experiments, motivation
from repro.harness.reporting import format_table, geomean, summarize_speedups
from repro.harness.runner import (
    execution_options,
    run_specs,
    run_sweep,
    set_execution_options,
)
from repro.harness.specs import RunSpec, SweepSpec
from repro.harness.store import ResultStore, open_store

__all__ = ["experiments", "motivation", "format_table", "geomean",
           "summarize_speedups", "RunSpec", "SweepSpec", "run_specs",
           "run_sweep", "execution_options", "set_execution_options",
           "ResultStore", "open_store"]
