"""Live view of an in-flight cooperative sweep (the ``repro top`` backend).

Workers draining a shared store publish heartbeat files next to the
LeaseBoard (:class:`repro.harness.store.Heartbeat`); this module reads
them plus the lease directory and turns them into one snapshot dict —
per-worker progress, aggregate throughput, and an ETA — that the CLI
renders either once (non-TTY / ``--once``) or in a refresh loop.

Everything here is read-only and best-effort: a torn heartbeat or a
vanishing lease file degrades the view, never the sweep.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.harness.reporting import format_table
from repro.harness.store import LeaseBoard, read_heartbeats

#: a worker whose heartbeat is older than this (and not done) is flagged.
STALE_AFTER_SECONDS = 15.0


def gather(root: Union[str, Path],
           now: Optional[float] = None) -> Dict:
    """Snapshot the sweep state under a store root.

    Returns ``{"workers": [...], "totals": {...}, "found": bool}``;
    ``found`` is False when no worker ever heartbeated there (wrong path,
    or the sweep ran without a rooted store).
    """
    now = time.time() if now is None else now
    workers: List[Dict] = []
    for hb in read_heartbeats(root):
        age = max(0.0, now - float(hb.get("time", now)))
        elapsed = max(1e-9, float(hb.get("time", now))
                      - float(hb.get("started_at", now)))
        done = bool(hb.get("done"))
        state = str(hb.get("phase", "?"))
        if done:
            state = "done"
        elif age > STALE_AFTER_SECONDS:
            state = "stale"
        executed = int(hb.get("executed", 0))
        events = int(hb.get("kernel_events", 0))
        workers.append({
            "worker": str(hb.get("worker", "?")),
            "state": state,
            "age_s": age,
            "executed": executed,
            "reclaimed": int(hb.get("reclaimed", 0)),
            "elsewhere": int(hb.get("completed_elsewhere", 0)),
            "remaining": int(hb.get("remaining", 0)),
            "total": int(hb.get("total", 0)),
            "events_per_s": events / elapsed,
            "current": _shorten(hb.get("current")),
            "_elapsed": elapsed,
            "_events": events,
        })
    totals = _totals(workers)
    try:
        totals["leases_active"] = LeaseBoard(root).active()
    except OSError:
        totals["leases_active"] = 0
    return {"root": str(root), "time": now,
            "workers": workers, "totals": totals,
            "found": bool(workers)}


def _shorten(text, limit: int = 48) -> str:
    if not text:
        return ""
    text = str(text)
    return text if len(text) <= limit else text[: limit - 1] + "…"


def _totals(workers: List[Dict]) -> Dict:
    completed = sum(w["executed"] + w["elsewhere"] for w in workers)
    executed = sum(w["executed"] for w in workers)
    # Each worker reports its own remaining view; the *minimum* is the
    # tightest global bound (a worker that saw a key finish elsewhere has
    # already dropped it from its count).
    remaining = min((w["remaining"] for w in workers), default=0)
    elapsed = max((w["_elapsed"] for w in workers), default=0.0)
    events_per_s = sum(w["_events"] for w in workers) / elapsed \
        if elapsed > 0 else 0.0
    rate = executed / elapsed if elapsed > 0 else 0.0
    eta = remaining / rate if rate > 0 and remaining else 0.0
    return {
        "workers": len(workers),
        "live": sum(1 for w in workers
                    if w["state"] not in ("done", "stale")),
        "done": sum(1 for w in workers if w["state"] == "done"),
        "executed": executed,
        "reclaimed": sum(w["reclaimed"] for w in workers),
        "completed": completed,
        "remaining": remaining,
        "events_per_s": events_per_s,
        "eta_s": eta,
    }


def render(snapshot: Dict) -> str:
    """The snapshot as operator-readable text (via ``format_table``)."""
    if not snapshot["found"]:
        return (f"no worker heartbeats under {snapshot['root']}/heartbeats\n"
                "(is this the sweep's --store / --cache-dir root?)")
    totals = snapshot["totals"]
    rows = [
        {k: v for k, v in w.items() if not k.startswith("_")}
        for w in snapshot["workers"]
    ]
    for row in rows:
        row["age_s"] = f"{row['age_s']:.1f}"
        row["events_per_s"] = f"{row['events_per_s']:,.0f}"
    table = format_table(rows, title=f"workers @ {snapshot['root']}")
    eta = totals["eta_s"]
    eta_text = f"{eta:.0f}s" if eta else "-"
    summary = (
        f"{totals['live']} live / {totals['done']} done of "
        f"{totals['workers']} workers | executed {totals['executed']} "
        f"(+{totals['reclaimed']} reclaimed), remaining "
        f"{totals['remaining']}, leases {totals['leases_active']} | "
        f"{totals['events_per_s']:,.0f} events/s | ETA {eta_text}"
    )
    return f"{table}\n{summary}"


def finished(snapshot: Dict) -> bool:
    """True once every observed worker reported done (or went stale)."""
    workers = snapshot["workers"]
    return bool(workers) and all(
        w["state"] in ("done", "stale") for w in workers
    )
