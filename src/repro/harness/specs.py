"""Declarative experiment specs (the sweep runner's input language).

A :class:`RunSpec` is a frozen, hashable, picklable description of ONE
simulation: which workload to build (by registry key + plain-data kwargs),
which mechanism to run it under, which :class:`~repro.sim.config.SystemConfig`
preset + overrides to use, and an optional seed.  Because a spec contains
only plain data it can cross process boundaries (``--jobs N``) and be hashed
into a stable cache key, so a figure re-run only simulates cache misses.

A :class:`SweepSpec` is a named tuple of runs; :meth:`SweepSpec.matrix`
builds the cross product of workloads x mechanisms x config overrides —
which is how the CLI ``sweep`` subcommand composes scenario matrices the
paper never ran.

Two kinds of registry targets exist:

- **workloads** (:data:`WORKLOAD_BUILDERS`): builders returning a
  :class:`~repro.workloads.base.Workload`; the runner executes them through
  :func:`~repro.workloads.base.run_workload` and caches
  :class:`~repro.workloads.base.RunMetrics`.
- **measurements** (:data:`MEASUREMENTS`): dotted paths to functions
  ``fn(config, mechanism, **args) -> dict`` for experiments that drive a
  system directly (Table 1, Fig. 2, the fairness/SMT ablations); the runner
  caches the returned plain dict.
"""

from __future__ import annotations

import hashlib
import importlib
import json
from dataclasses import dataclass, fields as dataclass_fields
from typing import Any, Callable, Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.sim.config import MEMORY_TECHNOLOGIES, PRESETS, SystemConfig
from repro.sim.system import MECHANISM_NAMES
from repro.workloads.base import Workload, scale
from repro.workloads.datastructures import ALL_STRUCTURES
from repro.workloads.graphs import ALL_KERNELS
from repro.workloads.graphs.datasets import DATASETS as GRAPH_DATASET_NAMES
from repro.workloads.microbench import PRIMITIVES, PrimitiveMicrobench
from repro.workloads.rwbench import RWLockMicrobench
from repro.workloads.timeseries import DATASETS as TS_DATASET_NAMES, TimeSeriesWorkload
from repro.workloads.unionfind import UnionFindWorkload

#: bump to invalidate every cached result (simulator behaviour changes are
#: NOT part of the cache key — see EXPERIMENTS.md).  v2: the spin baselines
#: (rmw_spin/bakery) moved from explicit poll chains to wait-channels with
#: analytically-charged elided polls, changing their reference numbers.
#: v3: RunMetrics.stats gained the degraded-fabric counters (reroutes /
#: failed_link_cycles / detour_bit_hops), changing the cached schema.
#: v4: the Barabási-Albert generator now inserts each new vertex's edges
#: in sorted target order (RP002 determinism fix) — every generated graph,
#: and hence every graph-workload result, changed.
CACHE_FORMAT_VERSION = 4

#: CLI-friendly aliases for SystemConfig override fields.
CONFIG_ALIASES = {
    "elide": "elide_waits",
    "fault_rate": "fault_link_rate",
    "link_latency": "link_latency_ns",
    "policy": "routing_policy",
    "st": "st_entries",
    "topo": "topology",
    "units": "num_units",
}


# ----------------------------------------------------------------------
# Canonical plain-data freezing (dict kwargs <-> hashable tuples)
# ----------------------------------------------------------------------
def freeze(value):
    """Recursively convert plain data into a hashable canonical form."""
    if isinstance(value, Mapping):
        return tuple(sorted((str(k), freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(freeze(v) for v in value)
    if isinstance(value, (str, int, float, bool, type(None))):
        return value
    raise TypeError(
        f"spec values must be plain data (str/int/float/bool/None/"
        f"sequences/mappings), got {type(value).__name__}: {value!r}"
    )


def _frozen_kwargs(args: Optional[Mapping]) -> Tuple:
    return freeze(dict(args or {}))


def thaw_kwargs(frozen: Tuple) -> Dict[str, Any]:
    """Invert :func:`freeze` one level: a frozen kwargs tuple back to a dict."""
    return {key: value for key, value in frozen}


def _jsonable(value):
    """Frozen form -> JSON-dumpable (tuples become lists)."""
    if isinstance(value, tuple):
        return [_jsonable(v) for v in value]
    return value


# ----------------------------------------------------------------------
# RunSpec
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunSpec:
    """Frozen description of one simulation run."""

    workload: str
    args: Tuple = ()
    mechanism: str = "syncron"
    preset: str = "ndp_2_5d"
    overrides: Tuple = ()
    seed: Optional[int] = None
    #: REPRO_SCALE captured at spec-construction time, so a worker process
    #: reproduces the exact sizes regardless of its own environment.
    scale: str = "small"

    @classmethod
    def make(cls, workload: str, mechanism: str = "syncron",
             args: Optional[Mapping] = None, preset: str = "ndp_2_5d",
             overrides: Optional[Mapping] = None, seed: Optional[int] = None,
             run_scale: Optional[str] = None) -> "RunSpec":
        if preset not in PRESETS:
            raise ValueError(f"unknown preset {preset!r}; choose from {sorted(PRESETS)}")
        if workload not in WORKLOAD_BUILDERS and workload not in MEASUREMENTS:
            raise ValueError(
                f"unknown workload {workload!r}; choose from "
                f"{sorted([*WORKLOAD_BUILDERS, *MEASUREMENTS])}"
            )
        if workload not in SEEDABLE_WORKLOADS:
            # the seed is never forwarded to these, so hashing it would
            # split cache entries between physically identical runs.
            seed = None
        return cls(
            workload=workload,
            args=_frozen_kwargs(args),
            mechanism=mechanism,
            preset=preset,
            overrides=_frozen_kwargs(_canonical_overrides(overrides)),
            seed=seed,
            scale=run_scale or scale(),
        )

    # ------------------------------------------------------------------
    def args_dict(self) -> Dict[str, Any]:
        return thaw_kwargs(self.args)

    def overrides_dict(self) -> Dict[str, Any]:
        return thaw_kwargs(self.overrides)

    def config(self) -> SystemConfig:
        """Resolve preset + overrides into the concrete SystemConfig."""
        cfg = PRESETS[self.preset]()
        overrides = self.overrides_dict()
        if not overrides:
            return cfg
        if isinstance(overrides.get("memory"), str):
            name = overrides["memory"]
            try:
                overrides["memory"] = MEMORY_TECHNOLOGIES[name]
            except KeyError:
                raise ValueError(
                    f"unknown memory technology {name!r}; choose from "
                    f"{sorted(MEMORY_TECHNOLOGIES)}"
                )
        return cfg.with_(**overrides)

    def is_measurement(self) -> bool:
        return self.workload in MEASUREMENTS

    def build_workload(self) -> Workload:
        builder = WORKLOAD_BUILDERS[self.workload]
        kwargs = self.args_dict()
        # only seedable builders take the spec seed; a --seed on a mixed
        # CLI sweep must not crash the deterministic-anyway workloads.
        if self.seed is not None and self.workload in SEEDABLE_WORKLOADS:
            kwargs.setdefault("seed", self.seed)
        return builder(**kwargs)

    def measurement_fn(self) -> Callable:
        return resolve_dotted(MEASUREMENTS[self.workload])

    # ------------------------------------------------------------------
    def cache_key(self) -> str:
        """Stable hex digest over every field that determines the result.

        The *resolved* config is hashed (not preset + overrides), so any
        changed field — including nested DramTiming/EnergyParams values or
        a changed preset default — produces a different key.
        """
        payload = {
            "version": CACHE_FORMAT_VERSION,
            "workload": self.workload,
            "args": _jsonable(self.args),
            "mechanism": self.mechanism,
            "config": self.config().as_dict(),
            "seed": self.seed,
            "scale": self.scale,
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        """Short human label (for progress/log lines)."""
        args = ",".join(f"{k}={v}" for k, v in self.args)
        overrides = ",".join(f"{k}={v}" for k, v in self.overrides)
        parts = [self.workload]
        if args:
            parts.append(f"({args})")
        parts.append(f"/{self.mechanism}")
        if overrides:
            parts.append(f"[{overrides}]")
        return "".join(parts)


def _canonical_overrides(overrides: Optional[Mapping]) -> Dict[str, Any]:
    """Apply CLI aliases, normalize numeric types, reject unknown fields.

    Numeric values are coerced to the field's declared type so that e.g.
    ``link_latency=40`` (CLI, int) and ``link_latency_ns=40.0`` (figure
    code, float) hash to the same cache key.
    """
    if not overrides:
        return {}
    defaults = {
        f.name: f.default for f in dataclass_fields(SystemConfig)
    }
    result = {}
    for key, value in overrides.items():
        key = CONFIG_ALIASES.get(key, key)
        if key not in defaults:
            raise ValueError(
                f"unknown SystemConfig field {key!r}; valid fields: "
                f"{sorted(defaults)}"
            )
        default = defaults[key]
        if (isinstance(default, float) and isinstance(value, int)
                and not isinstance(value, bool)):
            value = float(value)
        elif (isinstance(default, int) and not isinstance(default, bool)
                and isinstance(value, float) and value.is_integer()):
            value = int(value)
        result[key] = value
    return result


# ----------------------------------------------------------------------
# SweepSpec
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepSpec:
    """A named, ordered collection of runs (one figure, one CLI matrix)."""

    name: str
    runs: Tuple[RunSpec, ...] = ()

    def __len__(self) -> int:
        return len(self.runs)

    def __iter__(self):
        return iter(self.runs)

    @classmethod
    def of(cls, name: str, runs: Iterable[RunSpec]) -> "SweepSpec":
        return cls(name=name, runs=tuple(runs))

    @classmethod
    def matrix(cls, name: str,
               workloads: Sequence[Tuple[str, Mapping]],
               mechanisms: Sequence[str],
               vary: Optional[Mapping[str, Sequence]] = None,
               preset: str = "ndp_2_5d",
               base_overrides: Optional[Mapping] = None,
               seed: Optional[int] = None) -> "SweepSpec":
        """Cross product: workloads x mechanisms x every ``vary`` combo.

        ``workloads`` is a sequence of ``(registry_key, args)`` pairs;
        ``vary`` maps SystemConfig field -> values to sweep (all
        combinations are expanded, rightmost fastest).
        """
        return cls.of(name, (
            spec for _label, spec in expand_matrix(
                workloads, mechanisms, vary=vary, preset=preset,
                base_overrides=base_overrides, seed=seed,
            )
        ))


def expand_matrix(workloads: Sequence[Tuple[str, Mapping]],
                  mechanisms: Sequence[str],
                  vary: Optional[Mapping[str, Sequence]] = None,
                  preset: str = "ndp_2_5d",
                  base_overrides: Optional[Mapping] = None,
                  seed: Optional[int] = None
                  ) -> list:
    """The one matrix expansion: ``(label, RunSpec)`` pairs in run order.

    ``label`` carries the as-given workload args, vary combo (pre-alias
    field names), and mechanism, so callers that label output rows
    (the CLI ``sweep`` table) can never drift from the spec order.
    """
    combos: list = [dict(base_overrides or {})]
    for key, values in (vary or {}).items():
        combos = [
            {**combo, key: value} for combo in combos for value in values
        ]
    pairs = []
    for workload, args in workloads:
        for combo in combos:
            for mech in mechanisms:
                label = {"workload": workload, "args": dict(args),
                         "overrides": dict(combo), "mechanism": mech}
                pairs.append((label, RunSpec.make(
                    workload, mechanism=mech, args=args, preset=preset,
                    overrides=combo, seed=seed,
                )))
    return pairs


# ----------------------------------------------------------------------
# Workload registry
# ----------------------------------------------------------------------
def split_combo(combo: str) -> Tuple[str, str]:
    """Validate and split an app-input combo (``bfs.wk``, ``ts.air``).

    The single source of the combo grammar: both the workload builder and
    the CLI's pre-flight validation use it, so error messages can't drift.
    """
    app, _, dataset = combo.partition(".")
    if not dataset:
        raise ValueError(f"app combo must look like 'bfs.wk', got {combo!r}")
    if app == "ts":
        if dataset not in TS_DATASET_NAMES:
            raise ValueError(
                f"unknown ts dataset {dataset!r}; choose from "
                f"{sorted(TS_DATASET_NAMES)}"
            )
    elif app not in ALL_KERNELS:
        raise ValueError(
            f"unknown application {app!r}; choose from {sorted(ALL_KERNELS)} or 'ts'"
        )
    elif dataset not in GRAPH_DATASET_NAMES:
        raise ValueError(
            f"unknown graph dataset {dataset!r}; choose from "
            f"{sorted(GRAPH_DATASET_NAMES)}"
        )
    return app, dataset


def validate_names(apps: Sequence[str] = (), structures: Sequence[str] = (),
                   primitives: Sequence[str] = (),
                   mechanisms: Sequence[str] = ()) -> Optional[str]:
    """First invalid-name error among the given sweep inputs, or None.

    Lets callers (the CLI) fail fast with a friendly message instead of
    surfacing a worker-process traceback mid-sweep.
    """
    try:
        for combo in apps:
            split_combo(combo)
    except ValueError as exc:
        return str(exc)
    for s in structures:
        if s not in ALL_STRUCTURES:
            return f"unknown structure {s!r}; choose from {sorted(ALL_STRUCTURES)}"
    for p in primitives:
        if p not in PRIMITIVES:
            return f"unknown primitive {p!r}; choose from {sorted(PRIMITIVES)}"
    for m in mechanisms:
        if m not in MECHANISM_NAMES:
            return f"unknown mechanism {m!r}; choose from {sorted(MECHANISM_NAMES)}"
    return None


def build_app(combo: str, partitioner: Optional[str] = None,
              seed: Optional[int] = None) -> Workload:
    """One of the paper's application-input combos, e.g. ``bfs.wk``/``ts.air``."""
    app, dataset = split_combo(combo)
    if app == "ts":
        kwargs = {} if seed is None else {"seed": seed}
        return TimeSeriesWorkload(dataset, **kwargs)
    kwargs = {"dataset": dataset}
    if partitioner is not None:
        kwargs["partitioner"] = partitioner
    if seed is not None:
        kwargs["seed"] = seed
    return ALL_KERNELS[app](**kwargs)


def build_structure(structure: str, **kwargs) -> Workload:
    """A Table 6 concurrent data structure by name (e.g. ``stack``)."""
    try:
        cls = ALL_STRUCTURES[structure]
    except KeyError:
        raise ValueError(
            f"unknown structure {structure!r}; choose from {sorted(ALL_STRUCTURES)}"
        )
    return cls(**kwargs)


def build_primitive(primitive: str, interval: int, rounds: int = 50) -> Workload:
    return PrimitiveMicrobench(primitive, interval, rounds=rounds)


def build_rwbench(**kwargs) -> Workload:
    return RWLockMicrobench(**kwargs)


def build_unionfind(**kwargs) -> Workload:
    return UnionFindWorkload(**kwargs)


# ----------------------------------------------------------------------
# Co-run (multi-tenant) workloads
# ----------------------------------------------------------------------
def _unfrozen(value):
    """Undo :func:`freeze` on a tenant field: pair-tuples back to dicts."""
    if isinstance(value, Mapping):
        return {str(k): _unfrozen(v) for k, v in value.items()}
    if (isinstance(value, tuple)
            and all(isinstance(p, tuple) and len(p) == 2
                    and isinstance(p[0], str) for p in value)):
        return {k: _unfrozen(v) for k, v in value}
    if isinstance(value, (list, tuple)):
        return [_unfrozen(v) for v in value]
    return value


def build_corun(tenants) -> Workload:
    """A multi-tenant co-run from plain-data tenant descriptions.

    ``tenants`` is a sequence of mappings (or their frozen spec forms), one
    per tenant::

        {"name": "locky", "workload": "primitive",
         "args": {"primitive": "lock", "interval": 200, "rounds": 25},
         "units": [0, 1]}   # or "cores": 6, "core_ids": [0, 1, 2], neither

    ``workload`` is any (non-corun) :data:`WORKLOAD_BUILDERS` key; the
    partition knobs match :class:`repro.workloads.corun.TenantSpec`.
    """
    from repro.workloads.corun import CorunWorkload, TenantSpec

    if not tenants:
        raise ValueError("corun needs at least one tenant")
    specs = []
    for i, raw in enumerate(tenants):
        tenant = _unfrozen(raw)
        if not isinstance(tenant, dict):
            raise ValueError(f"tenant #{i} must be a mapping, got {raw!r}")
        workload = tenant.get("workload")
        if workload == "corun":
            raise ValueError("co-runs do not nest")
        if workload not in WORKLOAD_BUILDERS:
            raise ValueError(
                f"tenant #{i}: unknown workload {workload!r}; choose from "
                f"{sorted(k for k in WORKLOAD_BUILDERS if k != 'corun')}"
            )
        args = tenant.get("args") or {}
        builder = WORKLOAD_BUILDERS[workload]
        units = tenant.get("units")
        core_ids = tenant.get("core_ids")
        specs.append(TenantSpec(
            name=str(tenant.get("name") or f"t{i}"),
            factory=lambda builder=builder, args=dict(args): builder(**args),
            cores=tenant.get("cores"),
            units=tuple(int(u) for u in units) if units is not None else None,
            core_ids=(tuple(int(c) for c in core_ids)
                      if core_ids is not None else None),
        ))
    return CorunWorkload(specs)


#: registry key -> builder returning a fresh single-use Workload.
WORKLOAD_BUILDERS: Dict[str, Callable[..., Workload]] = {
    "app": build_app,
    "structure": build_structure,
    "primitive": build_primitive,
    "rwbench": build_rwbench,
    "unionfind": build_unionfind,
    "corun": build_corun,
}

#: builders whose constructors accept a ``seed`` keyword; RunSpec.seed is
#: forwarded only to these (the rest are deterministic by construction).
SEEDABLE_WORKLOADS = frozenset({"app", "structure"})

#: registry key -> "module:function" measurement target.
MEASUREMENTS: Dict[str, str] = {
    "coherence_lock": "repro.harness.measurements:coherence_lock_case",
    "mesi_stack": "repro.harness.measurements:mesi_stack_cycles",
    "fairness": "repro.harness.measurements:fairness_point",
    "smt": "repro.harness.measurements:smt_point",
    "fabric_probe": "repro.harness.measurements:fabric_probe",
}


def resolve_dotted(path: str) -> Callable:
    """Import ``module:function`` (measurement registry values)."""
    module_name, _, attr = path.partition(":")
    module = importlib.import_module(module_name)
    return getattr(module, attr)
