"""SynCron reproduction (HPCA 2021).

A full-system reproduction of *SynCron: Efficient Synchronization Support
for Near-Data-Processing Architectures* (Giannoula et al., HPCA 2021):

- :mod:`repro.sim` — the NDP-system simulator substrate (cores, caches,
  networks, DRAM, energy).
- :mod:`repro.core` — SynCron itself (Synchronization Engines, ST, overflow
  management, programming API).
- :mod:`repro.sync` — baselines: Central, Hier, Ideal, flat SynCron, and
  MiSAR-style overflow variants.
- :mod:`repro.coherence` — directory-MESI substrate for the motivational
  experiments (Table 1, Fig. 2).
- :mod:`repro.workloads` — microbenchmarks, pointer-chasing data structures,
  graph kernels, and time-series analysis.
- :mod:`repro.harness` — experiment runner and per-figure reproductions.

Quick start::

    from repro import api, NDPSystem, ndp_2_5d
    from repro.sim import Compute

    system = NDPSystem(ndp_2_5d(), mechanism="syncron")
    lock = system.create_syncvar(name="my_lock")
    counter = {"value": 0}

    def worker():
        for _ in range(10):
            yield api.lock_acquire(lock)
            counter["value"] += 1
            yield Compute(20)
            yield api.lock_release(lock)

    cycles = system.run_programs({c.core_id: worker() for c in system.cores})
"""

from repro.core import api
from repro.sim import (
    NDPSystem,
    SystemConfig,
    cpu_numa,
    ndp_2_5d,
    ndp_2d,
    ndp_3d,
    ndp_mesh,
)

__version__ = "1.0.0"

__all__ = [
    "api",
    "NDPSystem",
    "SystemConfig",
    "cpu_numa",
    "ndp_2_5d",
    "ndp_2d",
    "ndp_3d",
    "ndp_mesh",
    "__version__",
]
