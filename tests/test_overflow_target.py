"""The Sec. 4.6 conventional-system adaptation: shared-cache overflow.

In NUMA CPU systems SynCron can fall back to a low-latency shared cache
instead of main memory when the ST overflows.  These tests pin down the
config knob, the accounting, and the performance ordering the adaptation
exists for (cache overflow beats memory overflow, and both beat nothing
only when the ST actually overflows).
"""

import pytest

from repro.core import api
from repro.sim.config import ndp_2_5d
from repro.sim.program import Compute
from repro.sim.system import NDPSystem


def overflow_config(**overrides):
    """A config whose 2-entry ST overflows under a handful of locks."""
    base = dict(
        num_units=2, cores_per_unit=4, client_cores_per_unit=3, st_entries=2,
    )
    base.update(overrides)
    return ndp_2_5d(**base)


def run_many_locks(system, locks_per_core=4, rounds=4):
    """Each core cycles through several locks held simultaneously, so live
    variables exceed the ST capacity (the Fig. 23 overflow pattern)."""
    locks = [
        system.create_syncvar(unit=0, name=f"L{i}")
        for i in range(locks_per_core * 2)
    ]
    state = {"count": 0}

    def worker(core_index):
        for r in range(rounds):
            held = [
                locks[(core_index + r + k) % len(locks)]
                for k in range(locks_per_core)
            ]
            # Deadlock-free: everyone acquires in a canonical global order.
            for lock in sorted(held, key=lambda v: v.addr):
                yield api.lock_acquire(lock)
            state["count"] += 1
            yield Compute(20)
            for lock in sorted(held, key=lambda v: v.addr, reverse=True):
                yield api.lock_release(lock)

    programs = {
        core.core_id: worker(i) for i, core in enumerate(system.cores)
    }
    makespan = system.run_programs(programs)
    return state, makespan


class TestConfigValidation:
    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError):
            ndp_2_5d(overflow_target="l4_cache").validate()

    def test_zero_cache_latency_rejected(self):
        with pytest.raises(ValueError):
            ndp_2_5d(
                overflow_target="shared_cache", shared_cache_hit_cycles=0
            ).validate()

    def test_memory_is_default(self):
        assert ndp_2_5d().overflow_target == "memory"


class TestSharedCacheOverflow:
    def test_overflow_actually_happens(self):
        system = NDPSystem(overflow_config(), mechanism="syncron")
        state, _ = run_many_locks(system)
        assert state["count"] == 4 * len(system.cores)
        assert system.stats.st_overflow_requests > 0

    def test_semantics_identical_across_targets(self):
        counts = {}
        for target in ("memory", "shared_cache"):
            system = NDPSystem(
                overflow_config(overflow_target=target), mechanism="syncron"
            )
            state, _ = run_many_locks(system)
            counts[target] = state["count"]
        assert counts["memory"] == counts["shared_cache"]

    def test_cache_target_skips_dram(self):
        system = NDPSystem(
            overflow_config(overflow_target="shared_cache"), mechanism="syncron"
        )
        baseline_reads = system.stats.dram_reads
        run_many_locks(system)
        # Overflow episodes hit the shared cache, not the syncronVar's DRAM.
        assert system.stats.extra["llc_sync_accesses"] > 0
        # DRAM still serves nothing for sync state (programs here make no
        # data accesses, so any read would come from the overflow path).
        assert system.stats.dram_reads == baseline_reads

    def test_memory_target_reaches_dram(self):
        system = NDPSystem(overflow_config(), mechanism="syncron")
        run_many_locks(system)
        assert system.stats.extra["llc_sync_accesses"] == 0
        assert system.stats.dram_reads > 0

    def test_cache_overflow_is_faster_on_numa_memory(self):
        """The point of the adaptation: in a conventional (DDR4-backed NUMA)
        system, the shared cache beats a DRAM read on every overflow access.
        (On HBM-backed NDP the DRAM row hit is already cache-like, which is
        why the paper keeps the memory fallback there.)"""
        from repro.sim.config import DDR4

        times = {}
        for target in ("memory", "shared_cache"):
            system = NDPSystem(
                overflow_config(overflow_target=target, memory=DDR4),
                mechanism="syncron",
            )
            _, times[target] = run_many_locks(system, rounds=6)
        assert times["shared_cache"] < times["memory"]

    def test_no_effect_without_overflow(self):
        """With a roomy ST the knob must be inert."""
        times = {}
        for target in ("memory", "shared_cache"):
            config = overflow_config(st_entries=64, overflow_target=target)
            system = NDPSystem(config, mechanism="syncron")
            _, times[target] = run_many_locks(system, rounds=3)
            assert system.stats.st_overflow_requests == 0
        assert times["memory"] == times["shared_cache"]
